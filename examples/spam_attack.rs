//! Flash-crowd spam attack demo (the paper's Figure 8 scenario, scaled
//! down): a pre-seeded experienced core has converged on honest moderator
//! M1 when a crowd of colluding fresh identities joins, voting for spam
//! moderator M0 and answering VoxPopuli requests with fabricated top-K
//! lists. Newly arrived honest nodes are briefly poisoned — until their
//! own BitTorrent activity earns them experienced contacts and the ballot
//! path takes over.
//!
//! Run with:
//! ```text
//! cargo run --release --example spam_attack
//! ```

use robust_vote_sampling::metrics::TimeSeries;
use robust_vote_sampling::scenario::{run_spam_attack, SpamAttackConfig};

fn main() {
    let cfg = SpamAttackConfig::quick(7);
    println!("flash-crowd spam attack");
    println!(
        "  core size: {}   crowd sizes: {:?}   runs per size: {}",
        cfg.core_size, cfg.crowd_sizes, cfg.runs
    );
    println!();

    let curves = run_spam_attack(&cfg);
    let refs: Vec<&TimeSeries> = curves.iter().collect();
    println!("proportion of newly arrived honest nodes ranking spam M0 top:\n");
    print!("{}", TimeSeries::render_table(&refs));

    for c in &curves {
        let peak = c.samples.iter().map(|s| s.value).fold(0.0_f64, f64::max);
        let final_v = c.last().map(|s| s.value).unwrap_or(0.0);
        println!(
            "\n{}: peak pollution {:.3}, final {:.3}{}",
            c.label,
            peak,
            final_v,
            if final_v < peak {
                "  (recovering — ballots overtake the fabricated lists)"
            } else {
                ""
            }
        );
    }
}
