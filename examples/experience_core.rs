//! Experience formation (the paper's Figure 5 scenario, scaled down):
//! replay a churn trace through the piece-level BitTorrent simulator, let
//! BarterCast gossip transfer records, and watch the Collective Experience
//! Value grow for several thresholds `T` — the directed density of "node i
//! considers node j experienced".
//!
//! Run with:
//! ```text
//! cargo run --release --example experience_core
//! ```

use robust_vote_sampling::metrics::TimeSeries;
use robust_vote_sampling::scenario::{run_experience_formation, ExperienceConfig};
use robust_vote_sampling::trace::TraceStats;

fn main() {
    let mut cfg = ExperienceConfig::quick(3);
    cfg.thresholds_mib = vec![1.0, 5.0, 20.0];
    let trace = cfg.trace.generate(cfg.trace_seed);
    println!("experience formation on a synthetic churn trace");
    println!("{}", TraceStats::compute(&trace));
    println!();

    let series = run_experience_formation(&cfg);
    let refs: Vec<&TimeSeries> = series.iter().collect();
    println!("Collective Experience Value over time:\n");
    print!("{}", TimeSeries::render_table(&refs));

    // Lower thresholds admit more pairs; every curve grows monotonically.
    for s in &series {
        let last = s.last().expect("samples exist").value;
        println!("\n{}: final CEV {last:.3}", s.label);
    }
    let final_low = series.first().unwrap().last().unwrap().value;
    let final_high = series.last().unwrap().last().unwrap().value;
    assert!(
        final_low >= final_high,
        "lower thresholds must dominate higher ones"
    );
    println!("\nlower T admits more ordered pairs into the experienced core — as in Figure 5");
}
