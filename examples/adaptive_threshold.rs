//! Adaptive experience threshold (the paper's §VII future-work sketch):
//! under a flash-crowd attack, compare the fixed `T = 5 MB` threshold with
//! nodes that start at `T = 0` and raise `T` whenever the dispersion of
//! sampled votes exceeds `D_max` — conflicting votes being the fingerprint
//! of an ongoing promotion attack.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_threshold
//! ```

use robust_vote_sampling::metrics::TimeSeries;
use robust_vote_sampling::scenario::experiments::ablations::run_adaptive_threshold;
use robust_vote_sampling::scenario::SpamAttackConfig;

fn main() {
    let cfg = SpamAttackConfig::quick(21);
    println!("adaptive threshold T under a flash-crowd attack");
    println!(
        "  core: {}  crowd: {} (largest)  span: {} h",
        cfg.core_size,
        cfg.crowd_sizes.iter().max().unwrap(),
        cfg.duration.as_secs() / 3600
    );
    println!();

    let outcome = run_adaptive_threshold(&cfg);
    let refs: Vec<&TimeSeries> = vec![&outcome.fixed, &outcome.symmetric, &outcome.adaptive];
    println!("pollution of newly arrived nodes under a demoting flash crowd:\n");
    print!("{}", TimeSeries::render_table(&refs));
    println!(
        "\nmean asymmetric-adaptive T at the end of the run: {:.2} MiB",
        outcome.final_t_mean_mib
    );
    println!(
        "\nTakeaways: starting from T = 0 lets the crowd in before the guard\n\
         rises; the paper's symmetric rule then oscillates (purge -> calm ->\n\
         decay -> re-flood). Raising fast and decaying slowly dampens but does\n\
         not eliminate the cycle, because T eventually decays back to 0 where\n\
         zero-contribution identities pass E again. A fixed pre-paid threshold\n\
         remains the strongest of the three (see EXPERIMENTS.md, A1)."
    );
}
