//! ModerationCast in isolation: how approval gates dissemination speed
//! (the dynamics of the paper's Figure 2).
//!
//! Three moderators publish at the same instant into a fully online
//! population gossiping over the oracle PSS:
//!
//! * a *popular* moderator approved by half the population,
//! * an *unknown* moderator nobody has voted on,
//! * a *shunned* moderator disapproved by half the population.
//!
//! Approval forwards, null votes store-but-don't-forward, disapproval
//! refuses — so coverage separates sharply.
//!
//! Run with:
//! ```text
//! cargo run --release --example moderation_spread
//! ```

use robust_vote_sampling::modcast::{
    ContentQuality, KeyRegistry, LocalVote, ModerationCast, ModerationCastConfig,
};
use robust_vote_sampling::sim::{DetRng, NodeId, SimTime, SwarmId};

const N: usize = 60;
const ROUNDS: u64 = 14;

fn main() {
    let mut mc = ModerationCast::new(N, ModerationCastConfig::default());
    let registry = KeyRegistry::new(N, 99);
    let mut rng = DetRng::new(7);

    let popular = NodeId(0);
    let unknown = NodeId(1);
    let shunned = NodeId(2);
    for m in [popular, unknown, shunned] {
        mc.publish(
            &registry,
            m,
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
    }
    // Half the population has an opinion: approve `popular`, disapprove
    // `shunned`; `unknown` has no votes at all.
    for i in 3..(3 + N / 2) {
        mc.set_opinion(
            NodeId::from_index(i),
            popular,
            LocalVote::Approve,
            SimTime::ZERO,
        );
        mc.set_opinion(
            NodeId::from_index(i),
            shunned,
            LocalVote::Disapprove,
            SimTime::ZERO,
        );
    }

    println!("ModerationCast coverage (nodes holding each moderator's item):\n");
    println!(
        "{:>6}  {:>10} {:>10} {:>10}",
        "round", "popular", "unknown", "shunned"
    );
    for round in 0..ROUNDS {
        let now = SimTime::from_secs(round * 5);
        // Each node gossips with one random partner per round.
        for i in 0..N {
            let j = rng.index(N);
            if i != j {
                mc.exchange(
                    &registry,
                    NodeId::from_index(i),
                    NodeId::from_index(j),
                    now,
                    &mut rng,
                );
            }
        }
        println!(
            "{:>6}  {:>10} {:>10} {:>10}",
            round + 1,
            mc.coverage(popular),
            mc.coverage(unknown),
            mc.coverage(shunned)
        );
    }

    let (p, u, s) = (
        mc.coverage(popular),
        mc.coverage(unknown),
        mc.coverage(shunned),
    );
    println!();
    println!("popular (approved) moderator reached {p}/{N} nodes");
    println!("unknown (unvoted) moderator reached {u}/{N} nodes — direct contact only");
    println!("shunned (disapproved) moderator reached {s}/{N} nodes — refused by half");
    assert!(p > u && u >= s, "approval ordering should show in coverage");
}
