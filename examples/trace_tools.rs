//! Trace tooling: generate a filelist-calibrated synthetic trace, print
//! its statistics (the paper's §VI dataset summary), save it to JSON, and
//! load it back — the workflow for swapping in real tracker traces.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_tools [seed]
//! ```

// rvs-lint: allow-file(ambient-env) -- example binary: seed comes from argv and output goes to the OS temp dir; nothing feeds back into protocol state
use robust_vote_sampling::trace::{io, TraceGenConfig, TraceStats};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    println!("generating a filelist.org-calibrated trace (seed {seed})…");
    let cfg = TraceGenConfig::filelist_like();
    let trace = cfg.generate(seed);
    trace.validate().expect("generated traces always validate");

    println!("\ndataset statistics (cf. paper §VI):");
    println!("{}", TraceStats::compute(&trace));

    // Round-trip through JSON — the same schema accepts real traces.
    let path = std::env::temp_dir().join(format!("rvs-trace-{seed}.json"));
    io::save(&trace, &path).expect("trace serialises");
    let loaded = io::load(&path).expect("trace loads and validates");
    assert_eq!(trace, loaded, "JSON round-trip must be lossless");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "\nsaved + reloaded losslessly: {} ({bytes} bytes)",
        path.display()
    );

    // Arrival structure: the first three arrivals are the Figure 6
    // moderators; founders seed the swarms.
    let order = trace.arrival_order();
    println!("\nfirst three arrivals (Figure 6 moderators M1, M2, M3):");
    for (k, id) in order.iter().take(3).enumerate() {
        let p = &trace.peers[id.index()];
        println!(
            "  M{} = {id}: arrives {:.2} h, {}, uplink {} KiB/s",
            k + 1,
            p.arrival.as_hours_f64(),
            if p.free_rider {
                "free-rider"
            } else {
                "altruist"
            },
            p.uplink_kibps
        );
    }
    println!("\nswarms:");
    for s in trace.swarms.iter().take(5) {
        println!(
            "  {}: {} MiB ({} pieces), created {:.1} h, seeded by {}",
            s.id,
            s.file_size_mib,
            s.piece_count(),
            s.created.as_hours_f64(),
            s.initial_seeder
        );
    }
    std::fs::remove_file(&path).ok();
}
