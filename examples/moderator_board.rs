//! The moderator leaderboard and swarm health: what a Tribler-style client
//! could render from its local protocol state (paper §V-A's "top-K
//! moderators screen").
//!
//! Run with:
//! ```text
//! cargo run --release --example moderator_board
//! ```

use robust_vote_sampling::bittorrent::network_health;
use robust_vote_sampling::core::ModeratorBoard;
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use robust_vote_sampling::sim::{NodeId, SimDuration, SimTime};
use robust_vote_sampling::trace::TraceGenConfig;

fn main() {
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(30)).generate(8);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 8);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 8);
    println!("running 30 simulated hours of the full stack…\n");
    system.run_until(
        SimTime::from_hours(30),
        SimDuration::from_hours(30),
        |_, _| {},
    );

    // Pick the node with the largest ballot sample as "our" client.
    let observer = (0..system.trace_peer_count())
        .map(NodeId::from_index)
        .max_by_key(|&n| system.votes().ballot(n).unique_voters())
        .expect("population non-empty");
    let board = ModeratorBoard::from_ballot(system.votes().ballot(observer), 5);
    println!("moderator leaderboard as seen by {observer}:");
    println!("{board}\n");
    println!("(ground truth: M1={} was voted up, M3={} down)", m[0], m[2]);

    println!("\nswarm health at the end of the run:");
    for h in network_health(system.net()) {
        println!("  {h}");
    }

    assert_eq!(
        board.entries.first().map(|e| e.moderator),
        Some(m[0]),
        "the approved moderator should lead the board"
    );
    println!("\nboard and health rendered — example OK");
}
