//! Quickstart: assemble the full system on a small synthetic trace, let
//! three moderators publish metadata, have part of the population vote,
//! and watch the network converge on the correct moderator ranking.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use robust_vote_sampling::scenario::{run_vote_sampling, VoteSamplingConfig};

fn main() {
    // A scaled-down Figure 6 scenario: 24 peers, 36 simulated hours,
    // moderators M1/M2/M3 with +votes for M1 and −votes for M3.
    let cfg = VoteSamplingConfig::quick_demo(42);
    println!("robust-vote-sampling quickstart");
    println!(
        "  population: {} peers, {} simulated hours, {} runs",
        cfg.trace.n_peers,
        cfg.duration.as_secs() / 3600,
        cfg.runs
    );
    println!(
        "  protocol: B_min={}, B_max={}, V_max={}, K={}, T={} MiB",
        cfg.protocol.votes.b_min,
        cfg.protocol.votes.b_max,
        cfg.protocol.votes.v_max,
        cfg.protocol.votes.k,
        cfg.protocol.experience_t_mib,
    );
    println!();

    let outcome = run_vote_sampling(&cfg);
    let [m1, m2, m3] = outcome.moderators;
    println!("moderators (first run): M1={m1} M2={m2} M3={m3}");
    println!("fraction of nodes ranking M1 > M2 > M3 over time:\n");
    for s in &outcome.accuracy.samples {
        let bar_len = (s.value * 40.0).round() as usize;
        println!(
            "  {:>6.1} h  {:>6.3}  {}",
            s.time.as_hours_f64(),
            s.value,
            "#".repeat(bar_len)
        );
    }
    let final_accuracy = outcome.accuracy.last().expect("samples exist").value;
    println!("\nfinal accuracy: {final_accuracy:.3}");
    assert!(
        final_accuracy > 0.5,
        "expected a majority of nodes to converge"
    );
    println!("the population converged on the correct ordering — quickstart OK");
}
