//! `rvs` — command-line front end for the robust-vote-sampling library.
//!
//! ```text
//! rvs trace --seed 42 --peers 100 --hours 168 [--out trace.json]
//! rvs stats --traces 10 --seed 1
//! rvs run   --seed 7 --peers 40 --hours 48 [--t-mib 5] [--loss 0.1]
//! rvs attack --seed 7 --core 10 --crowd 20 --hours 48
//! ```
//!
//! Every command is deterministic in its `--seed`. This is the quickest
//! way to poke at the system without writing code; the experiment
//! binaries in `rvs-bench` regenerate the paper's figures.

use robust_vote_sampling::attacks::{Flooder, Malformer};
use robust_vote_sampling::checkpoint::FORMAT_VERSION;
use robust_vote_sampling::core::ModeratorBoard;
use robust_vote_sampling::faults::FaultSchedule;
use robust_vote_sampling::guard::GuardConfig;
use robust_vote_sampling::metrics::TimeSeries;
use robust_vote_sampling::scenario::checkpoint::{
    golden_checkpoint, golden_file_name, GOLDEN_SEEDS,
};
use robust_vote_sampling::scenario::experiments::experience::dataset_statistics;
use robust_vote_sampling::scenario::experiments::spam::fig8_setup;
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{Checkpoint, ProtocolConfig, System};
use robust_vote_sampling::sim::{NodeId, SimDuration, SimTime};
use robust_vote_sampling::telemetry;
use robust_vote_sampling::trace::{io, TraceGenConfig, TraceStats};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // rvs-lint: allow(ambient-env) -- CLI argument parsing at the binary entry point
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "trace" => cmd_trace(&flags),
        "stats" => cmd_stats(&flags),
        "run" => cmd_run(&flags),
        "attack" => cmd_attack(&flags),
        "ckpt" => cmd_ckpt(&args[1..], &flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rvs — robust vote sampling playground

USAGE:
    rvs trace  [--seed N] [--peers N] [--hours N] [--out FILE]
        generate a filelist-calibrated churn trace (JSON when --out given)
    rvs stats  [--seed N] [--traces N]
        dataset statistics over N traces (the paper's §VI summary)
    rvs run    [--seed N] [--peers N] [--hours N] [--t-mib X] [--loss X]
               [--faults FILE] [--guard on|FILE] [--threads N] [--shards K]
               [--telemetry FILE|-] [--checkpoint-every N]
               [--checkpoint-dir D] [--resume FILE]
        full-stack Figure 6 scenario; prints the accuracy curve and the
        best-informed node's moderator board. --faults loads a JSON
        FaultSchedule (latency/jitter, loss, burst loss, duplication,
        partitions, crash-restarts, retry/backoff; see DESIGN.md §10)
        and routes every delivery through the fault-injection plane.
        --guard arms the Byzantine message plane (DESIGN.md §13): `on`
        uses the built-in active preset, otherwise FILE is a GuardConfig
        JSON naming every knob.
        --checkpoint-every N writes a checkpoint every N simulated hours
        into --checkpoint-dir (default `.`); --resume FILE restores a
        checkpoint and continues the run to --hours — byte-identical to
        never having stopped (DESIGN.md §12), on any --threads
    rvs attack [--seed N] [--peers N] [--core N] [--crowd N] [--hours N]
               [--flood N] [--flood-rate N] [--malform PM]
               [--guard on|FILE] [--threads N] [--shards K]
               [--telemetry FILE|-]
        Figure 8 flash-crowd scenario; prints the pollution curve.
        --flood N turns the N highest-index trace peers into flooders
        (--flood-rate extra sends per member per round, default 12);
        --malform PM mutates PM per mille of guarded wire messages.
        Either attack arms the guard plane's active preset unless
        --guard overrides it; rejection counters land in --telemetry
    rvs ckpt inspect FILE
        print a checkpoint's header summary (any format version)
    rvs ckpt regen [--dir D]
        regenerate the golden checkpoint corpus (default D: tests/golden)

    --threads N shards the simulation round engine across N worker
    threads (0 = honour RVS_THREADS, the default). Results are
    byte-identical for every N; see DESIGN.md §11.
    --shards K partitions the population into K deterministic shards
    whose cross-shard gossip rides serialized envelopes on the shard
    bus (0 = keep the current count, default 1). Results are
    byte-identical for every K; see DESIGN.md §14.
    --telemetry dumps a JSON snapshot of the per-protocol counters (and
    wall-clock phase timings) to FILE, or to stdout when FILE is `-`.";

fn parse_flags(rest: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut it = rest.iter();
    while let Some(k) = it.next() {
        if let Some(name) = k.strip_prefix("--") {
            if let Some(v) = it.next() {
                flags.insert(name.to_string(), v.clone());
            }
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &BTreeMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Honour `--telemetry FILE|-`: dump the system's counter snapshot as JSON
/// to FILE (stdout when `-`). Call `telemetry::set_enabled(true)` *before*
/// the run so the wall-clock phase timers populate too.
fn dump_telemetry(system: &System, flags: &BTreeMap<String, String>) -> Result<(), ExitCode> {
    let Some(dest) = flags.get("telemetry") else {
        return Ok(());
    };
    let json = system.telemetry_snapshot().to_json();
    if dest == "-" {
        println!("{json}");
    } else if let Err(e) = std::fs::write(dest, json + "\n") {
        eprintln!("failed to write telemetry to {dest}: {e}");
        return Err(ExitCode::FAILURE);
    } else {
        println!("\ntelemetry snapshot written to {dest}");
    }
    Ok(())
}

/// Honour `--threads N`: shard the round engine across N workers. 0 (the
/// default) keeps the RVS_THREADS-derived count the System booted with.
/// Thread count never changes results — only wall-clock time — which is
/// proven byte-for-byte by tests/parallel_differential.rs.
fn apply_threads(system: &mut System, flags: &BTreeMap<String, String>) {
    let threads: usize = get(flags, "threads", 0);
    if threads > 0 {
        system.set_threads(threads.min(64));
    }
}

/// Honour `--shards K`: partition the population into K deterministic
/// shards (0, the default, keeps the system's current count — 1 for a
/// fresh system, the checkpointed count after --resume). Shard count
/// never changes results — only the scale-out geometry — which is proven
/// byte-for-byte by tests/shard_differential.rs.
fn apply_shards(system: &mut System, flags: &BTreeMap<String, String>) {
    let shards: usize = get(flags, "shards", 0);
    if shards > 0 {
        system.set_shards(shards);
    }
}

/// Honour `--guard on|FILE`: arm the Byzantine guard plane with the
/// built-in active preset, or with a `GuardConfig` JSON file (a config
/// file names every knob — start from the JSON of the active preset).
fn apply_guard(system: &mut System, flags: &BTreeMap<String, String>) -> Result<(), ExitCode> {
    let Some(spec) = flags.get("guard") else {
        return Ok(());
    };
    let cfg = if spec == "on" {
        GuardConfig::active()
    } else {
        let text = match std::fs::read_to_string(spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read guard config {spec}: {e}");
                return Err(ExitCode::FAILURE);
            }
        };
        match serde_json::from_str(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("invalid guard config {spec}: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    };
    system.set_guard_config(cfg);
    Ok(())
}

fn trace_cfg(flags: &BTreeMap<String, String>) -> TraceGenConfig {
    let peers: usize = get(flags, "peers", 100);
    let hours: u64 = get(flags, "hours", 168);
    if peers == 100 && hours == 168 {
        TraceGenConfig::filelist_like()
    } else {
        TraceGenConfig {
            n_peers: peers,
            duration: SimDuration::from_hours(hours),
            founder_count: (peers / 5).max(1),
            ..TraceGenConfig::filelist_like()
        }
    }
}

fn cmd_trace(flags: &BTreeMap<String, String>) -> ExitCode {
    let seed: u64 = get(flags, "seed", 42);
    let cfg = trace_cfg(flags);
    let trace = cfg.generate(seed);
    println!("{}", TraceStats::compute(&trace));
    if let Some(path) = flags.get("out") {
        match io::save(&trace, std::path::Path::new(path)) {
            Ok(()) => println!("\nwritten to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_stats(flags: &BTreeMap<String, String>) -> ExitCode {
    let seed: u64 = get(flags, "seed", 1);
    let traces: usize = get(flags, "traces", 10);
    let cfg = trace_cfg(flags);
    let (_, mean) = dataset_statistics(&cfg, traces, seed);
    println!("mean over {traces} traces:\n{mean}");
    ExitCode::SUCCESS
}

fn cmd_run(flags: &BTreeMap<String, String>) -> ExitCode {
    let seed: u64 = get(flags, "seed", 7);
    let mut flags = flags.clone();
    flags.entry("peers".into()).or_insert_with(|| "40".into());
    flags.entry("hours".into()).or_insert_with(|| "48".into());
    let hours: u64 = get(&flags, "hours", 48);
    if flags.contains_key("telemetry") {
        telemetry::set_enabled(true);
    }
    // --resume restores everything (seed, trace, cast, fault plane) from
    // the checkpoint; the fresh-run flags configure a new system.
    let (mut system, m) = if let Some(path) = flags.get("resume") {
        let ckpt = match Checkpoint::load(Path::new(path)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("failed to load checkpoint {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let system = match System::restore(&ckpt) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot restore {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("resumed from {path} at {}", system.now());
        // The Fig 6 cast is a pure function of (trace, seed), both of
        // which the checkpoint carries — recompute the expected order.
        let (_, m) = fig6_setup(system.trace(), 0.15, 0.15, system.seed());
        (system, m)
    } else {
        let cfg = trace_cfg(&flags);
        let trace = cfg.generate(seed);
        let (setup, m) = fig6_setup(&trace, 0.15, 0.15, seed);
        let protocol = ProtocolConfig {
            experience_t_mib: get(&flags, "t-mib", 5.0),
            message_loss: get(&flags, "loss", 0.0),
            ..ProtocolConfig::default()
        };
        let schedule = match flags.get("faults") {
            Some(path) => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("failed to read fault schedule {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match FaultSchedule::from_json(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("invalid fault schedule {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => FaultSchedule::default(),
        };
        (
            System::with_faults(trace, protocol, setup, seed, schedule),
            m,
        )
    };
    apply_threads(&mut system, &flags);
    apply_shards(&mut system, &flags);
    if let Err(code) = apply_guard(&mut system, &flags) {
        return code;
    }
    let end = SimTime::from_hours(hours);
    let sample = SimDuration::from_hours((hours / 12).max(1));
    let ckpt_every: u64 = get(&flags, "checkpoint-every", 0);
    let mut series = TimeSeries::new("accuracy");
    if ckpt_every == 0 {
        system.run_until(end, sample, |sys, now| {
            series.push(now, sys.ordering_accuracy(&m));
        });
    } else {
        // Observe hourly so both the sampling cadence and the checkpoint
        // cadence land on exact hour marks; failures inside the closure
        // are carried out and reported after the run.
        let dir = flags
            .get("checkpoint-dir")
            .cloned()
            .unwrap_or_else(|| ".".to_string());
        let mut next_series = system.now();
        let mut next_ckpt = system.now() + SimDuration::from_hours(ckpt_every);
        let mut save_error: Option<String> = None;
        system.run_until(end, SimDuration::from_hours(1), |sys, now| {
            if now >= next_series || now >= end {
                series.push(now, sys.ordering_accuracy(&m));
                next_series = now + sample;
            }
            if now >= next_ckpt && now < end && save_error.is_none() {
                next_ckpt = now + SimDuration::from_hours(ckpt_every);
                let hours_mark = now.as_millis() / 3_600_000;
                let path = Path::new(&dir).join(format!("ckpt-{hours_mark}h.ckpt"));
                match sys.checkpoint().save(&path) {
                    Ok(()) => eprintln!("checkpoint written to {}", path.display()),
                    Err(e) => save_error = Some(format!("{}: {e}", path.display())),
                }
            }
        });
        if let Some(msg) = save_error {
            eprintln!("failed to write checkpoint {msg}");
            return ExitCode::FAILURE;
        }
    }
    println!("fraction of nodes ranking M1 > M2 > M3:");
    print!("{}", TimeSeries::render_table(&[&series]));
    let observer = (0..system.trace_peer_count())
        .map(NodeId::from_index)
        .max_by_key(|&n| system.votes().ballot(n).unique_voters())
        .expect("non-empty population");
    println!("\nmoderator board at {observer}:");
    println!(
        "{}",
        ModeratorBoard::from_ballot(system.votes().ballot(observer), 5)
    );
    if let Err(code) = dump_telemetry(&system, &flags) {
        return code;
    }
    ExitCode::SUCCESS
}

/// `rvs ckpt inspect FILE` / `rvs ckpt regen [--dir D]`.
fn cmd_ckpt(rest: &[String], flags: &BTreeMap<String, String>) -> ExitCode {
    match rest.first().map(String::as_str) {
        Some("inspect") => {
            let Some(path) = rest.get(1).filter(|p| !p.starts_with("--")) else {
                eprintln!("usage: rvs ckpt inspect FILE");
                return ExitCode::FAILURE;
            };
            let ckpt = match Checkpoint::load(Path::new(path)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("failed to load checkpoint {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match ckpt.peek_info() {
                Ok(info) => {
                    println!("{info}");
                    if info.version != FORMAT_VERSION {
                        println!(
                            "note: this build restores version {FORMAT_VERSION} only; \
                             the file cannot be resumed here"
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot read checkpoint header of {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("regen") => {
            let dir = flags
                .get("dir")
                .cloned()
                .unwrap_or_else(|| "tests/golden".to_string());
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create {dir}: {e}");
                return ExitCode::FAILURE;
            }
            for seed in GOLDEN_SEEDS {
                let path = Path::new(&dir).join(golden_file_name(seed));
                if let Err(e) = golden_checkpoint(seed).save(&path) {
                    eprintln!("failed to write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: rvs ckpt inspect FILE | rvs ckpt regen [--dir D]");
            ExitCode::FAILURE
        }
    }
}

fn cmd_attack(flags: &BTreeMap<String, String>) -> ExitCode {
    let seed: u64 = get(flags, "seed", 7);
    let mut flags = flags.clone();
    flags.entry("peers".into()).or_insert_with(|| "40".into());
    flags.entry("hours".into()).or_insert_with(|| "48".into());
    let hours: u64 = get(&flags, "hours", 48);
    let core: usize = get(&flags, "core", 10);
    let crowd: usize = get(&flags, "crowd", 20);
    let cfg = trace_cfg(&flags);
    let trace = cfg.generate(seed);
    if trace.peer_count() <= core {
        eprintln!("--core must be smaller than --peers");
        return ExitCode::FAILURE;
    }
    let setup = fig8_setup(&trace, core, crowd);
    let spam = NodeId::from_index(trace.peer_count());
    let protocol = ProtocolConfig {
        experience_t_mib: get(&flags, "t-mib", 5.0),
        ..ProtocolConfig::default()
    };
    if flags.contains_key("telemetry") {
        telemetry::set_enabled(true);
    }
    let mut system = System::new(trace, protocol, setup, seed);
    apply_threads(&mut system, &flags);
    apply_shards(&mut system, &flags);
    // Byzantine adversaries: flooders are the highest-index trace peers
    // (the founder core occupies the low indices), the malformer mutates
    // guarded wire messages at the given per-mille rate. Either attack
    // needs the guard plane up to be observable, so arm the active
    // preset unless --guard picked a config explicitly.
    let flood: usize = get(&flags, "flood", 0);
    let flood_rate: u32 = get(&flags, "flood-rate", 12);
    let malform: u32 = get(&flags, "malform", 0);
    let n_trace = system.trace_peer_count();
    if flood > 0 {
        let members = (n_trace.saturating_sub(flood)..n_trace).map(NodeId::from_index);
        system.set_flooder(Flooder::new(members, flood_rate));
    }
    if malform > 0 {
        system.set_malformer(Malformer::new(malform.min(1000)));
    }
    if (flood > 0 || malform > 0) && !flags.contains_key("guard") {
        system.set_guard_config(GuardConfig::active());
    }
    if let Err(code) = apply_guard(&mut system, &flags) {
        return code;
    }
    let mut series = TimeSeries::new(format!("crowd={crowd}/core={core}"));
    system.run_until(
        SimTime::from_hours(hours),
        SimDuration::from_hours((hours / 12).max(1)),
        |sys, now| series.push(now, sys.new_node_pollution(spam)),
    );
    println!("proportion of newly arrived honest nodes ranking spam top:");
    print!("{}", TimeSeries::render_table(&[&series]));
    if system.guard().enabled() {
        let g = system.guard().counters();
        println!(
            "\nguard plane: {} accepted, {} rate-limited, {} dropped-in-quarantine, \
             {} quarantines started ({} released), {} flood sends, {} wire mutations",
            g.accepted,
            g.rejected_rate_limited,
            g.rejected_quarantined,
            g.quarantines_started,
            g.quarantines_released,
            g.flooder_sends,
            g.malformer_mutations,
        );
    }
    if let Err(code) = dump_telemetry(&system, &flags) {
        return code;
    }
    ExitCode::SUCCESS
}
