//! # robust-vote-sampling
//!
//! A production-quality Rust reproduction of *"Robust vote sampling in a P2P
//! media distribution system"* (Rahman, Hales, Meulpolder, Heinink, Pouwelse,
//! Sips — TU Delft, IPDPS 2009): fully decentralized metadata dissemination
//! (**ModerationCast**), collusion-resistant vote sampling (**BallotBox**),
//! fast bootstrap ranking (**VoxPopuli**), and a BarterCast-maxflow
//! **experience function**, evaluated on a piece-level BitTorrent simulator
//! driven by churn-calibrated peer traces.
//!
//! This facade crate re-exports the workspace's public API. Start with
//! [`scenario`] for ready-made experiment harnesses, or assemble a system
//! yourself from the protocol crates:
//!
//! * [`sim`] — deterministic discrete-event engine, time, RNG.
//! * [`trace`] — peer churn traces (synthetic, filelist.org-calibrated).
//! * [`bittorrent`] — piece-level swarm simulation and transfer accounting.
//! * [`checkpoint`] — stable versioned binary persistence (`Persist`).
//! * [`pss`] — peer sampling service (oracle + Newscast gossip).
//! * [`bartercast`] — contribution graphs, bounded maxflow, experience.
//! * [`modcast`] — signed moderations and approval-gated dissemination.
//! * [`core`] — BallotBox / VoxPopuli vote sampling and ranking.
//! * [`guard`] — Byzantine message plane: typed validation gates,
//!   per-peer rate budgets, deterministic quarantine.
//! * [`attacks`] — flash crowds, Sybils, moles, floods, wire mutation,
//!   lying aggregation.
//! * [`metrics`] — CEV, ordering accuracy, pollution, series statistics.
//! * [`telemetry`] — per-protocol counters, mergeable snapshots, timers.
//! * [`scenario`] — full-system wiring reproducing the paper's figures.
//!
//! ## Quickstart
//!
//! ```
//! use robust_vote_sampling::scenario::{VoteSamplingConfig, run_vote_sampling};
//!
//! // A scaled-down Figure-6 style run: three moderators, honest voters,
//! // measure how fast the population converges on M1 > M2 > M3.
//! let cfg = VoteSamplingConfig::quick_demo(42);
//! let outcome = run_vote_sampling(&cfg);
//! let final_accuracy = outcome.accuracy.last().expect("series non-empty");
//! assert!(final_accuracy.value > 0.5, "most nodes should converge");
//! ```

pub use rvs_attacks as attacks;
pub use rvs_bartercast as bartercast;
pub use rvs_bittorrent as bittorrent;
pub use rvs_checkpoint as checkpoint;
pub use rvs_core as core;
pub use rvs_faults as faults;
pub use rvs_guard as guard;
pub use rvs_metrics as metrics;
pub use rvs_modcast as modcast;
pub use rvs_pss as pss;
pub use rvs_scenario as scenario;
pub use rvs_sim as sim;
pub use rvs_telemetry as telemetry;
pub use rvs_trace as trace;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
