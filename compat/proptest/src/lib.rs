//! Offline stand-in for `proptest`.
//!
//! Deterministic property testing with the subset of the proptest API this
//! workspace uses: the [`strategy::Strategy`] trait with `prop_map`, integer
//! range / tuple / `Just` / `bool::ANY` / collection strategies, `prop_oneof!`,
//! the `proptest!` test macro with optional `#![proptest_config(...)]`, and
//! the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated inputs so it can be reproduced (generation is fully deterministic
//! — seeds derive from the test's module path, name, and case index, so runs
//! are stable across processes and thread counts).

pub mod strategy;

pub mod arbitrary {
    //! `any::<T>()` — the default strategy behind the `name: Type` argument
    //! shorthand in `proptest!`.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Uniform in [0, 1): always finite, which is what property tests
            // here actually want from an arbitrary float.
            rng.unit_f64()
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! `prop::collection` — sized container strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` strategy: up to `size` entries (key collisions collapse,
    /// as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            let mut map = BTreeMap::new();
            for _ in 0..len {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod bool {
    //! `prop::bool` — uniform boolean strategy.

    use crate::strategy::Strategy;
    use crate::TestRng;

    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure (from `prop_assert*`) or rejection (from `prop_assume!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Deterministic generator RNG (splitmix64). Seeded from the test identity and
/// case index so every run of the suite sees identical inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(module: &str, test: &str, case: u64) -> Self {
        // FNV-1a over the test identity, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain([b':', b':']).chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`), via 128-bit multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        if range.is_empty() {
            return range.start;
        }
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// The test macro. Mirrors real proptest's surface: an optional
/// `#![proptest_config(...)]` header, then test functions whose arguments
/// are either `pat in strategy` or the `name: Type` shorthand (which draws
/// from [`arbitrary::any`]). Write `#[test]` on each function, as with real
/// proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Splits the block into individual functions and hands each to the
/// argument muncher.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $crate::__proptest_fn! { ($cfg) $(#[$meta])* fn $name [] [] ( $($args)* ) $body }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Argument muncher: folds `pat in strategy` / `name: Type` arguments into
/// parallel pattern and strategy lists, then emits the test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fn {
    // `name: Type` shorthand, more args follow (or trailing comma).
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident
      [ $($pats:tt)* ] [ $($strats:tt)* ]
      ( $p:ident : $t:ty, $($rest:tt)* ) $body:block
    ) => {
        $crate::__proptest_fn! { ($cfg) $(#[$meta])* fn $name
            [ $($pats)* ($p) ] [ $($strats)* ($crate::arbitrary::any::<$t>()) ]
            ( $($rest)* ) $body }
    };
    // `name: Type` shorthand, final argument.
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident
      [ $($pats:tt)* ] [ $($strats:tt)* ]
      ( $p:ident : $t:ty ) $body:block
    ) => {
        $crate::__proptest_fn! { ($cfg) $(#[$meta])* fn $name
            [ $($pats)* ($p) ] [ $($strats)* ($crate::arbitrary::any::<$t>()) ]
            ( ) $body }
    };
    // `pat in strategy`, more args follow (or trailing comma).
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident
      [ $($pats:tt)* ] [ $($strats:tt)* ]
      ( $p:pat_param in $s:expr, $($rest:tt)* ) $body:block
    ) => {
        $crate::__proptest_fn! { ($cfg) $(#[$meta])* fn $name
            [ $($pats)* ($p) ] [ $($strats)* ($s) ]
            ( $($rest)* ) $body }
    };
    // `pat in strategy`, final argument.
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident
      [ $($pats:tt)* ] [ $($strats:tt)* ]
      ( $p:pat_param in $s:expr ) $body:block
    ) => {
        $crate::__proptest_fn! { ($cfg) $(#[$meta])* fn $name
            [ $($pats)* ($p) ] [ $($strats)* ($s) ]
            ( ) $body }
    };
    // All arguments consumed: emit the test function.
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident
      [ $(($pat:pat_param))+ ] [ $(($strat:expr))+ ]
      ( ) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rejected: u32 = 0;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    ::core::module_path!(),
                    ::core::stringify!($name),
                    __case as u64,
                );
                let __vals = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __input_desc = format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        if __rejected > __cfg.cases * 8 {
                            panic!("proptest {}: too many rejected inputs", stringify!($name));
                        }
                    }
                    ::std::result::Result::Err(__e) => {
                        panic!(
                            "proptest {} failed at case {}: {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            __e,
                            __input_desc
                        );
                    }
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, bool)> {
        (0u32..100, prop::bool::ANY)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, y in 0usize..3) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn mapped_strategy_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0u8..255, 0..20)) {
            prop_assert!(v.len() < 20);
        }

        #[test]
        fn oneof_picks_arms(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn tuples_compose(p in arb_pair()) {
            prop_assert!(p.0 < 100);
        }

        #[test]
        fn any_shorthand_and_floats(seed: u64, flag: bool, f in 0.25f64..0.75) {
            let _ = (seed, flag);
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 0..50);
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::for_case("m", "t", 7);
            crate::strategy::Strategy::generate(&strat, &mut rng)
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::for_case("m", "t", 7);
            crate::strategy::Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(a, b);
    }
}
