//! The `Strategy` trait and core combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// No shrinking: `generate` produces one value from the RNG. `prop_map`
/// mirrors the real proptest combinator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// --- integer ranges ---------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width u64/i64 range: use a raw draw.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding landing exactly on `end`.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// --- tuples -----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
