//! Offline stand-in for `rand`.
//!
//! The workspace's own `DetRng` (crates/sim) is the only RNG; it implements
//! [`RngCore`] so generic code written against the rand trait keeps working.
//! Only the trait and its [`Error`] type are provided — no distributions,
//! no thread_rng.

use std::fmt;

/// Error type for fallible RNG operations. The deterministic RNGs in this
/// workspace never fail, so this exists purely to satisfy signatures.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core RNG interface, mirroring `rand::RngCore` 0.8.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
