//! Offline stand-in for `serde_derive`.
//!
//! Derives the mini-serde `Serialize` / `Deserialize` traits (see the compat
//! `serde` crate) by hand-parsing the item's token stream — no `syn`/`quote`,
//! so the crate builds with no dependencies at all. Supported shapes are
//! exactly what this workspace uses: non-generic named structs, tuple structs
//! (including `#[serde(transparent)]` newtypes with private fields), unit
//! structs, and enums whose variants are unit, tuple, or named-field.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VFields,
}

enum VFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return format!("::core::compile_error!({msg:?});").parse().unwrap(),
    };
    let code = match mode {
        Mode::Ser => gen_serialize(&item),
        Mode::De => gen_deserialize(&item),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match toks.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => return Err(format!("derive: expected struct/enum, got {other:?}")),
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive: expected item name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("derive: generic type {name} is not supported"));
        }
    }

    if is_enum {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("derive: expected enum body, got {other:?}")),
        };
        let mut variants = Vec::new();
        for chunk in split_top_level(body) {
            if let Some(v) = parse_variant(&chunk)? {
                variants.push(v);
            }
        }
        return Ok(Item {
            name,
            kind: Kind::Enum(variants),
        });
    }

    match toks.get(i) {
        None => Ok(Item {
            name,
            kind: Kind::Unit,
        }),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
            name,
            kind: Kind::Unit,
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Item {
                name,
                kind: Kind::Named(fields),
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = split_top_level(g.stream())
                .into_iter()
                .filter(|c| !c.is_empty())
                .count();
            Ok(Item {
                name,
                kind: Kind::Tuple(n),
            })
        }
        other => Err(format!("derive: unexpected struct body {other:?}")),
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Result<Option<Variant>, String> {
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = chunk.get(i) {
        if p.as_char() == '#' {
            i += 2;
        } else {
            break;
        }
    }
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        None => return Ok(None), // trailing comma
        other => return Err(format!("derive: expected variant name, got {other:?}")),
    };
    i += 1;
    let fields = match chunk.get(i) {
        None => VFields::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            return Err(format!(
                "derive: explicit discriminant on variant {name} is not supported"
            ))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VFields::Named(parse_named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = split_top_level(g.stream())
                .into_iter()
                .filter(|c| !c.is_empty())
                .count();
            VFields::Tuple(n)
        }
        other => return Err(format!("derive: unexpected variant body {other:?}")),
    };
    Ok(Some(Variant { name, fields }))
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(body) {
        let mut i = 0;
        loop {
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // attribute
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = chunk.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => {} // trailing comma
            other => return Err(format!("derive: expected field name, got {other:?}")),
        }
    }
    Ok(names)
}

/// Split a token stream on top-level commas (commas inside `<...>` generic
/// argument lists and inside delimited groups don't count).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VFields::Unit => arms.push(format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    )),
                    VFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(::std::string::String::from({vname:?}), {payload})]),",
                            binds.join(", ")
                        ));
                    }
                    VFields::Named(fields) => {
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(::std::string::String::from({vname:?}), ::serde::Value::Object(vec![{}]))]),",
                            fields.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?; \
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple arity for {name}\")); }} \
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::object_get(__obj, {f:?}).ok_or_else(|| ::serde::DeError::new(\"missing field {name}.{f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VFields::Unit => {
                        unit_arms.push(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                        payload_arms.push(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                    }
                    VFields::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(__payload)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            format!(
                                "{{ let __arr = __payload.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vname}\"))?; \
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for {name}::{vname}\")); }} \
                                 {name}::{vname}({}) }}",
                                elems.join(", ")
                            )
                        };
                        payload_arms
                            .push(format!("{vname:?} => ::std::result::Result::Ok({ctor}),"));
                    }
                    VFields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::object_get(__fields, {f:?}).ok_or_else(|| ::serde::DeError::new(\"missing field {name}::{vname}.{f}\"))?)?"
                                )
                            })
                            .collect();
                        payload_arms.push(format!(
                            "{vname:?} => {{ let __fields = __payload.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}::{vname}\"))?; \
                             ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{ \
                     ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {} \
                         __other => ::std::result::Result::Err(::serde::DeError::new(&format!(\"unknown variant {{__other}} for {name}\"))), \
                     }}, \
                     _ => {{ \
                         let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected string or object for {name}\"))?; \
                         if __obj.len() != 1 {{ return ::std::result::Result::Err(::serde::DeError::new(\"expected single-key object for {name}\")); }} \
                         let (__tag, __payload) = (&__obj[0].0, &__obj[0].1); \
                         let _ = __payload; \
                         match __tag.as_str() {{ \
                             {} \
                             __other => ::std::result::Result::Err(::serde::DeError::new(&format!(\"unknown variant {{__other}} for {name}\"))), \
                         }} \
                     }} \
                 }}",
                unit_arms.join(" "),
                payload_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
