//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock timing harness with the benchmark-group API surface
//! the workspace's benches use. No statistics engine — each benchmark is
//! warmed up briefly, then timed over a fixed number of samples and the
//! median per-iteration time is printed. Good enough for relative
//! comparisons on one machine, which is all the benches are for.
//!
//! Like real criterion, `cargo bench -- --test` switches to a smoke mode
//! that runs every benchmark exactly once and reports `ok` instead of
//! timing it — cheap enough for CI to catch bench bitrot on every push.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver. `criterion_group!` constructs one and passes
/// it to each registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let id = name.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, e.g. `merge/1024`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    /// Iterations to run inside one sample.
    iters: u64,
    /// Total elapsed time across those iterations.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// `cargo bench -- --test`: execute each bench once, no timing loops.
fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    if smoke_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    // Warm-up & calibration: find an iteration count that takes ~5ms/sample.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "bench {label:<40} median {} (min {}, max {}, {iters} iters x {sample_size} samples)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
