//! Offline stand-in for `serde`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this crate provides the minimal subset of the serde data model that the
//! workspace actually uses: a [`Value`] tree, [`Serialize`] / [`Deserialize`]
//! traits converting to/from it, and impls for the std types that appear in
//! serialized structs (`Vec`, `VecDeque`, `Option`, `BTreeMap`, `BTreeSet`,
//! tuples, integers, floats, `String`, `bool`). The companion `serde_json`
//! crate renders/parses the tree as JSON; the `derive` feature re-exports the
//! hand-rolled `serde_derive` proc macros.
//!
//! Design notes:
//! - Objects are `Vec<(String, Value)>`, preserving insertion order so JSON
//!   output is deterministic.
//! - `BTreeMap` serializes as an array of `[key, value]` pairs because the
//!   workspace uses non-string keys (e.g. `(NodeId, NodeId)` tuples), which
//!   plain JSON objects cannot represent.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model: everything serializable lowers to this tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }
}

/// Look up a key in an object's field list (linear scan; objects are small).
pub fn object_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: &str) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitives -------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

// --- references and containers ---------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::new("expected array of pairs"))?;
        let mut map = BTreeMap::new();
        for pair in arr {
            let p = pair
                .as_array()
                .ok_or_else(|| DeError::new("expected [key, value] pair"))?;
            if p.len() != 2 {
                return Err(DeError::new("expected [key, value] pair"));
            }
            map.insert(K::from_value(&p[0])?, V::from_value(&p[1])?);
        }
        Ok(map)
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                if arr.len() != $n {
                    return Err(DeError::new("wrong tuple arity"));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn container_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 9u64);
        assert_eq!(
            BTreeMap::<(u32, u32), u64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn option_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }
}
