//! Offline stand-in for `serde_json`.
//!
//! Renders the compat-`serde` [`Value`] tree as JSON (compact and pretty) and
//! parses JSON text back into it. Covers the API surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and an [`Error`] type
//! that implements `std::error::Error`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error with a message and, for parse errors,
/// a byte offset into the input.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {}", self.msg, off),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into a raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; serde_json emits null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognisable as floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::at(
                format!("unexpected character '{}'", other as char),
                self.pos,
            )),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected '{lit}'"), self.pos))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect a \uXXXX low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::at("invalid low surrogate", start));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::at("invalid surrogate pair", start))?
                                } else {
                                    return Err(Error::at("lone high surrogate", start));
                                }
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::at("invalid \\u escape", start))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at("invalid utf-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        if self.bytes.len() < start + 4 {
            return Err(Error::at("truncated \\u escape", start));
        }
        let hex = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| Error::at("invalid \\u escape", start))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| Error::at("invalid \\u escape", start))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x\"y\n".to_string())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(parse_value_str(&s).unwrap(), v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = Value::Array(vec![
            Value::Float(1.5),
            Value::Int(-3),
            Value::Object(vec![("k".to_string(), Value::UInt(7))]),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(parse_value_str(&s).unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        let m: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.0)];
        let s = to_string(&m).unwrap();
        let back: Vec<(u32, f64)> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unicode_escapes() {
        let v: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "Aé😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_str("{\"a\": }").is_err());
        assert!(parse_value_str("[1, 2,]").is_err());
        assert!(parse_value_str("tru").is_err());
    }
}
