//! Ranking-correctness measures (Figure 6).
//!
//! A node is counted *correct* when its current ranking places the
//! reference moderators in strictly the ground-truth order (for Figure 6:
//! `M1 > M2 > M3`). Moderators absent from a node's list are treated as
//! tied at rank `K+1`, so a node that cannot yet distinguish them is not
//! counted correct — matching the paper's "voting nodes do not vote until
//! they receive the appropriate moderations" dynamics where early nodes
//! simply have no opinion.

use rvs_sim::ModeratorId;

/// Rank lookup with the `K+1` convention for absent moderators.
fn effective_rank(list: &[ModeratorId], m: ModeratorId) -> usize {
    list.iter()
        .position(|&x| x == m)
        .map(|p| p + 1)
        .unwrap_or(list.len().max(1) + 1)
}

/// Does `list` rank `expected` (best first) without inversions?
///
/// Correct means: the best expected moderator actually appears in the
/// list, and no expected pair is ordered contrary to the ground truth
/// (absent moderators tie at rank `K+1`; a tie is not an inversion). This
/// matches how a VoxPopuli-bootstrapped node "knows the ordering": its
/// merged list may carry only the positively-recommended `M1`, which
/// correctly implies `M1 > M2` and `M1 > M3` while claiming nothing wrong
/// about `M2` vs `M3`. A node listing a net-negative moderator *above* an
/// unvoted one is inverted and counts as incorrect.
pub fn orders_correctly(list: &[ModeratorId], expected: &[ModeratorId]) -> bool {
    match expected.first() {
        None => return false,
        Some(&best) => {
            if !list.contains(&best) {
                return false;
            }
        }
    }
    expected.windows(2).all(|w| {
        let ra = effective_rank(list, w[0]);
        let rb = effective_rank(list, w[1]);
        ra <= rb
    })
}

/// Fraction of nodes whose ranking orders `expected` correctly.
///
/// `rankings` yields each node's current top-K list (as a slice of
/// moderators, best first).
pub fn correct_ordering_fraction<'a>(
    rankings: impl Iterator<Item = &'a [ModeratorId]>,
    expected: &[ModeratorId],
) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for list in rankings {
        total += 1;
        if orders_correctly(list, expected) {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Normalised Kendall-tau distance between a ranking and a reference
/// ordering over the reference's moderators: the fraction of reference
/// pairs ranked in the wrong relative order (absent ⇒ rank `K+1` ties,
/// which count as half-discordant). 0 = identical order, 1 = reversed.
pub fn kendall_tau_distance(list: &[ModeratorId], expected: &[ModeratorId]) -> f64 {
    let k = expected.len();
    if k < 2 {
        return 0.0;
    }
    let mut discordant = 0.0;
    let mut pairs = 0.0;
    for a in 0..k {
        for b in (a + 1)..k {
            pairs += 1.0;
            let ra = effective_rank(list, expected[a]);
            let rb = effective_rank(list, expected[b]);
            if ra > rb {
                discordant += 1.0;
            } else if ra == rb {
                discordant += 0.5;
            }
        }
    }
    discordant / pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::NodeId;

    fn ids(v: &[u32]) -> Vec<ModeratorId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn exact_order_is_correct() {
        assert!(orders_correctly(&ids(&[1, 2, 3]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn extra_entries_do_not_hurt() {
        assert!(orders_correctly(&ids(&[9, 1, 7, 2, 3]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn swapped_pair_is_incorrect() {
        assert!(!orders_correctly(&ids(&[2, 1, 3]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn missing_tail_moderator_counts_as_k_plus_one() {
        // M3 missing: rank 4 > rank of M2 => still correct.
        assert!(orders_correctly(&ids(&[1, 2]), &ids(&[1, 2, 3])));
        // M2 missing while M3 is present: M2 (rank 4) > M3 (rank 2) =>
        // inversion => wrong.
        assert!(!orders_correctly(&ids(&[1, 3]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn empty_list_is_incorrect() {
        assert!(!orders_correctly(&ids(&[]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn best_moderator_alone_is_correct() {
        // Only M1 present (a VoxPopuli recommendation list): M2 and M3 tie
        // at K+1 — no inversion, so the ordering holds.
        assert!(orders_correctly(&ids(&[1]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn best_moderator_absent_is_incorrect() {
        // M2 present alone: M1 is missing, so the node does not know the
        // top moderator.
        assert!(!orders_correctly(&ids(&[2]), &ids(&[1, 2, 3])));
    }

    #[test]
    fn fraction_counts_correct_nodes() {
        let a = ids(&[1, 2, 3]);
        let b = ids(&[3, 2, 1]);
        let c = ids(&[1, 2]);
        let rankings = [a.as_slice(), b.as_slice(), c.as_slice()];
        let f = correct_ordering_fraction(rankings.into_iter(), &ids(&[1, 2, 3]));
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_empty_population_is_zero() {
        let f = correct_ordering_fraction(std::iter::empty(), &ids(&[1, 2]));
        assert_eq!(f, 0.0);
    }

    #[test]
    fn kendall_identity_is_zero() {
        assert_eq!(
            kendall_tau_distance(&ids(&[1, 2, 3]), &ids(&[1, 2, 3])),
            0.0
        );
    }

    #[test]
    fn kendall_reversal_is_one() {
        assert_eq!(
            kendall_tau_distance(&ids(&[3, 2, 1]), &ids(&[1, 2, 3])),
            1.0
        );
    }

    #[test]
    fn kendall_single_swap() {
        let d = kendall_tau_distance(&ids(&[2, 1, 3]), &ids(&[1, 2, 3]));
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_absent_pair_counts_half() {
        // Both M2, M3 absent: their pair ties (0.5); pairs (1,2) and (1,3)
        // are concordant. d = 0.5/3.
        let d = kendall_tau_distance(&ids(&[1]), &ids(&[1, 2, 3]));
        assert!((d - 0.5 / 3.0).abs() < 1e-12);
    }
}
