//! Time series: per-run measurement streams and multi-run aggregation.
//!
//! Every experiment samples its metric on a fixed wall-clock grid (e.g.
//! hourly), producing one [`TimeSeries`] per run; 10-run averages (as in
//! Figures 6 and 8) align runs point-by-point on that shared grid.

use rvs_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the measurement was taken.
    pub time: SimTime,
    /// The measured value.
    pub value: f64,
}

/// A time-ordered sequence of measurements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Label used when rendering (e.g. `"T=5MB"` or `"crowd=2x"`).
    pub label: String,
    /// Samples in non-decreasing time order.
    pub samples: Vec<Sample>,
}

impl TimeSeries {
    /// An empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries {
            label: label.into(),
            samples: Vec::new(),
        }
    }

    /// Append a sample; must not go backwards in time.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.samples.last() {
            assert!(
                time >= last.time,
                "samples must be appended in time order ({time} after {})",
                last.time
            );
        }
        self.samples.push(Sample { time, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Value at (the sample closest to, from below) `t`.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        self.samples
            .iter()
            .take_while(|s| s.time <= t)
            .last()
            .map(|s| s.value)
    }

    /// Point-wise mean of several runs sampled on the same grid.
    ///
    /// # Panics
    /// Panics when runs disagree on length or sampling times — that would
    /// mean the experiment harness drifted between runs.
    pub fn mean_over(label: impl Into<String>, runs: &[TimeSeries]) -> TimeSeries {
        assert!(!runs.is_empty(), "mean_over needs at least one run");
        let n = runs[0].len();
        for r in runs {
            assert_eq!(r.len(), n, "runs must share the sampling grid");
        }
        let mut out = TimeSeries::new(label);
        for idx in 0..n {
            let t = runs[0].samples[idx].time;
            let mut sum = 0.0;
            for r in runs {
                assert_eq!(r.samples[idx].time, t, "runs must share the sampling grid");
                sum += r.samples[idx].value;
            }
            out.push(t, sum / runs.len() as f64);
        }
        out
    }

    /// Render several series as an aligned text table (time in hours),
    /// matching the bench binaries' output format.
    pub fn render_table(series: &[&TimeSeries]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>8}", "hours"));
        for s in series {
            out.push_str(&format!("  {:>14}", s.label));
        }
        out.push('\n');
        let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..rows {
            let t = series
                .iter()
                .find_map(|s| s.samples.get(i).map(|p| p.time))
                .unwrap_or(SimTime::ZERO);
            out.push_str(&format!("{:>8.1}", t.as_hours_f64()));
            for s in series {
                match s.samples.get(i) {
                    Some(p) => out.push_str(&format!("  {:>14.4}", p.value)),
                    None => out.push_str(&format!("  {:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.label)?;
        for s in &self.samples {
            writeln!(f, "{:.2}\t{:.6}", s.time.as_hours_f64(), s.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::SimDuration;

    fn series(label: &str, values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(label);
        let mut t = SimTime::ZERO;
        for &v in values {
            s.push(t, v);
            t += SimDuration::from_hours(1);
        }
        s
    }

    #[test]
    fn push_and_query() {
        let s = series("a", &[0.0, 0.5, 1.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last().unwrap().value, 1.0);
        assert_eq!(s.value_at(SimTime::from_mins(90)), Some(0.5));
        assert_eq!(s.value_at(SimTime::ZERO), Some(0.0));
    }

    #[test]
    fn value_before_first_sample_is_none() {
        let mut s = TimeSeries::new("a");
        s.push(SimTime::from_hours(5), 1.0);
        assert_eq!(s.value_at(SimTime::from_hours(4)), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn backwards_push_panics() {
        let mut s = TimeSeries::new("a");
        s.push(SimTime::from_hours(2), 1.0);
        s.push(SimTime::from_hours(1), 2.0);
    }

    #[test]
    fn mean_over_averages_pointwise() {
        let a = series("r1", &[0.0, 1.0]);
        let b = series("r2", &[1.0, 0.0]);
        let m = TimeSeries::mean_over("avg", &[a, b]);
        assert_eq!(m.samples[0].value, 0.5);
        assert_eq!(m.samples[1].value, 0.5);
        assert_eq!(m.label, "avg");
    }

    #[test]
    #[should_panic(expected = "sampling grid")]
    fn mean_over_rejects_misaligned_runs() {
        let a = series("r1", &[0.0, 1.0]);
        let b = series("r2", &[1.0]);
        TimeSeries::mean_over("avg", &[a, b]);
    }

    #[test]
    fn render_table_includes_labels_and_rows() {
        let a = series("alpha", &[0.1, 0.2]);
        let b = series("beta", &[0.3, 0.4]);
        let table = TimeSeries::render_table(&[&a, &b]);
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
        assert!(table.lines().count() == 3);
        assert!(table.contains("0.1000"));
    }

    #[test]
    fn display_emits_gnuplot_friendly_lines() {
        let s = series("x", &[0.25]);
        let text = s.to_string();
        assert!(text.starts_with("# x"));
        assert!(text.contains("0.00\t0.250000"));
    }
}
