//! Spam-pollution measure (Figure 8).
//!
//! Under a flash-crowd attack promoting spam moderator `M0`, Figure 8
//! plots "the proportion of newly arrived nodes ranking M0 top". A node is
//! *polluted* when the first entry of its current ranking is the spam
//! moderator.

use rvs_sim::ModeratorId;

/// Is a ranking polluted — i.e. is `spam` its top entry?
pub fn is_polluted(ranking: &[ModeratorId], spam: ModeratorId) -> bool {
    ranking.first() == Some(&spam)
}

/// Fraction of the given rankings that put `spam` on top. Returns 0 for an
/// empty population.
pub fn pollution_fraction<'a>(
    rankings: impl Iterator<Item = &'a [ModeratorId]>,
    spam: ModeratorId,
) -> f64 {
    let mut total = 0usize;
    let mut polluted = 0usize;
    for r in rankings {
        total += 1;
        if is_polluted(r, spam) {
            polluted += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        polluted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::NodeId;

    fn ids(v: &[u32]) -> Vec<ModeratorId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn top_spam_is_polluted() {
        assert!(is_polluted(&ids(&[0, 1, 2]), NodeId(0)));
    }

    #[test]
    fn lower_ranked_spam_is_clean() {
        assert!(!is_polluted(&ids(&[1, 0, 2]), NodeId(0)));
    }

    #[test]
    fn empty_ranking_is_clean() {
        assert!(!is_polluted(&ids(&[]), NodeId(0)));
    }

    #[test]
    fn fraction_over_population() {
        let a = ids(&[0, 1]);
        let b = ids(&[1, 0]);
        let c = ids(&[0]);
        let d = ids(&[]);
        let rankings = [a.as_slice(), b.as_slice(), c.as_slice(), d.as_slice()];
        let f = pollution_fraction(rankings.into_iter(), NodeId(0));
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_zero() {
        assert_eq!(pollution_fraction(std::iter::empty(), NodeId(0)), 0.0);
    }
}
