//! Convergence descriptors for experiment time series.
//!
//! The bench binaries summarise curves with a few standard scalars: when a
//! series first crosses a threshold, how long an excursion lasts, and the
//! time-average — used for the Figure 6 knee, the Figure 8 vulnerability
//! window, and the ablation comparisons respectively.

use crate::series::TimeSeries;
use rvs_sim::SimTime;

/// First sample time at which the series reaches `threshold` (≥), if any.
pub fn first_crossing(series: &TimeSeries, threshold: f64) -> Option<SimTime> {
    series
        .samples
        .iter()
        .find(|s| s.value >= threshold)
        .map(|s| s.time)
}

/// Total simulated time during which the series sits at or above
/// `threshold`, counting each sample interval by its left endpoint's
/// value. Returns hours.
pub fn time_above_hours(series: &TimeSeries, threshold: f64) -> f64 {
    let mut total = 0.0;
    for w in series.samples.windows(2) {
        if w[0].value >= threshold {
            total += (w[1].time - w[0].time).as_secs_f64() / 3600.0;
        }
    }
    total
}

/// Time-weighted mean of the series (trapezoidal). Returns 0 for series
/// with fewer than two samples.
pub fn time_mean(series: &TimeSeries) -> f64 {
    if series.len() < 2 {
        return series.samples.first().map(|s| s.value).unwrap_or(0.0);
    }
    let mut area = 0.0;
    let mut span = 0.0;
    for w in series.samples.windows(2) {
        let dt = (w[1].time - w[0].time).as_secs_f64();
        area += dt * (w[0].value + w[1].value) / 2.0;
        span += dt;
    }
    if span == 0.0 {
        series.samples[0].value
    } else {
        area / span
    }
}

/// The vulnerability window of an attack curve: time from the first
/// sample at/above `threshold` to the first *later* sample where the
/// series drops below `threshold` and stays below for the rest of the
/// series. `None` when the curve never reaches the threshold; the window
/// extends to the final sample when the series never durably recovers.
pub fn excursion_window_hours(series: &TimeSeries, threshold: f64) -> Option<f64> {
    let start = first_crossing(series, threshold)?;
    // Find the last sample at/above threshold.
    let last_above = series
        .samples
        .iter()
        .rev()
        .find(|s| s.value >= threshold)
        .expect("first_crossing implies one exists");
    Some((last_above.time - start).as_secs_f64() / 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::SimDuration;

    fn series(values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new("t");
        let mut t = SimTime::ZERO;
        for &v in values {
            s.push(t, v);
            t += SimDuration::from_hours(1);
        }
        s
    }

    #[test]
    fn first_crossing_finds_threshold() {
        let s = series(&[0.0, 0.2, 0.6, 0.9]);
        assert_eq!(first_crossing(&s, 0.5), Some(SimTime::from_hours(2)));
        assert_eq!(first_crossing(&s, 0.95), None);
    }

    #[test]
    fn time_above_counts_intervals() {
        let s = series(&[0.0, 0.6, 0.7, 0.1, 0.8]);
        // Intervals starting at samples 1, 2 (0.6, 0.7) and 4 has no right
        // neighbour; sample 3 (0.1) below.
        assert!((time_above_hours(&s, 0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_mean_is_trapezoidal() {
        let s = series(&[0.0, 1.0]);
        assert!((time_mean(&s) - 0.5).abs() < 1e-12);
        let flat = series(&[0.3, 0.3, 0.3]);
        assert!((time_mean(&flat) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn time_mean_degenerate_cases() {
        assert_eq!(time_mean(&TimeSeries::new("e")), 0.0);
        assert_eq!(time_mean(&series(&[0.7])), 0.7);
    }

    #[test]
    fn excursion_window_spans_first_to_last_above() {
        let s = series(&[0.0, 0.6, 0.2, 0.7, 0.1, 0.0]);
        // First above at 1 h, last above at 3 h.
        assert_eq!(excursion_window_hours(&s, 0.5), Some(2.0));
        assert_eq!(excursion_window_hours(&s, 0.9), None);
    }
}
