//! The Collective Experience Value (paper §VI-A).
//!
//! `E` is binary and non-symmetric, so the CEV averages it over all
//! ordered pairs:
//!
//! ```text
//! CEV = (1/N) Σ_{i∈N} Σ_{j≠i} e_i(j) / (N − 1)
//! ```
//!
//! i.e. the density of the directed experience graph. "The CEV value is
//! therefore a measurement requiring global information … it plays no part
//! in the protocols running in the nodes."

use rvs_sim::NodeId;

/// Compute the CEV over a population of `n` nodes given the experience
/// predicate `e(i, j) = E_i(j)`. Returns a value in `[0, 1]`; 0 for
/// populations smaller than two.
pub fn collective_experience_value(n: usize, mut e: impl FnMut(NodeId, NodeId) -> bool) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0u64;
    for i in 0..n {
        for j in 0..n {
            if i != j && e(NodeId::from_index(i), NodeId::from_index(j)) {
                sum += 1;
            }
        }
    }
    sum as f64 / (n as f64 * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_zero() {
        assert_eq!(collective_experience_value(0, |_, _| true), 0.0);
        assert_eq!(collective_experience_value(1, |_, _| true), 0.0);
    }

    #[test]
    fn full_experience_is_one() {
        assert_eq!(collective_experience_value(10, |_, _| true), 1.0);
    }

    #[test]
    fn no_experience_is_zero() {
        assert_eq!(collective_experience_value(10, |_, _| false), 0.0);
    }

    #[test]
    fn asymmetric_pairs_count_once_each() {
        // Only e_0(1) = true out of 6 ordered pairs in a 3-node system.
        let cev = collective_experience_value(3, |i, j| i == NodeId(0) && j == NodeId(1));
        assert!((cev - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn half_density_core() {
        // Nodes 0..5 form a complete experienced core within a population
        // of 10: 5*4 = 20 experienced ordered pairs of 90 total.
        let cev = collective_experience_value(10, |i, j| i.index() < 5 && j.index() < 5);
        assert!((cev - 20.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_is_excluded() {
        // Predicate true everywhere including the diagonal; the diagonal
        // must not inflate the result above 1.
        let cev = collective_experience_value(4, |_, _| true);
        assert_eq!(cev, 1.0);
    }
}
