//! Scalar summary statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of scalars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "Summary::of needs at least one value");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of the ~95% normal-approximation confidence interval
    /// (1.96 · σ/√n).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// The `q`-th percentile (0–100) by linear interpolation between closest
/// ranks. Input need not be sorted.
///
/// # Panics
/// Panics on an empty slice or a percentile outside `[0, 100]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile needs at least one value");
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0, 100]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_of_spread() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - 1.2909944).abs() < 1e-6);
        assert_eq!((s.min, s.max), (1.0, 4.0));
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_summary_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0), 2.5);
        assert_eq!(percentile(&v, 75.0), 7.5);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }
}
