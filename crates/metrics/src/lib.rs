//! Evaluation metrics for the reproduction experiments.
//!
//! * [`cev`] — the Collective Experience Value of §VI-A (Figure 5): the
//!   density of the directed experience graph over all ordered node pairs;
//! * [`ordering`] — Figure 6's effectiveness measure: the fraction of
//!   nodes whose current ranking places the moderators in the ground-truth
//!   order, plus a Kendall-tau helper;
//! * [`pollution`] — Figure 8's attack measure: the fraction of nodes
//!   ranking the spam moderator top;
//! * [`series`] — time series collection, multi-run averaging on a shared
//!   sampling grid, and text rendering for the bench binaries;
//! * [`summary`] — scalar statistics (mean, standard deviation,
//!   percentiles, normal-approximation confidence intervals).
//!
//! Like the paper's CEV, these are *measurement-side* quantities computed
//! with global knowledge; they play no part in the protocols themselves.

pub mod cev;
pub mod convergence;
pub mod ordering;
pub mod pollution;
pub mod series;
pub mod summary;

pub use cev::collective_experience_value;
pub use convergence::{excursion_window_hours, first_crossing, time_above_hours, time_mean};
pub use ordering::{correct_ordering_fraction, kendall_tau_distance, orders_correctly};
pub use pollution::pollution_fraction;
pub use series::{Sample, TimeSeries};
pub use summary::Summary;
