//! One swarm: membership, choking, piece transfer, completions.
//!
//! The swarm simulator advances in fixed ticks. Each tick it (a) re-runs
//! the choker when the rechoke interval elapsed, (b) enumerates active
//! upload connections (unchoked + interested + connectable + both ends
//! online), (c) splits each peer's uplink across its active uploads and
//! each downloader's downlink across its active downloads, (d) advances
//! per-connection piece downloads by `rate × dt`, and (e) reports
//! completions. All state iterates in `BTreeMap` order and all coin flips
//! come from the caller's [`DetRng`], so runs are reproducible.

use crate::bitfield::Bitfield;
use crate::choke::{rechoke, ChokePolicy};
use crate::ledger::TransferLedger;
use crate::selection::{pick_piece, Availability};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime, SwarmId};
use rvs_trace::SwarmSpec;
use std::collections::{BTreeMap, BTreeSet};

/// Role of a swarm member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberRole {
    /// Still downloading.
    Leecher,
    /// Has the complete file and uploads only.
    Seeder,
}

/// Stable binary encoding: role as a `u8` discriminant
/// (0 = Leecher, 1 = Seeder).
impl rvs_checkpoint::Persist for MemberRole {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u8(match self {
            MemberRole::Leecher => 0,
            MemberRole::Seeder => 1,
        });
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(MemberRole::Leecher),
            1 => Ok(MemberRole::Seeder),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid MemberRole discriminant {d}"
            ))),
        }
    }
}

/// Tuning knobs for the swarm simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmConfig {
    /// Choker slot configuration.
    pub choke: ChokePolicy,
    /// How often the choker re-runs (deployed clients: 10 s).
    pub rechoke_interval: SimDuration,
    /// The optimistic slot re-rolls every this many rechokes (deployed: 3).
    pub optimistic_every: u32,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            choke: ChokePolicy::default(),
            rechoke_interval: SimDuration::from_secs(10),
            optimistic_every: 3,
        }
    }
}

/// Stable binary encoding: choke policy, rechoke interval, optimistic
/// rotation period.
impl rvs_checkpoint::Persist for SwarmConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.choke.persist(enc);
        self.rechoke_interval.persist(enc);
        enc.u32(self.optimistic_every);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SwarmConfig {
            choke: ChokePolicy::restore(dec)?,
            rechoke_interval: SimDuration::restore(dec)?,
            optimistic_every: dec.u32()?,
        })
    }
}

/// A download that finished during a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The peer that completed.
    pub peer: NodeId,
    /// The swarm it completed in.
    pub swarm: SwarmId,
    /// Tick time at which completion was detected.
    pub time: SimTime,
}

/// Stable binary encoding: peer, swarm, detection time.
impl rvs_checkpoint::Persist for Completion {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.peer.persist(enc);
        self.swarm.persist(enc);
        self.time.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Completion {
            peer: NodeId::restore(dec)?,
            swarm: SwarmId::restore(dec)?,
            time: SimTime::restore(dec)?,
        })
    }
}

/// Link capacities and reachability of a member, supplied at join time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Freely connectable (not firewalled)?
    pub connectable: bool,
    /// Upload capacity, KiB/s.
    pub uplink_kibps: u32,
    /// Download capacity, KiB/s.
    pub downlink_kibps: u32,
}

#[derive(Debug, Clone)]
struct Member {
    bitfield: Bitfield,
    role: MemberRole,
    online: bool,
    link: LinkProfile,
    /// Peers this member currently uploads to.
    unchoked: Vec<NodeId>,
    optimistic: Option<NodeId>,
    rechokes: u32,
    /// Piece currently being fetched from each source: (piece, KiB left).
    in_flight: BTreeMap<NodeId, (u32, f64)>,
    /// KiB received per source during the current tit-for-tat window.
    window_recv: BTreeMap<NodeId, u64>,
    /// Fractional KiB not yet credited to the ledger, per source.
    uncredited: BTreeMap<NodeId, f64>,
}

impl Member {
    fn requested_pieces(&self) -> BTreeSet<u32> {
        self.in_flight.values().map(|&(p, _)| p).collect()
    }
}

/// Stable binary encoding: connectable flag, uplink, downlink.
impl rvs_checkpoint::Persist for LinkProfile {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.bool(self.connectable);
        enc.u32(self.uplink_kibps);
        enc.u32(self.downlink_kibps);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(LinkProfile {
            connectable: dec.bool()?,
            uplink_kibps: dec.u32()?,
            downlink_kibps: dec.u32()?,
        })
    }
}

/// Stable binary encoding: the ten member fields in declaration order;
/// in-flight KiB remainders and uncredited fractions as IEEE bits.
impl rvs_checkpoint::Persist for Member {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.bitfield.persist(enc);
        self.role.persist(enc);
        enc.bool(self.online);
        self.link.persist(enc);
        self.unchoked.persist(enc);
        self.optimistic.persist(enc);
        enc.u32(self.rechokes);
        self.in_flight.persist(enc);
        self.window_recv.persist(enc);
        self.uncredited.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Member {
            bitfield: Bitfield::restore(dec)?,
            role: MemberRole::restore(dec)?,
            online: dec.bool()?,
            link: LinkProfile::restore(dec)?,
            unchoked: Vec::restore(dec)?,
            optimistic: Option::restore(dec)?,
            rechokes: dec.u32()?,
            in_flight: BTreeMap::restore(dec)?,
            window_recv: BTreeMap::restore(dec)?,
            uncredited: BTreeMap::restore(dec)?,
        })
    }
}

/// Simulation state of a single swarm.
#[derive(Debug, Clone)]
pub struct SwarmSim {
    spec: SwarmSpec,
    cfg: SwarmConfig,
    members: BTreeMap<NodeId, Member>,
    availability: Availability,
    next_rechoke: SimTime,
}

impl SwarmSim {
    /// A fresh swarm for `spec`; nobody has joined yet.
    pub fn new(spec: SwarmSpec, cfg: SwarmConfig) -> Self {
        let pieces = spec.piece_count();
        SwarmSim {
            spec,
            cfg,
            members: BTreeMap::new(),
            availability: Availability::new(pieces),
            next_rechoke: spec.created,
        }
    }

    /// The swarm's static description.
    pub fn spec(&self) -> &SwarmSpec {
        &self.spec
    }

    /// Add a member. Seeders start with a complete bitfield. No-op if the
    /// peer is already a member.
    pub fn join(&mut self, peer: NodeId, role: MemberRole, link: LinkProfile, online: bool) {
        if self.members.contains_key(&peer) {
            return;
        }
        let pieces = self.spec.piece_count();
        let bitfield = match role {
            MemberRole::Seeder => Bitfield::full(pieces),
            MemberRole::Leecher => Bitfield::empty(pieces),
        };
        self.availability.add_bitfield(&bitfield);
        self.members.insert(
            peer,
            Member {
                bitfield,
                role,
                online,
                link,
                unchoked: Vec::new(),
                optimistic: None,
                rechokes: 0,
                in_flight: BTreeMap::new(),
                window_recv: BTreeMap::new(),
                uncredited: BTreeMap::new(),
            },
        );
    }

    /// Remove a member entirely (quit the swarm).
    pub fn leave(&mut self, peer: NodeId) {
        if let Some(m) = self.members.remove(&peer) {
            self.availability.remove_bitfield(&m.bitfield);
        }
        // Drop dangling references held by others.
        for m in self.members.values_mut() {
            m.unchoked.retain(|&p| p != peer);
            if m.optimistic == Some(peer) {
                m.optimistic = None;
            }
            m.in_flight.remove(&peer);
        }
    }

    /// Mark a member online/offline (churn). Offline members keep their
    /// bitfield but take no part in transfers; in-flight fetches pause.
    pub fn set_online(&mut self, peer: NodeId, online: bool) {
        if let Some(m) = self.members.get_mut(&peer) {
            m.online = online;
        }
    }

    /// Is `peer` currently a member?
    pub fn is_member(&self, peer: NodeId) -> bool {
        self.members.contains_key(&peer)
    }

    /// The member's role, if present.
    pub fn role(&self, peer: NodeId) -> Option<MemberRole> {
        self.members.get(&peer).map(|m| m.role)
    }

    /// Download progress in `[0, 1]`, if a member.
    pub fn progress(&self, peer: NodeId) -> Option<f64> {
        self.members.get(&peer).map(|m| m.bitfield.progress())
    }

    /// Number of members (online or not).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// All member ids, ascending.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.keys().copied()
    }

    /// Number of online seeders.
    pub fn online_seeders(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.online && m.role == MemberRole::Seeder)
            .count()
    }

    /// Number of online leechers.
    pub fn online_leechers(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.online && m.role == MemberRole::Leecher)
            .count()
    }

    /// Advance the swarm by `dt`, crediting transfers to `ledger`.
    /// Returns completions detected this tick.
    pub fn tick(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        ledger: &mut TransferLedger,
        rng: &mut DetRng,
    ) -> Vec<Completion> {
        if now >= self.next_rechoke {
            self.run_rechoke(rng);
            self.next_rechoke = now + self.cfg.rechoke_interval;
        }
        self.run_transfers(now, dt, ledger, rng)
    }

    fn run_rechoke(&mut self, rng: &mut DetRng) {
        let ids: Vec<NodeId> = self.members.keys().copied().collect();
        for &u in &ids {
            let m = &self.members[&u];
            if !m.online {
                continue;
            }
            // Peers interested in u: online, connectable with u, lacking a
            // piece u has.
            let interested: Vec<NodeId> = ids
                .iter()
                .copied()
                .filter(|&v| v != u)
                .filter(|&v| {
                    let mv = &self.members[&v];
                    mv.online
                        && can_connect(m.link, mv.link)
                        && mv.bitfield.interested_in(&m.bitfield)
                })
                .collect();
            let m = &self.members[&u];
            let rotate = m.rechokes.is_multiple_of(self.cfg.optimistic_every);
            let window = m.window_recv.clone();
            let decision = rechoke(
                m.role == MemberRole::Seeder,
                &interested,
                |p| window.get(&p).copied().unwrap_or(0),
                self.cfg.choke,
                rotate,
                m.optimistic,
                rng,
            );
            // `u` came from iterating `self.members`, so the re-borrow can
            // only miss if the member set changed mid-loop — skip, not panic.
            let Some(m) = self.members.get_mut(&u) else {
                continue;
            };
            m.unchoked = decision.unchoked;
            m.optimistic = decision.optimistic;
            m.rechokes += 1;
            m.window_recv.clear();
        }
    }

    fn run_transfers(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        ledger: &mut TransferLedger,
        rng: &mut DetRng,
    ) -> Vec<Completion> {
        // Phase 1: enumerate active connections (u uploads to v).
        let mut conns: Vec<(NodeId, NodeId)> = Vec::new();
        let mut up_count: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut down_count: BTreeMap<NodeId, u32> = BTreeMap::new();
        for (&u, m) in &self.members {
            if !m.online {
                continue;
            }
            for &v in &m.unchoked {
                let Some(mv) = self.members.get(&v) else {
                    continue;
                };
                if !mv.online || !can_connect(m.link, mv.link) {
                    continue;
                }
                if !mv.bitfield.interested_in(&m.bitfield) {
                    continue;
                }
                conns.push((u, v));
                *up_count.entry(u).or_insert(0) += 1;
                *down_count.entry(v).or_insert(0) += 1;
            }
        }

        // Phase 2: move bytes along each connection.
        let dt_secs = dt.as_secs_f64();
        let piece_kib = self.spec.piece_size_kib as f64;
        let mut completions = Vec::new();
        for (u, v) in conns {
            let nu = up_count[&u] as f64;
            let mv = down_count[&v] as f64;
            let up_rate = self.members[&u].link.uplink_kibps as f64 / nu;
            let down_rate = self.members[&v].link.downlink_kibps as f64 / mv;
            let mut budget = up_rate.min(down_rate) * dt_secs;
            if budget <= 0.0 {
                continue;
            }
            // Snapshot of u's bitfield drives piece selection for v.
            let u_bitfield = self.members[&u].bitfield.clone();
            let was_complete = self.members[&v].bitfield.is_complete();
            let mut received = 0.0f64;
            // Connections were enumerated over `self.members`; a missing
            // downloader ends this connection rather than the process.
            while let Some(member_v) = self.members.get_mut(&v) {
                // Ensure v has an in-flight piece from u.
                if !member_v.in_flight.contains_key(&u) {
                    let requested = member_v.requested_pieces();
                    // Prefer unrequested pieces; fall back to any missing
                    // piece (endgame mode) so transfers never stall.
                    let pick = {
                        let mut masked = member_v.bitfield.clone();
                        for p in &requested {
                            masked.set(*p);
                        }
                        pick_piece(&masked, &u_bitfield, &self.availability, rng).or_else(|| {
                            pick_piece(&member_v.bitfield, &u_bitfield, &self.availability, rng)
                        })
                    };
                    match pick {
                        Some(p) => {
                            member_v.in_flight.insert(u, (p, piece_kib));
                        }
                        None => break, // nothing useful on this connection
                    }
                }
                // Inserted just above when absent; treat a miss as "nothing
                // useful on this connection".
                let Some((piece, remaining)) = member_v.in_flight.get_mut(&u) else {
                    break;
                };
                let step = budget.min(*remaining);
                *remaining -= step;
                budget -= step;
                received += step;
                if *remaining <= 1e-9 {
                    let done = *piece;
                    member_v.in_flight.remove(&u);
                    if member_v.bitfield.set(done) {
                        self.availability.add_piece(done);
                    }
                } else {
                    break; // budget exhausted mid-piece
                }
                if budget <= 1e-9 {
                    break;
                }
            }
            if received > 0.0 {
                let Some(member_v) = self.members.get_mut(&v) else {
                    continue;
                };
                *member_v.window_recv.entry(u).or_insert(0) += received.round() as u64;
                let frac = member_v.uncredited.entry(u).or_insert(0.0);
                *frac += received;
                let whole = frac.floor() as u64;
                if whole > 0 {
                    *frac -= whole as f64;
                    ledger.credit(u, v, whole);
                }
                let member_v = &self.members[&v];
                if !was_complete && member_v.bitfield.is_complete() {
                    completions.push(Completion {
                        peer: v,
                        swarm: self.spec.id,
                        time: now,
                    });
                }
            }
        }

        // Promote completed leechers to seeders; the caller decides whether
        // they stay (altruist) or leave (free-rider).
        for c in &completions {
            if let Some(m) = self.members.get_mut(&c.peer) {
                m.role = MemberRole::Seeder;
                m.in_flight.clear();
            }
        }
        completions
    }
}

/// Stable binary encoding: spec, config, members, availability counters,
/// next rechoke time.
impl rvs_checkpoint::Persist for SwarmSim {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.spec.persist(enc);
        self.cfg.persist(enc);
        self.members.persist(enc);
        self.availability.persist(enc);
        self.next_rechoke.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SwarmSim {
            spec: rvs_trace::SwarmSpec::restore(dec)?,
            cfg: SwarmConfig::restore(dec)?,
            members: BTreeMap::restore(dec)?,
            availability: Availability::restore(dec)?,
            next_rechoke: SimTime::restore(dec)?,
        })
    }
}

/// BitTorrent reachability: at least one endpoint must be connectable.
#[inline]
fn can_connect(a: LinkProfile, b: LinkProfile) -> bool {
    a.connectable || b.connectable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pieces_mib: u32) -> SwarmSpec {
        SwarmSpec {
            id: SwarmId(0),
            created: SimTime::ZERO,
            file_size_mib: pieces_mib,
            piece_size_kib: 256,
            initial_seeder: NodeId(0),
        }
    }

    fn link(connectable: bool, up: u32) -> LinkProfile {
        LinkProfile {
            connectable,
            uplink_kibps: up,
            downlink_kibps: up * 4,
        }
    }

    fn drive_from(
        sim: &mut SwarmSim,
        start_hour: u64,
        hours: u64,
        ledger: &mut TransferLedger,
    ) -> Vec<Completion> {
        let mut rng = DetRng::new(99);
        let mut out = Vec::new();
        let dt = SimDuration::from_secs(10);
        let mut now = SimTime::from_hours(start_hour);
        let end = SimTime::from_hours(start_hour + hours);
        while now < end {
            out.extend(sim.tick(now, dt, ledger, &mut rng));
            now += dt;
        }
        out
    }

    fn drive(sim: &mut SwarmSim, hours: u64, ledger: &mut TransferLedger) -> Vec<Completion> {
        drive_from(sim, 0, hours, ledger)
    }

    #[test]
    fn single_leecher_downloads_from_seeder() {
        let mut sim = SwarmSim::new(spec(10), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(true, 512), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), true);
        let mut ledger = TransferLedger::new();
        let completions = drive(&mut sim, 1, &mut ledger);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].peer, NodeId(1));
        assert_eq!(sim.role(NodeId(1)), Some(MemberRole::Seeder));
        // 10 MiB moved from seeder to leecher (within rounding).
        let moved = ledger.uploaded_mib(NodeId(0), NodeId(1));
        assert!((moved - 10.0).abs() < 0.1, "moved {moved} MiB");
    }

    #[test]
    fn transfer_respects_uplink_capacity() {
        // 64 KiB/s uplink, 1 hour => at most 225 MiB; file is 300 MiB.
        let mut sim = SwarmSim::new(spec(300), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(true, 64), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), true);
        let mut ledger = TransferLedger::new();
        let completions = drive(&mut sim, 1, &mut ledger);
        assert!(completions.is_empty());
        let moved = ledger.uploaded_kib(NodeId(0), NodeId(1));
        let cap = 64 * 3600;
        assert!(moved <= cap, "moved {moved} KiB exceeds uplink cap {cap}");
        assert!(moved > cap / 2, "transfer unreasonably slow: {moved} KiB");
    }

    #[test]
    fn firewalled_pair_cannot_transfer() {
        let mut sim = SwarmSim::new(spec(5), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(false, 512), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(false, 512), true);
        let mut ledger = TransferLedger::new();
        let completions = drive(&mut sim, 1, &mut ledger);
        assert!(completions.is_empty());
        assert_eq!(ledger.total_kib(), 0);
    }

    #[test]
    fn one_connectable_endpoint_suffices() {
        let mut sim = SwarmSim::new(spec(5), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(false, 512), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), true);
        let mut ledger = TransferLedger::new();
        let completions = drive(&mut sim, 1, &mut ledger);
        assert_eq!(completions.len(), 1);
    }

    #[test]
    fn offline_members_make_no_progress() {
        let mut sim = SwarmSim::new(spec(5), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(true, 512), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), false);
        let mut ledger = TransferLedger::new();
        assert!(drive(&mut sim, 1, &mut ledger).is_empty());
        assert_eq!(ledger.total_kib(), 0);
        // Coming online resumes the download (time continues forward).
        sim.set_online(NodeId(1), true);
        assert_eq!(drive_from(&mut sim, 1, 1, &mut ledger).len(), 1);
    }

    #[test]
    fn leechers_reciprocate_among_themselves() {
        // Seeder with slow uplink plus two fast leechers: leecher-to-leecher
        // trading should carry real volume.
        let mut sim = SwarmSim::new(spec(50), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(true, 128), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), true);
        sim.join(NodeId(2), MemberRole::Leecher, link(true, 512), true);
        let mut ledger = TransferLedger::new();
        drive(&mut sim, 2, &mut ledger);
        let peer_to_peer =
            ledger.uploaded_kib(NodeId(1), NodeId(2)) + ledger.uploaded_kib(NodeId(2), NodeId(1));
        assert!(
            peer_to_peer > 1024,
            "leecher trading too small: {peer_to_peer} KiB"
        );
    }

    #[test]
    fn swarm_of_many_leechers_all_complete() {
        let mut sim = SwarmSim::new(spec(20), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(true, 512), true);
        for i in 1..8 {
            sim.join(NodeId(i), MemberRole::Leecher, link(i % 2 == 0, 256), true);
        }
        let mut ledger = TransferLedger::new();
        let completions = drive(&mut sim, 8, &mut ledger);
        assert_eq!(completions.len(), 7, "all leechers should finish");
        for i in 1..8 {
            assert_eq!(sim.progress(NodeId(i)), Some(1.0));
        }
    }

    #[test]
    fn leave_removes_member_and_references() {
        let mut sim = SwarmSim::new(spec(10), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(true, 512), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), true);
        let mut ledger = TransferLedger::new();
        let mut rng = DetRng::new(1);
        sim.tick(
            SimTime::ZERO,
            SimDuration::from_secs(10),
            &mut ledger,
            &mut rng,
        );
        sim.leave(NodeId(0));
        assert!(!sim.is_member(NodeId(0)));
        assert_eq!(sim.member_count(), 1);
        // Downloader can no longer progress.
        let before = ledger.total_kib();
        sim.tick(
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            &mut ledger,
            &mut rng,
        );
        assert_eq!(ledger.total_kib(), before);
    }

    #[test]
    fn join_is_idempotent() {
        let mut sim = SwarmSim::new(spec(10), SwarmConfig::default());
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), true);
        sim.join(NodeId(1), MemberRole::Seeder, link(true, 512), true);
        assert_eq!(sim.role(NodeId(1)), Some(MemberRole::Leecher));
        assert_eq!(sim.member_count(), 1);
    }

    #[test]
    fn counts_reflect_roles_and_presence() {
        let mut sim = SwarmSim::new(spec(10), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(true, 512), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(true, 512), true);
        sim.join(NodeId(2), MemberRole::Leecher, link(true, 512), false);
        assert_eq!(sim.online_seeders(), 1);
        assert_eq!(sim.online_leechers(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = SwarmSim::new(spec(30), SwarmConfig::default());
            sim.join(NodeId(0), MemberRole::Seeder, link(true, 256), true);
            for i in 1..6 {
                sim.join(NodeId(i), MemberRole::Leecher, link(true, 256), true);
            }
            let mut ledger = TransferLedger::new();
            drive(&mut sim, 3, &mut ledger);
            ledger
        };
        assert_eq!(run(), run());
    }
}
