//! Piece-level BitTorrent swarm simulation.
//!
//! The paper's evaluation "operates at the BitTorrent file piece level …
//! every action that a BitTorrent client would need to take, down to the
//! exchange of file chunks, peer choking and piece selection" (§VI). This
//! crate is that simulator:
//!
//! * [`bitfield::Bitfield`] — per-peer piece possession maps;
//! * [`selection`] — rarest-first piece selection (random tie-break,
//!   random-first-piece);
//! * [`choke`] — tit-for-tat choking with periodic optimistic unchoke;
//! * [`swarm::SwarmSim`] — one swarm: membership, interest, bandwidth
//!   allocation, piece transfer, seeding / free-riding behaviour;
//! * [`ledger::TransferLedger`] — MiB-level upload accounting per ordered
//!   peer pair, the raw input to BarterCast;
//! * [`net::BitTorrentNet`] — all swarms of a trace plus churn handling,
//!   driven by fixed simulation ticks.
//!
//! The simulator is deterministic: member maps are ordered (`BTreeMap`),
//! and all randomness (optimistic unchoke, tie-breaks) comes from the
//! caller-supplied [`rvs_sim::DetRng`].

pub mod bitfield;
pub mod choke;
pub mod ledger;
pub mod net;
pub mod selection;
pub mod stats;
pub mod swarm;

pub use bitfield::Bitfield;
pub use ledger::TransferLedger;
pub use net::{BitTorrentNet, NetConfig};
pub use stats::{network_health, SwarmHealth};
pub use swarm::{Completion, SwarmSim};
