//! Choking: tit-for-tat reciprocation plus optimistic unchoking.
//!
//! Every rechoke interval (10 s in deployed clients) a leecher unchokes the
//! peers that uploaded to it fastest in the recent window (reciprocation),
//! plus one *optimistic* slot rotated randomly (every 30 s) so newcomers
//! with nothing to trade can bootstrap. Seeders have nothing to reciprocate
//! and rotate their slots across interested peers.

use rvs_sim::{DetRng, NodeId};

/// Slot configuration for the choker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChokePolicy {
    /// Reciprocation slots (deployed default: 4).
    pub regular_slots: usize,
    /// Optimistic slots (deployed default: 1).
    pub optimistic_slots: usize,
}

impl Default for ChokePolicy {
    fn default() -> Self {
        ChokePolicy {
            regular_slots: 4,
            optimistic_slots: 1,
        }
    }
}

impl ChokePolicy {
    /// Total simultaneous upload connections.
    pub fn total_slots(&self) -> usize {
        self.regular_slots + self.optimistic_slots
    }
}

/// Stable binary encoding: the two slot counts in declaration order.
impl rvs_checkpoint::Persist for ChokePolicy {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.regular_slots);
        enc.usize(self.optimistic_slots);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ChokePolicy {
            regular_slots: dec.usize()?,
            optimistic_slots: dec.usize()?,
        })
    }
}

/// Outcome of a rechoke round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChokeDecision {
    /// Peers now unchoked (deterministic order).
    pub unchoked: Vec<NodeId>,
    /// The peer occupying the optimistic slot, if any.
    pub optimistic: Option<NodeId>,
}

/// Compute the unchoke set for one peer.
///
/// * `interested` — peers currently interested in us (deterministic order
///   expected from the caller);
/// * `recent_kib_from` — KiB we received from each candidate during the
///   last tit-for-tat window (ignored when `is_seeder`);
/// * `rotate_optimistic` — whether the optimistic slot should be re-rolled
///   this round (every third rechoke in deployed clients);
/// * `current_optimistic` — holder of the optimistic slot from last round.
pub fn rechoke(
    is_seeder: bool,
    interested: &[NodeId],
    recent_kib_from: impl Fn(NodeId) -> u64,
    policy: ChokePolicy,
    rotate_optimistic: bool,
    current_optimistic: Option<NodeId>,
    rng: &mut DetRng,
) -> ChokeDecision {
    if interested.is_empty() {
        return ChokeDecision {
            unchoked: Vec::new(),
            optimistic: None,
        };
    }

    let mut unchoked: Vec<NodeId>;
    if is_seeder {
        // Seeders rotate slots uniformly across interested peers.
        let k = policy.total_slots().min(interested.len());
        let idx = rng.sample_indices(interested.len(), k);
        unchoked = idx.into_iter().map(|i| interested[i]).collect();
        unchoked.sort_unstable();
        return ChokeDecision {
            unchoked,
            optimistic: None,
        };
    }

    // Reciprocation: best recent uploaders first; NodeId tie-break keeps the
    // ordering total and deterministic.
    let mut ranked: Vec<NodeId> = interested.to_vec();
    ranked.sort_by_key(|&p| (std::cmp::Reverse(recent_kib_from(p)), p));
    unchoked = ranked.iter().copied().take(policy.regular_slots).collect();

    // Optimistic slot: keep the current holder unless rotating or invalid.
    let mut optimistic = current_optimistic
        .filter(|p| interested.contains(p) && !unchoked.contains(p) && !rotate_optimistic);
    if optimistic.is_none() && policy.optimistic_slots > 0 {
        let pool: Vec<NodeId> = interested
            .iter()
            .copied()
            .filter(|p| !unchoked.contains(p))
            .collect();
        if !pool.is_empty() {
            optimistic = Some(pool[rng.index(pool.len())]);
        }
    }
    if let Some(p) = optimistic {
        unchoked.push(p);
    }
    unchoked.sort_unstable();
    ChokeDecision {
        unchoked,
        optimistic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn empty_interest_unchokes_nobody() {
        let mut rng = DetRng::new(1);
        let d = rechoke(
            false,
            &[],
            |_| 0,
            ChokePolicy::default(),
            true,
            None,
            &mut rng,
        );
        assert!(d.unchoked.is_empty());
        assert_eq!(d.optimistic, None);
    }

    #[test]
    fn best_uploaders_reciprocated() {
        let mut rng = DetRng::new(2);
        let interested = ids(&[1, 2, 3, 4, 5, 6, 7]);
        // Peer i uploaded i*100 KiB: best are 7,6,5,4.
        let d = rechoke(
            false,
            &interested,
            |p| p.0 as u64 * 100,
            ChokePolicy {
                regular_slots: 4,
                optimistic_slots: 0,
            },
            false,
            None,
            &mut rng,
        );
        assert_eq!(d.unchoked, ids(&[4, 5, 6, 7]));
        assert_eq!(d.optimistic, None);
    }

    #[test]
    fn optimistic_slot_from_remaining_pool() {
        let mut rng = DetRng::new(3);
        let interested = ids(&[1, 2, 3, 4, 5, 6]);
        let d = rechoke(
            false,
            &interested,
            |p| p.0 as u64,
            ChokePolicy::default(),
            true,
            None,
            &mut rng,
        );
        assert_eq!(d.unchoked.len(), 5);
        let opt = d.optimistic.expect("optimistic chosen");
        // Regular slots took 3,4,5,6, so the optimistic one is 1 or 2.
        assert!(opt == NodeId(1) || opt == NodeId(2));
        assert!(d.unchoked.contains(&opt));
    }

    #[test]
    fn optimistic_holder_kept_until_rotation() {
        let mut rng = DetRng::new(4);
        let interested = ids(&[1, 2, 3, 4, 5, 6]);
        let d = rechoke(
            false,
            &interested,
            |p| p.0 as u64,
            ChokePolicy::default(),
            false,
            Some(NodeId(1)),
            &mut rng,
        );
        assert_eq!(d.optimistic, Some(NodeId(1)));
    }

    #[test]
    fn rotation_may_replace_holder() {
        let interested = ids(&[1, 2, 3, 4, 5, 6, 7, 8]);
        // With rotation on, across many seeds the holder changes sometimes.
        let mut changed = false;
        for seed in 0..50 {
            let mut rng = DetRng::new(seed);
            let d = rechoke(
                false,
                &interested,
                |p| p.0 as u64,
                ChokePolicy::default(),
                true,
                Some(NodeId(1)),
                &mut rng,
            );
            if d.optimistic != Some(NodeId(1)) {
                changed = true;
            }
        }
        assert!(changed);
    }

    #[test]
    fn tie_break_is_by_node_id() {
        let mut rng = DetRng::new(5);
        let interested = ids(&[9, 3, 7, 1]);
        let d = rechoke(
            false,
            &interested,
            |_| 0,
            ChokePolicy {
                regular_slots: 2,
                optimistic_slots: 0,
            },
            false,
            None,
            &mut rng,
        );
        assert_eq!(d.unchoked, ids(&[1, 3]));
    }

    #[test]
    fn seeder_rotates_among_interested() {
        let interested = ids(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..40 {
            let mut rng = DetRng::new(seed);
            let d = rechoke(
                true,
                &interested,
                |_| 0,
                ChokePolicy::default(),
                true,
                None,
                &mut rng,
            );
            assert_eq!(d.unchoked.len(), 5);
            seen.extend(d.unchoked.iter().copied());
        }
        assert!(seen.len() >= 9, "seeder rotation should reach most peers");
    }

    #[test]
    fn fewer_interested_than_slots() {
        let mut rng = DetRng::new(6);
        let interested = ids(&[2, 5]);
        let d = rechoke(
            false,
            &interested,
            |_| 10,
            ChokePolicy::default(),
            true,
            None,
            &mut rng,
        );
        assert_eq!(d.unchoked, ids(&[2, 5]));
    }
}
