//! Piece possession bitmaps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-size bitmap recording which pieces of a file a peer holds.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitfield {
    words: Vec<u64>,
    len: u32,
    count: u32,
}

impl Bitfield {
    /// An empty bitfield over `len` pieces.
    pub fn empty(len: u32) -> Self {
        Bitfield {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// A complete bitfield (all `len` pieces present) — a seeder's map.
    pub fn full(len: u32) -> Self {
        let mut bf = Bitfield::empty(len);
        for w in bf.words.iter_mut() {
            *w = u64::MAX;
        }
        // Mask off the bits beyond `len` in the last word.
        let tail = (len % 64) as u64;
        if tail != 0 {
            if let Some(last) = bf.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        bf.count = len;
        bf
    }

    /// Total number of pieces in the file.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the file has zero pieces (degenerate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pieces currently held.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when all pieces are held.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.count == self.len
    }

    /// Completion ratio in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.count as f64 / self.len as f64
        }
    }

    /// Does the peer hold piece `i`?
    #[inline]
    pub fn has(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Mark piece `i` as held. Returns `true` when this was new.
    pub fn set(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Iterate over the indices of pieces present in `other` but missing
    /// here — the pieces this peer could request from `other`.
    pub fn missing_from<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = u32> + 'a {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(other.words.iter())
            .enumerate()
            .flat_map(|(wi, (mine, theirs))| {
                let mut bits = !mine & theirs;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let b = bits.trailing_zeros();
                        bits &= bits - 1;
                        Some(wi as u32 * 64 + b)
                    }
                })
            })
            .filter(move |&i| i < self.len)
    }

    /// True when `other` holds at least one piece this peer lacks — i.e.
    /// this peer is *interested* in `other` (BitTorrent interest rule).
    pub fn interested_in(&self, other: &Bitfield) -> bool {
        self.missing_from(other).next().is_some()
    }

    /// Iterate over all held piece indices.
    pub fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }
}

/// Stable binary encoding: words, piece count, set-bit count. Restore
/// cross-validates word length, phantom bits, and the popcount so a corrupt
/// bitfield is rejected instead of breaking availability accounting.
impl rvs_checkpoint::Persist for Bitfield {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.words.persist(enc);
        enc.u32(self.len);
        enc.u32(self.count);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let words: Vec<u64> = Vec::restore(dec)?;
        let len = dec.u32()?;
        let count = dec.u32()?;
        if words.len() != (len as usize).div_ceil(64) {
            return Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "Bitfield word count {} inconsistent with length {len}",
                words.len()
            )));
        }
        let tail = len % 64;
        if tail != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return Err(rvs_checkpoint::DecodeError::Corrupt(
                        "Bitfield has bits set beyond its length".to_string(),
                    ));
                }
            }
        }
        let popcount: u32 = words.iter().map(|w| w.count_ones()).sum();
        if popcount != count {
            return Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "Bitfield count {count} does not match popcount {popcount}"
            )));
        }
        Ok(Bitfield { words, len, count })
    }
}

impl fmt::Debug for Bitfield {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitfield({}/{})", self.count, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_nothing() {
        let bf = Bitfield::empty(130);
        assert_eq!(bf.count(), 0);
        assert!(!bf.is_complete());
        assert_eq!(bf.progress(), 0.0);
        for i in 0..130 {
            assert!(!bf.has(i));
        }
    }

    #[test]
    fn full_has_everything_and_no_phantom_bits() {
        let bf = Bitfield::full(130);
        assert_eq!(bf.count(), 130);
        assert!(bf.is_complete());
        assert_eq!(bf.ones().count(), 130);
        assert_eq!(bf.ones().max(), Some(129));
    }

    #[test]
    fn full_word_aligned() {
        let bf = Bitfield::full(128);
        assert_eq!(bf.count(), 128);
        assert_eq!(bf.ones().count(), 128);
    }

    #[test]
    fn set_is_idempotent() {
        let mut bf = Bitfield::empty(10);
        assert!(bf.set(3));
        assert!(!bf.set(3));
        assert_eq!(bf.count(), 1);
        assert!(bf.has(3));
    }

    #[test]
    fn setting_all_completes() {
        let mut bf = Bitfield::empty(65);
        for i in 0..65 {
            bf.set(i);
        }
        assert!(bf.is_complete());
        assert_eq!(bf.progress(), 1.0);
    }

    #[test]
    fn missing_from_finds_only_gaps() {
        let mut a = Bitfield::empty(100);
        let mut b = Bitfield::empty(100);
        a.set(1);
        a.set(70);
        b.set(1); // both have
        b.set(2); // only b
        b.set(99); // only b
        let missing: Vec<u32> = a.missing_from(&b).collect();
        assert_eq!(missing, vec![2, 99]);
    }

    #[test]
    fn interest_rule() {
        let mut a = Bitfield::empty(10);
        let mut b = Bitfield::empty(10);
        assert!(!a.interested_in(&b));
        b.set(4);
        assert!(a.interested_in(&b));
        a.set(4);
        assert!(!a.interested_in(&b));
    }

    #[test]
    fn seeder_not_interested_in_anyone() {
        let seeder = Bitfield::full(50);
        let leecher = Bitfield::empty(50);
        assert!(!seeder.interested_in(&leecher));
        assert!(leecher.interested_in(&seeder));
    }

    #[test]
    fn zero_length_is_degenerate_complete() {
        let bf = Bitfield::empty(0);
        assert!(bf.is_empty());
        assert!(bf.is_complete());
        assert_eq!(bf.progress(), 1.0);
    }

    #[test]
    fn debug_format() {
        let mut bf = Bitfield::empty(8);
        bf.set(0);
        assert_eq!(format!("{bf:?}"), "Bitfield(1/8)");
    }
}
