//! Swarm health statistics: the per-swarm snapshots a tracker (or a
//! researcher) watches — seeder/leecher counts, availability, progress.

use crate::net::BitTorrentNet;
use crate::swarm::SwarmSim;
use rvs_sim::SwarmId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point-in-time health snapshot of one swarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwarmHealth {
    /// The swarm.
    pub swarm: SwarmId,
    /// Members currently online and seeding.
    pub online_seeders: usize,
    /// Members currently online and leeching.
    pub online_leechers: usize,
    /// Total members (online or not).
    pub members: usize,
    /// Mean download progress over current leechers (1.0 when none).
    pub mean_leecher_progress: f64,
}

impl SwarmHealth {
    /// Snapshot one swarm.
    pub fn of(sim: &SwarmSim) -> SwarmHealth {
        let mut progress_sum = 0.0;
        let mut leechers = 0usize;
        for peer in sim.members() {
            if sim.role(peer) == Some(crate::swarm::MemberRole::Leecher) {
                leechers += 1;
                progress_sum += sim.progress(peer).unwrap_or(0.0);
            }
        }
        SwarmHealth {
            swarm: sim.spec().id,
            online_seeders: sim.online_seeders(),
            online_leechers: sim.online_leechers(),
            members: sim.member_count(),
            mean_leecher_progress: if leechers == 0 {
                1.0
            } else {
                progress_sum / leechers as f64
            },
        }
    }

    /// Seeder-to-leecher ratio among online members (∞-safe: `None` when
    /// no leechers are online).
    pub fn seed_ratio(&self) -> Option<f64> {
        if self.online_leechers == 0 {
            None
        } else {
            Some(self.online_seeders as f64 / self.online_leechers as f64)
        }
    }

    /// A swarm is *dead* when nobody online holds the full file and no
    /// leecher can finish.
    pub fn is_seederless(&self) -> bool {
        self.online_seeders == 0
    }
}

impl fmt::Display for SwarmHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} seeders / {} leechers online ({} members, mean progress {:.0}%)",
            self.swarm,
            self.online_seeders,
            self.online_leechers,
            self.members,
            self.mean_leecher_progress * 100.0
        )
    }
}

/// Snapshot every swarm of a network.
pub fn network_health(net: &BitTorrentNet) -> Vec<SwarmHealth> {
    (0..net.swarm_count())
        .map(|i| SwarmHealth::of(net.swarm(SwarmId::from_index(i))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::{LinkProfile, MemberRole, SwarmConfig};
    use rvs_sim::{NodeId, SimTime};
    use rvs_trace::SwarmSpec;

    fn spec() -> SwarmSpec {
        SwarmSpec {
            id: SwarmId(0),
            created: SimTime::ZERO,
            file_size_mib: 10,
            piece_size_kib: 256,
            initial_seeder: NodeId(0),
        }
    }

    fn link() -> LinkProfile {
        LinkProfile {
            connectable: true,
            uplink_kibps: 256,
            downlink_kibps: 1024,
        }
    }

    #[test]
    fn snapshot_counts_roles() {
        let mut sim = SwarmSim::new(spec(), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(), true);
        sim.join(NodeId(1), MemberRole::Leecher, link(), true);
        sim.join(NodeId(2), MemberRole::Leecher, link(), false);
        let h = SwarmHealth::of(&sim);
        assert_eq!(h.online_seeders, 1);
        assert_eq!(h.online_leechers, 1);
        assert_eq!(h.members, 3);
        assert_eq!(h.mean_leecher_progress, 0.0);
        assert_eq!(h.seed_ratio(), Some(1.0));
        assert!(!h.is_seederless());
    }

    #[test]
    fn seederless_detection() {
        let mut sim = SwarmSim::new(spec(), SwarmConfig::default());
        sim.join(NodeId(1), MemberRole::Leecher, link(), true);
        let h = SwarmHealth::of(&sim);
        assert!(h.is_seederless());
        assert_eq!(h.seed_ratio(), Some(0.0));
    }

    #[test]
    fn no_leechers_means_ratio_none_and_progress_one() {
        let mut sim = SwarmSim::new(spec(), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(), true);
        let h = SwarmHealth::of(&sim);
        assert_eq!(h.seed_ratio(), None);
        assert_eq!(h.mean_leecher_progress, 1.0);
    }

    #[test]
    fn display_is_readable() {
        let mut sim = SwarmSim::new(spec(), SwarmConfig::default());
        sim.join(NodeId(0), MemberRole::Seeder, link(), true);
        let text = SwarmHealth::of(&sim).to_string();
        assert!(text.contains("1 seeders"));
        assert!(text.contains("s0"));
    }
}
