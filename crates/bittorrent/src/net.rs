//! All swarms of a trace, wired to churn: the full BitTorrent substrate.
//!
//! [`BitTorrentNet`] owns one [`SwarmSim`] per trace swarm, a global
//! [`TransferLedger`], and the online/offline state of every peer. Trace
//! events drive churn and download starts; fixed ticks drive transfers.
//! Behavioural policies from the paper are applied here:
//!
//! * **initial seeders** join their swarm as soon as they are online after
//!   the swarm is created and keep seeding whenever online (the tracker
//!   community expects the uploader to sustain the torrent);
//! * **altruists** seed a completed download until their per-profile seed
//!   budget of online seeding time is spent;
//! * **free-riders** "leave swarms as soon as they have downloaded their
//!   file" (§VI) and never seed.

use crate::ledger::TransferLedger;
use crate::swarm::{Completion, LinkProfile, MemberRole, SwarmConfig, SwarmSim};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime, SwarmId};
use rvs_trace::{PeerProfile, Trace, TraceEvent, TraceEventKind};
use std::collections::BTreeMap;

/// Configuration for the whole-network simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-swarm tuning.
    pub swarm: SwarmConfig,
    /// Transfer tick length. 10 s matches the rechoke interval and keeps a
    /// 7-day trace around 60k ticks.
    pub tick: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            swarm: SwarmConfig::default(),
            tick: SimDuration::from_secs(10),
        }
    }
}

/// The BitTorrent substrate: every swarm of a trace plus churn state.
#[derive(Debug, Clone)]
pub struct BitTorrentNet {
    cfg: NetConfig,
    profiles: Vec<PeerProfile>,
    swarms: Vec<SwarmSim>,
    online: Vec<bool>,
    ledger: TransferLedger,
    /// Remaining online seeding budget per (peer, swarm) for altruists.
    seed_budget: BTreeMap<(NodeId, SwarmId), SimDuration>,
    completions: Vec<Completion>,
}

impl BitTorrentNet {
    /// Build the substrate for a trace. No events are applied yet.
    pub fn new(trace: &Trace, cfg: NetConfig) -> Self {
        BitTorrentNet {
            cfg,
            profiles: trace.peers.clone(),
            swarms: trace
                .swarms
                .iter()
                .map(|s| SwarmSim::new(*s, cfg.swarm))
                .collect(),
            online: vec![false; trace.peers.len()],
            ledger: TransferLedger::new(),
            seed_budget: BTreeMap::new(),
            completions: Vec::new(),
        }
    }

    fn link_of(&self, peer: NodeId) -> LinkProfile {
        let p = &self.profiles[peer.index()];
        LinkProfile {
            connectable: p.connectable,
            uplink_kibps: p.uplink_kibps,
            downlink_kibps: p.downlink_kibps,
        }
    }

    /// Is `peer` currently online?
    pub fn is_online(&self, peer: NodeId) -> bool {
        self.online[peer.index()]
    }

    /// All currently online peers (ascending id).
    pub fn online_peers(&self) -> Vec<NodeId> {
        self.online
            .iter()
            .enumerate()
            .filter_map(|(i, &on)| on.then_some(NodeId::from_index(i)))
            .collect()
    }

    /// The global transfer ledger.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// Completions observed so far (time-ordered).
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Access a swarm's simulation state.
    pub fn swarm(&self, id: SwarmId) -> &SwarmSim {
        &self.swarms[id.index()]
    }

    /// Number of swarms in the network.
    pub fn swarm_count(&self) -> usize {
        self.swarms.len()
    }

    /// Apply one trace event at time `now`.
    pub fn apply_event(&mut self, ev: &TraceEvent, now: SimTime) {
        match ev.kind {
            TraceEventKind::Online => {
                self.online[ev.peer.index()] = true;
                for sw in &mut self.swarms {
                    sw.set_online(ev.peer, true);
                }
                // Initial seeders (re)join their swarms once online after
                // swarm creation.
                let link = self.link_of(ev.peer);
                for sw in &mut self.swarms {
                    if sw.spec().initial_seeder == ev.peer
                        && sw.spec().created <= now
                        && !sw.is_member(ev.peer)
                    {
                        sw.join(ev.peer, MemberRole::Seeder, link, true);
                    }
                }
            }
            TraceEventKind::Offline => {
                self.online[ev.peer.index()] = false;
                for sw in &mut self.swarms {
                    sw.set_online(ev.peer, false);
                }
            }
            TraceEventKind::StartDownload { swarm } => {
                let link = self.link_of(ev.peer);
                let online = self.online[ev.peer.index()];
                self.swarms[swarm.index()].join(ev.peer, MemberRole::Leecher, link, online);
            }
        }
    }

    /// Advance all swarms by one tick, applying seeding policies.
    pub fn tick(&mut self, now: SimTime, rng: &mut DetRng) {
        let dt = self.cfg.tick;
        let mut new_completions = Vec::new();
        for sw in &mut self.swarms {
            new_completions.extend(sw.tick(now, dt, &mut self.ledger, rng));
        }
        for c in &new_completions {
            let profile = &self.profiles[c.peer.index()];
            if profile.free_rider {
                // Free-riders quit immediately on completion.
                self.swarms[c.swarm.index()].leave(c.peer);
            } else {
                self.seed_budget
                    .insert((c.peer, c.swarm), profile.seed_duration);
            }
        }
        self.completions.extend(new_completions);

        // Spend seed budgets for altruists that are online and still
        // members; leave when exhausted.
        let mut expired = Vec::new();
        for (&(peer, swarm), remaining) in self.seed_budget.iter_mut() {
            if !self.online[peer.index()] {
                continue;
            }
            if !self.swarms[swarm.index()].is_member(peer) {
                expired.push((peer, swarm));
                continue;
            }
            if remaining.as_millis() <= dt.as_millis() {
                expired.push((peer, swarm));
            } else {
                *remaining = *remaining - dt;
            }
        }
        for (peer, swarm) in expired {
            self.seed_budget.remove(&(peer, swarm));
            self.swarms[swarm.index()].leave(peer);
        }
    }

    /// Convenience driver: replay the whole trace, ticking transfers and
    /// invoking `observer` every `sample_every` of simulation time.
    pub fn run_trace(
        trace: &Trace,
        cfg: NetConfig,
        seed: u64,
        sample_every: SimDuration,
        mut observer: impl FnMut(&BitTorrentNet, SimTime),
    ) -> BitTorrentNet {
        let mut net = BitTorrentNet::new(trace, cfg);
        let mut rng = DetRng::new(seed).fork(0xB177);
        let end = SimTime::ZERO + trace.duration;
        let mut next_event = 0usize;
        let mut next_sample = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        while now < end {
            while next_event < trace.events.len() && trace.events[next_event].time <= now {
                let ev = trace.events[next_event];
                net.apply_event(&ev, now);
                next_event += 1;
            }
            net.tick(now, &mut rng);
            if now >= next_sample {
                observer(&net, now);
                next_sample = now + sample_every;
            }
            now += cfg.tick;
        }
        observer(&net, end);
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_trace::TraceGenConfig;

    fn quick_trace(seed: u64) -> Trace {
        TraceGenConfig::quick(15, SimDuration::from_days(1)).generate(seed)
    }

    #[test]
    fn trace_replay_moves_data() {
        let trace = quick_trace(5);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            1,
            SimDuration::from_hours(6),
            |_, _| {},
        );
        assert!(
            net.ledger().total_kib() > 10 * 1024,
            "expected >10 MiB transferred, got {} KiB",
            net.ledger().total_kib()
        );
    }

    #[test]
    fn completions_occur_and_are_ordered() {
        let trace = quick_trace(7);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            2,
            SimDuration::from_hours(24),
            |_, _| {},
        );
        let c = net.completions();
        assert!(!c.is_empty(), "some downloads should complete in a day");
        for w in c.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn free_riders_leave_after_completion() {
        let trace = quick_trace(9);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            3,
            SimDuration::from_hours(24),
            |_, _| {},
        );
        for c in net.completions() {
            let p = &trace.peers[c.peer.index()];
            if p.free_rider {
                assert!(
                    !net.swarm(c.swarm).is_member(c.peer),
                    "free-rider {} should have left swarm {}",
                    c.peer,
                    c.swarm
                );
            }
        }
    }

    #[test]
    fn online_state_follows_trace() {
        let trace = quick_trace(11);
        let mut net = BitTorrentNet::new(&trace, NetConfig::default());
        let ev = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::Online))
            .unwrap();
        net.apply_event(ev, ev.time);
        assert!(net.is_online(ev.peer));
        let off = TraceEvent {
            time: ev.time,
            peer: ev.peer,
            kind: TraceEventKind::Offline,
        };
        net.apply_event(&off, ev.time);
        assert!(!net.is_online(ev.peer));
        assert!(net.online_peers().is_empty());
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = quick_trace(13);
        let run = || {
            BitTorrentNet::run_trace(
                &trace,
                NetConfig::default(),
                4,
                SimDuration::from_hours(6),
                |_, _| {},
            )
            .ledger()
            .clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observer_called_at_sampling_interval() {
        let trace = quick_trace(15);
        let mut samples = Vec::new();
        BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            5,
            SimDuration::from_hours(6),
            |_, t| samples.push(t),
        );
        // 24h / 6h = 4 interior samples + initial + final.
        assert!(samples.len() >= 5, "got {} samples", samples.len());
        for w in samples.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn initial_seeders_upload_most_early() {
        let trace = quick_trace(17);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            6,
            SimDuration::from_hours(24),
            |_, _| {},
        );
        // Every swarm's initial seeder should have uploaded something
        // (their swarm had at least one leecher in almost every seed; allow
        // swarms that attracted no leechers).
        let uploaded_any = trace
            .swarms
            .iter()
            .filter(|s| net.ledger().total_uploaded_kib(s.initial_seeder) > 0)
            .count();
        assert!(uploaded_any >= 1);
    }
}
