//! All swarms of a trace, wired to churn: the full BitTorrent substrate.
//!
//! [`BitTorrentNet`] owns one [`SwarmSim`] per trace swarm, a global
//! [`TransferLedger`], and the online/offline state of every peer. Trace
//! events drive churn and download starts; fixed ticks drive transfers.
//! Behavioural policies from the paper are applied here:
//!
//! * **initial seeders** join their swarm as soon as they are online after
//!   the swarm is created and keep seeding whenever online (the tracker
//!   community expects the uploader to sustain the torrent);
//! * **altruists** seed a completed download until their per-profile seed
//!   budget of online seeding time is spent;
//! * **free-riders** "leave swarms as soon as they have downloaded their
//!   file" (§VI) and never seed.
//!
//! # Parallel execution
//!
//! Swarms are mutually independent within a tick: each owns its RNG stream
//! (forked from the net's base **keyed by swarm id**), its members, and its
//! seed budgets. The only cross-swarm state is the global ledger — a
//! commutative sum of per-swarm credits — and the time-ordered completion
//! log. Two drivers exploit this:
//!
//! * [`BitTorrentNet::tick`] advances every swarm serially, in ascending
//!   swarm order (the legacy immediate mode used by [`run_trace`]).
//! * [`BitTorrentNet::advance_window`] replays a whole span of ticks per
//!   swarm as an isolated job on a [`Pool`], then merges per-swarm ledger
//!   deltas in ascending swarm order and completions in canonical
//!   `(time, swarm)` order. Because every tick is a pure function of the
//!   swarm's own state, the result is byte-identical to the serial driver
//!   for any window partition and any thread count.
//!
//! [`run_trace`]: BitTorrentNet::run_trace

use crate::ledger::TransferLedger;
use crate::swarm::{Completion, LinkProfile, MemberRole, SwarmConfig, SwarmSim};
use rvs_sim::pool::{merge_canonical, Pool};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime, SwarmId};
use rvs_trace::{PeerProfile, Trace, TraceEvent, TraceEventKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration for the whole-network simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-swarm tuning.
    pub swarm: SwarmConfig,
    /// Transfer tick length. 10 s matches the rechoke interval and keeps a
    /// 7-day trace around 60k ticks.
    pub tick: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            swarm: SwarmConfig::default(),
            tick: SimDuration::from_secs(10),
        }
    }
}

/// Stable binary encoding: swarm tuning, then the tick length.
impl rvs_checkpoint::Persist for NetConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.swarm.persist(enc);
        self.tick.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(NetConfig {
            swarm: SwarmConfig::restore(dec)?,
            tick: SimDuration::restore(dec)?,
        })
    }
}

/// One swarm plus everything its ticks touch: its RNG stream (keyed by
/// swarm id) and the seed budgets of its altruists. Self-contained so a
/// window of ticks can run as an isolated pool job.
#[derive(Debug, Clone)]
struct SwarmRunner {
    sim: SwarmSim,
    rng: DetRng,
    /// Remaining online seeding budget per altruist member of this swarm.
    seed_budget: BTreeMap<NodeId, SimDuration>,
}

/// Stable binary encoding: swarm state, RNG stream, seed budgets.
impl rvs_checkpoint::Persist for SwarmRunner {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.sim.persist(enc);
        self.rng.persist(enc);
        self.seed_budget.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SwarmRunner {
            sim: SwarmSim::restore(dec)?,
            rng: DetRng::restore(dec)?,
            seed_budget: BTreeMap::restore(dec)?,
        })
    }
}

fn link_of(profiles: &[PeerProfile], peer: NodeId) -> LinkProfile {
    let p = &profiles[peer.index()];
    LinkProfile {
        connectable: p.connectable,
        uplink_kibps: p.uplink_kibps,
        downlink_kibps: p.downlink_kibps,
    }
}

impl SwarmRunner {
    /// Apply the swarm-relevant part of one trace event at time `now`.
    fn apply_event(&mut self, ev: &TraceEvent, now: SimTime, link: LinkProfile, online: bool) {
        match ev.kind {
            TraceEventKind::Online => {
                self.sim.set_online(ev.peer, true);
                // Initial seeders (re)join once online after swarm creation.
                if self.sim.spec().initial_seeder == ev.peer
                    && self.sim.spec().created <= now
                    && !self.sim.is_member(ev.peer)
                {
                    self.sim.join(ev.peer, MemberRole::Seeder, link, true);
                }
            }
            TraceEventKind::Offline => {
                self.sim.set_online(ev.peer, false);
            }
            TraceEventKind::StartDownload { swarm } => {
                if swarm == self.sim.spec().id {
                    self.sim.join(ev.peer, MemberRole::Leecher, link, online);
                }
            }
        }
    }

    /// One transfer tick plus the seeding policies, crediting into
    /// `ledger` (the global ledger in immediate mode, a per-window delta
    /// ledger in window mode).
    fn advance_tick(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        online: &[bool],
        profiles: &[PeerProfile],
        ledger: &mut TransferLedger,
    ) -> Vec<Completion> {
        let completions = self.sim.tick(now, dt, ledger, &mut self.rng);
        for c in &completions {
            let profile = &profiles[c.peer.index()];
            if profile.free_rider {
                // Free-riders quit immediately on completion.
                self.sim.leave(c.peer);
            } else {
                self.seed_budget.insert(c.peer, profile.seed_duration);
            }
        }
        // Spend seed budgets for altruists that are online and still
        // members; leave when exhausted.
        let mut expired = Vec::new();
        for (&peer, remaining) in self.seed_budget.iter_mut() {
            if !online[peer.index()] {
                continue;
            }
            if !self.sim.is_member(peer) {
                expired.push(peer);
                continue;
            }
            if remaining.as_millis() <= dt.as_millis() {
                expired.push(peer);
            } else {
                *remaining = *remaining - dt;
            }
        }
        for peer in expired {
            self.seed_budget.remove(&peer);
            self.sim.leave(peer);
        }
        completions
    }

    /// Replay every tick in `[start, end_exclusive)` against this swarm:
    /// events are applied by the same `time <= tick` rule the immediate
    /// driver uses, transfers are credited into a fresh delta ledger.
    /// Returns the delta ledger and this swarm's completions (time-ordered).
    fn advance_window(
        &mut self,
        start: SimTime,
        end_exclusive: SimTime,
        dt: SimDuration,
        events: &[TraceEvent],
        online0: &[bool],
        profiles: &[PeerProfile],
    ) -> (TransferLedger, Vec<Completion>) {
        let mut online = online0.to_vec();
        let mut cursor = 0usize;
        let mut ledger = TransferLedger::new();
        let mut completions = Vec::new();
        let mut now = start;
        while now < end_exclusive {
            while cursor < events.len() && events[cursor].time <= now {
                let ev = events[cursor];
                cursor += 1;
                match ev.kind {
                    TraceEventKind::Online => online[ev.peer.index()] = true,
                    TraceEventKind::Offline => online[ev.peer.index()] = false,
                    TraceEventKind::StartDownload { .. } => {}
                }
                let link = link_of(profiles, ev.peer);
                self.apply_event(&ev, now, link, online[ev.peer.index()]);
            }
            completions.extend(self.advance_tick(now, dt, &online, profiles, &mut ledger));
            now += dt;
        }
        (ledger, completions)
    }
}

/// The BitTorrent substrate: every swarm of a trace plus churn state.
#[derive(Debug, Clone)]
pub struct BitTorrentNet {
    cfg: NetConfig,
    profiles: Arc<Vec<PeerProfile>>,
    swarms: Vec<SwarmRunner>,
    online: Vec<bool>,
    ledger: TransferLedger,
    completions: Vec<Completion>,
}

impl BitTorrentNet {
    /// Build the substrate for a trace. No events are applied yet. Swarm
    /// `i`'s RNG stream is `rng_base.fork(i)` — keyed by swarm id, so the
    /// stream a swarm observes never depends on scheduling.
    pub fn new(trace: &Trace, cfg: NetConfig, rng_base: &DetRng) -> Self {
        BitTorrentNet {
            cfg,
            profiles: Arc::new(trace.peers.clone()),
            swarms: trace
                .swarms
                .iter()
                .enumerate()
                .map(|(i, s)| SwarmRunner {
                    sim: SwarmSim::new(*s, cfg.swarm),
                    rng: rng_base.fork(i as u64),
                    seed_budget: BTreeMap::new(),
                })
                .collect(),
            online: vec![false; trace.peers.len()],
            ledger: TransferLedger::new(),
            completions: Vec::new(),
        }
    }

    /// Is `peer` currently online?
    pub fn is_online(&self, peer: NodeId) -> bool {
        self.online[peer.index()]
    }

    /// Online flags for every trace peer, indexed by id.
    pub fn online_flags(&self) -> &[bool] {
        &self.online
    }

    /// All currently online peers (ascending id).
    pub fn online_peers(&self) -> Vec<NodeId> {
        self.online
            .iter()
            .enumerate()
            .filter_map(|(i, &on)| on.then_some(NodeId::from_index(i)))
            .collect()
    }

    /// The global transfer ledger.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// Completions observed so far (time-ordered).
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Access a swarm's simulation state.
    pub fn swarm(&self, id: SwarmId) -> &SwarmSim {
        &self.swarms[id.index()].sim
    }

    /// Number of swarms in the network.
    pub fn swarm_count(&self) -> usize {
        self.swarms.len()
    }

    /// Record only the churn side of a trace event (the online flags).
    /// Window mode uses this: the swarm-level mutations are replayed
    /// inside [`BitTorrentNet::advance_window`] jobs by the same rule, so
    /// they must not also be applied here.
    pub fn note_event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceEventKind::Online => self.online[ev.peer.index()] = true,
            TraceEventKind::Offline => self.online[ev.peer.index()] = false,
            TraceEventKind::StartDownload { .. } => {}
        }
    }

    /// Apply one trace event at time `now`, immediately and in full
    /// (immediate mode; do not mix with [`BitTorrentNet::advance_window`]).
    pub fn apply_event(&mut self, ev: &TraceEvent, now: SimTime) {
        self.note_event(ev);
        let link = link_of(&self.profiles, ev.peer);
        let online = self.online[ev.peer.index()];
        for runner in &mut self.swarms {
            runner.apply_event(ev, now, link, online);
        }
    }

    /// Advance all swarms by one tick, applying seeding policies
    /// (immediate mode, ascending swarm order).
    pub fn tick(&mut self, now: SimTime) {
        let dt = self.cfg.tick;
        let BitTorrentNet {
            swarms,
            profiles,
            online,
            ledger,
            completions,
            ..
        } = self;
        for runner in swarms.iter_mut() {
            completions.extend(runner.advance_tick(now, dt, online, profiles, ledger));
        }
    }

    /// Replay every tick in `[start, end_exclusive)` for all swarms, one
    /// pool job per contiguous swarm chunk, and merge the results in
    /// canonical order: ledger deltas ascending by swarm id, completions
    /// by `(time, swarm)`. `events` must be exactly the trace events that
    /// became due in the window (they are replayed per tick with the same
    /// `time <= tick` rule as immediate mode); `online0` is the online
    /// snapshot from the end of the previous window. Returns the first
    /// tick not yet simulated (the next window's `start`).
    pub fn advance_window(
        &mut self,
        start: SimTime,
        end_exclusive: SimTime,
        events: &[TraceEvent],
        online0: &[bool],
        pool: &Pool,
    ) -> SimTime {
        let dt = self.cfg.tick;
        if start >= end_exclusive {
            return start;
        }
        let n = self.swarms.len();
        if n == 0 {
            let ticks = (end_exclusive.as_millis() - start.as_millis()).div_ceil(dt.as_millis());
            return start + SimDuration::from_millis(ticks * dt.as_millis());
        }
        let ctx = Arc::new((
            events.to_vec(),
            online0.to_vec(),
            Arc::clone(&self.profiles),
        ));
        let runners = std::mem::take(&mut self.swarms);
        let chunk_count = pool.threads().min(n);
        let chunk_size = n.div_ceil(chunk_count);
        type WindowResult = (Vec<SwarmRunner>, Vec<(TransferLedger, Vec<Completion>)>);
        let mut jobs: Vec<Box<dyn FnOnce() -> WindowResult + Send + 'static>> = Vec::new();
        let mut iter = runners.into_iter().peekable();
        while iter.peek().is_some() {
            let chunk: Vec<SwarmRunner> = iter.by_ref().take(chunk_size).collect();
            let ctx = Arc::clone(&ctx);
            jobs.push(Box::new(move || {
                let mut chunk = chunk;
                let (events, online0, profiles) = &*ctx;
                let deltas: Vec<(TransferLedger, Vec<Completion>)> = chunk
                    .iter_mut()
                    .map(|r| r.advance_window(start, end_exclusive, dt, events, online0, profiles))
                    .collect();
                (chunk, deltas)
            }));
        }
        // Results come back in job-submission order == ascending swarm id.
        let mut keyed_completions: Vec<Vec<((SimTime, u32), Completion)>> = Vec::new();
        for (chunk, deltas) in pool.scatter(jobs) {
            for (runner, (delta, completions)) in chunk.into_iter().zip(deltas) {
                self.ledger.merge_from(&delta);
                keyed_completions.push(
                    completions
                        .into_iter()
                        .map(|c| ((c.time, c.swarm.index() as u32), c))
                        .collect(),
                );
                self.swarms.push(runner);
            }
        }
        self.completions.extend(
            merge_canonical(keyed_completions)
                .into_iter()
                .map(|(_, c)| c),
        );
        let ticks = (end_exclusive.as_millis() - start.as_millis()).div_ceil(dt.as_millis());
        start + SimDuration::from_millis(ticks * dt.as_millis())
    }

    /// Convenience driver: replay the whole trace, ticking transfers and
    /// invoking `observer` every `sample_every` of simulation time.
    pub fn run_trace(
        trace: &Trace,
        cfg: NetConfig,
        seed: u64,
        sample_every: SimDuration,
        mut observer: impl FnMut(&BitTorrentNet, SimTime),
    ) -> BitTorrentNet {
        let rng_base = DetRng::new(seed).fork(0xB177);
        let mut net = BitTorrentNet::new(trace, cfg, &rng_base);
        let end = SimTime::ZERO + trace.duration;
        let mut next_event = 0usize;
        let mut next_sample = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        while now < end {
            while next_event < trace.events.len() && trace.events[next_event].time <= now {
                let ev = trace.events[next_event];
                net.apply_event(&ev, now);
                next_event += 1;
            }
            net.tick(now);
            if now >= next_sample {
                observer(&net, now);
                next_sample = now + sample_every;
            }
            now += cfg.tick;
        }
        observer(&net, end);
        net
    }
}

/// Stable binary encoding: config, peer profiles (the `Arc` is unshared on
/// restore — profiles are immutable, so sharing is an optimization, not
/// semantics), swarm runners, online flags, global ledger, completion log.
impl rvs_checkpoint::Persist for BitTorrentNet {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.cfg.persist(enc);
        self.profiles.as_ref().persist(enc);
        self.swarms.persist(enc);
        self.online.persist(enc);
        self.ledger.persist(enc);
        self.completions.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(BitTorrentNet {
            cfg: NetConfig::restore(dec)?,
            profiles: Arc::new(Vec::restore(dec)?),
            swarms: Vec::restore(dec)?,
            online: Vec::restore(dec)?,
            ledger: TransferLedger::restore(dec)?,
            completions: Vec::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_trace::TraceGenConfig;

    fn quick_trace(seed: u64) -> Trace {
        TraceGenConfig::quick(15, SimDuration::from_days(1)).generate(seed)
    }

    #[test]
    fn trace_replay_moves_data() {
        let trace = quick_trace(5);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            1,
            SimDuration::from_hours(6),
            |_, _| {},
        );
        assert!(
            net.ledger().total_kib() > 10 * 1024,
            "expected >10 MiB transferred, got {} KiB",
            net.ledger().total_kib()
        );
    }

    #[test]
    fn completions_occur_and_are_ordered() {
        let trace = quick_trace(7);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            2,
            SimDuration::from_hours(24),
            |_, _| {},
        );
        let c = net.completions();
        assert!(!c.is_empty(), "some downloads should complete in a day");
        for w in c.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn free_riders_leave_after_completion() {
        let trace = quick_trace(9);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            3,
            SimDuration::from_hours(24),
            |_, _| {},
        );
        for c in net.completions() {
            let p = &trace.peers[c.peer.index()];
            if p.free_rider {
                assert!(
                    !net.swarm(c.swarm).is_member(c.peer),
                    "free-rider {} should have left swarm {}",
                    c.peer,
                    c.swarm
                );
            }
        }
    }

    #[test]
    fn online_state_follows_trace() {
        let trace = quick_trace(11);
        let mut net = BitTorrentNet::new(&trace, NetConfig::default(), &DetRng::new(11));
        let ev = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::Online))
            .unwrap();
        net.apply_event(ev, ev.time);
        assert!(net.is_online(ev.peer));
        let off = TraceEvent {
            time: ev.time,
            peer: ev.peer,
            kind: TraceEventKind::Offline,
        };
        net.apply_event(&off, ev.time);
        assert!(!net.is_online(ev.peer));
        assert!(net.online_peers().is_empty());
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = quick_trace(13);
        let run = || {
            BitTorrentNet::run_trace(
                &trace,
                NetConfig::default(),
                4,
                SimDuration::from_hours(6),
                |_, _| {},
            )
            .ledger()
            .clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observer_called_at_sampling_interval() {
        let trace = quick_trace(15);
        let mut samples = Vec::new();
        BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            5,
            SimDuration::from_hours(6),
            |_, t| samples.push(t),
        );
        // 24h / 6h = 4 interior samples + initial + final.
        assert!(samples.len() >= 5, "got {} samples", samples.len());
        for w in samples.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn initial_seeders_upload_most_early() {
        let trace = quick_trace(17);
        let net = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            6,
            SimDuration::from_hours(24),
            |_, _| {},
        );
        // Every swarm's initial seeder should have uploaded something
        // (their swarm had at least one leecher in almost every seed; allow
        // swarms that attracted no leechers).
        let uploaded_any = trace
            .swarms
            .iter()
            .filter(|s| net.ledger().total_uploaded_kib(s.initial_seeder) > 0)
            .count();
        assert!(uploaded_any >= 1);
    }

    /// The windowed driver must be byte-identical to the immediate driver:
    /// same ledger, same completion log, for any window partition and any
    /// thread count.
    #[test]
    fn windowed_replay_matches_immediate_replay() {
        let trace = quick_trace(19);
        let immediate = BitTorrentNet::run_trace(
            &trace,
            NetConfig::default(),
            7,
            SimDuration::from_hours(24),
            |_, _| {},
        );

        let windowed = |threads: usize, window: SimDuration| -> BitTorrentNet {
            let pool = Pool::new(threads);
            let cfg = NetConfig::default();
            let rng_base = DetRng::new(7).fork(0xB177);
            let mut net = BitTorrentNet::new(&trace, cfg, &rng_base);
            let end = SimTime::ZERO + trace.duration;
            let mut next_event = 0usize;
            let mut lo = 0usize;
            let mut window_start = SimTime::ZERO;
            let mut online0 = net.online_flags().to_vec();
            let mut now = SimTime::ZERO;
            while now < end {
                while next_event < trace.events.len() && trace.events[next_event].time <= now {
                    net.note_event(&trace.events[next_event]);
                    next_event += 1;
                }
                if (now - window_start).as_millis() >= window.as_millis() {
                    window_start = net.advance_window(
                        window_start,
                        now + cfg.tick,
                        &trace.events[lo..next_event],
                        &online0,
                        &pool,
                    );
                    lo = next_event;
                    online0 = net.online_flags().to_vec();
                }
                now += cfg.tick;
            }
            net.advance_window(
                window_start,
                end,
                &trace.events[lo..next_event],
                &online0,
                &pool,
            );
            net
        };

        for (threads, window) in [
            (1, SimDuration::from_mins(10)),
            (4, SimDuration::from_mins(10)),
            (4, SimDuration::from_hours(3)),
            (8, SimDuration::from_secs(10)),
        ] {
            let net = windowed(threads, window);
            assert_eq!(
                net.ledger(),
                immediate.ledger(),
                "ledger diverged at {threads} threads, window {window}"
            );
            assert_eq!(
                net.completions(),
                immediate.completions(),
                "completions diverged at {threads} threads, window {window}"
            );
        }
    }
}
