//! Transfer accounting: who uploaded how much to whom.
//!
//! Every piece transferred in any swarm is credited here at KiB
//! granularity. The ledger is the ground truth that peers' own BarterCast
//! records are drawn from, and what the experience function's contribution
//! estimates approximate.

use rvs_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cumulative upload totals per ordered peer pair `(from, to)`.
///
/// Backed by a `BTreeMap` so iteration order — and therefore every
/// downstream computation — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferLedger {
    kib: BTreeMap<(NodeId, NodeId), u64>,
    /// Mirror keyed `(to, from)` so per-downloader queries are range scans.
    incoming: BTreeMap<(NodeId, NodeId), u64>,
    total_kib: u64,
}

impl TransferLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credit `kib` KiB uploaded from `from` to `to`.
    pub fn credit(&mut self, from: NodeId, to: NodeId, kib: u64) {
        if kib == 0 || from == to {
            return;
        }
        *self.kib.entry((from, to)).or_insert(0) += kib;
        *self.incoming.entry((to, from)).or_insert(0) += kib;
        self.total_kib += kib;
    }

    /// Fold another ledger's credits into this one. Credits are plain
    /// integer sums, so the merge is associative and commutative — the
    /// parallel window driver relies on this to combine per-swarm delta
    /// ledgers into the global ledger in canonical swarm order.
    pub fn merge_from(&mut self, other: &TransferLedger) {
        for (&(from, to), &kib) in &other.kib {
            *self.kib.entry((from, to)).or_insert(0) += kib;
        }
        for (&(to, from), &kib) in &other.incoming {
            *self.incoming.entry((to, from)).or_insert(0) += kib;
        }
        self.total_kib += other.total_kib;
    }

    /// KiB uploaded from `from` to `to`.
    pub fn uploaded_kib(&self, from: NodeId, to: NodeId) -> u64 {
        self.kib.get(&(from, to)).copied().unwrap_or(0)
    }

    /// MiB uploaded from `from` to `to`.
    pub fn uploaded_mib(&self, from: NodeId, to: NodeId) -> f64 {
        self.uploaded_kib(from, to) as f64 / 1024.0
    }

    /// Total KiB `peer` has uploaded to anyone.
    pub fn total_uploaded_kib(&self, peer: NodeId) -> u64 {
        self.kib
            .iter()
            .filter(|((f, _), _)| *f == peer)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Total KiB `peer` has downloaded from anyone.
    pub fn total_downloaded_kib(&self, peer: NodeId) -> u64 {
        self.incoming
            .range((peer, NodeId(0))..=(peer, NodeId(u32::MAX)))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Sharing ratio (uploaded / downloaded); `None` when nothing was
    /// downloaded yet.
    pub fn sharing_ratio(&self, peer: NodeId) -> Option<f64> {
        let down = self.total_downloaded_kib(peer);
        if down == 0 {
            None
        } else {
            Some(self.total_uploaded_kib(peer) as f64 / down as f64)
        }
    }

    /// Iterate over all `(from, to, kib)` entries in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.kib.iter().map(|(&(f, t), &v)| (f, t, v))
    }

    /// Directed edges into `to`: `(from, kib)` pairs (range scan on the
    /// reverse index).
    pub fn uploads_to(&self, to: NodeId) -> Vec<(NodeId, u64)> {
        self.incoming
            .range((to, NodeId(0))..=(to, NodeId(u32::MAX)))
            .map(|(&(_, f), &v)| (f, v))
            .collect()
    }

    /// Directed edges out of `from`: `(to, kib)` pairs (range scan).
    pub fn uploads_from(&self, from: NodeId) -> Vec<(NodeId, u64)> {
        self.kib
            .range((from, NodeId(0))..=(from, NodeId(u32::MAX)))
            .map(|(&(_, t), &v)| (t, v))
            .collect()
    }

    /// Number of distinct ordered pairs with nonzero transfer.
    pub fn edge_count(&self) -> usize {
        self.kib.len()
    }

    /// Total KiB transferred across all pairs.
    pub fn total_kib(&self) -> u64 {
        self.total_kib
    }
}

/// Stable binary encoding: forward map, reverse index, grand total — all
/// three persisted (the reverse index is derivable but rebuilding it on
/// restore would cost a full scan for no robustness gain; the differential
/// tests cover their agreement).
impl rvs_checkpoint::Persist for TransferLedger {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.kib.persist(enc);
        self.incoming.persist(enc);
        enc.u64(self.total_kib);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(TransferLedger {
            kib: BTreeMap::restore(dec)?,
            incoming: BTreeMap::restore(dec)?,
            total_kib: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_accumulate() {
        let mut l = TransferLedger::new();
        l.credit(NodeId(1), NodeId(2), 100);
        l.credit(NodeId(1), NodeId(2), 50);
        assert_eq!(l.uploaded_kib(NodeId(1), NodeId(2)), 150);
        assert_eq!(l.uploaded_kib(NodeId(2), NodeId(1)), 0);
        assert_eq!(l.total_kib(), 150);
    }

    #[test]
    fn zero_and_self_credits_ignored() {
        let mut l = TransferLedger::new();
        l.credit(NodeId(1), NodeId(2), 0);
        l.credit(NodeId(3), NodeId(3), 500);
        assert_eq!(l.edge_count(), 0);
        assert_eq!(l.total_kib(), 0);
    }

    #[test]
    fn totals_and_ratio() {
        let mut l = TransferLedger::new();
        l.credit(NodeId(1), NodeId(2), 1024);
        l.credit(NodeId(1), NodeId(3), 1024);
        l.credit(NodeId(2), NodeId(1), 512);
        assert_eq!(l.total_uploaded_kib(NodeId(1)), 2048);
        assert_eq!(l.total_downloaded_kib(NodeId(1)), 512);
        assert_eq!(l.sharing_ratio(NodeId(1)), Some(4.0));
        // Node 3 downloaded but never uploaded: ratio zero.
        assert_eq!(l.sharing_ratio(NodeId(3)), Some(0.0));
        // Node 9 has no transfers at all: ratio undefined.
        assert_eq!(l.sharing_ratio(NodeId(9)), None);
        assert!((l.uploaded_mib(NodeId(1), NodeId(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uploads_to_lists_in_edges() {
        let mut l = TransferLedger::new();
        l.credit(NodeId(5), NodeId(1), 10);
        l.credit(NodeId(7), NodeId(1), 20);
        l.credit(NodeId(5), NodeId(2), 99);
        let mut ins = l.uploads_to(NodeId(1));
        ins.sort();
        assert_eq!(ins, vec![(NodeId(5), 10), (NodeId(7), 20)]);
    }

    #[test]
    fn uploads_from_lists_out_edges() {
        let mut l = TransferLedger::new();
        l.credit(NodeId(5), NodeId(1), 10);
        l.credit(NodeId(5), NodeId(3), 30);
        l.credit(NodeId(6), NodeId(1), 99);
        assert_eq!(
            l.uploads_from(NodeId(5)),
            vec![(NodeId(1), 10), (NodeId(3), 30)]
        );
        assert!(l.uploads_from(NodeId(9)).is_empty());
    }

    #[test]
    fn forward_and_reverse_indices_agree() {
        let mut l = TransferLedger::new();
        for i in 0..20u32 {
            l.credit(NodeId(i % 5), NodeId((i + 1) % 7), (i as u64 + 1) * 10);
        }
        for (f, t, v) in l.iter() {
            assert!(l.uploads_to(t).contains(&(f, v)));
            assert!(l.uploads_from(f).contains(&(t, v)));
        }
    }

    #[test]
    fn iteration_is_deterministic_and_sorted() {
        let mut l = TransferLedger::new();
        l.credit(NodeId(9), NodeId(1), 1);
        l.credit(NodeId(2), NodeId(8), 1);
        l.credit(NodeId(2), NodeId(3), 1);
        let pairs: Vec<(NodeId, NodeId)> = l.iter().map(|(f, t, _)| (f, t)).collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn merge_from_equals_interleaved_credits() {
        // Credits split across delta ledgers and merged must equal the
        // same credits applied directly, in any order.
        let credits = [
            (NodeId(0), NodeId(1), 10u64),
            (NodeId(1), NodeId(0), 20),
            (NodeId(2), NodeId(1), 5),
            (NodeId(0), NodeId(1), 7),
        ];
        let mut direct = TransferLedger::new();
        for &(f, t, k) in &credits {
            direct.credit(f, t, k);
        }
        let mut a = TransferLedger::new();
        let mut b = TransferLedger::new();
        for (i, &(f, t, k)) in credits.iter().enumerate() {
            if i % 2 == 0 {
                a.credit(f, t, k);
            } else {
                b.credit(f, t, k);
            }
        }
        let mut merged = TransferLedger::new();
        merged.merge_from(&b);
        merged.merge_from(&a);
        assert_eq!(merged, direct);
        assert_eq!(merged.total_kib(), direct.total_kib());
    }
}
