//! Piece selection: rarest-first with random tie-breaking.
//!
//! Standard BitTorrent policy: a leecher requests the piece that the fewest
//! swarm members hold (promoting piece diversity), breaking ties uniformly
//! at random. The very first piece is chosen uniformly at random instead,
//! so a newcomer gets *some* piece quickly and can start reciprocating.

use crate::bitfield::Bitfield;
use rvs_sim::DetRng;

/// Per-swarm piece availability counters, maintained incrementally as
/// members join, leave, and complete pieces.
#[derive(Debug, Clone, Default)]
pub struct Availability {
    counts: Vec<u32>,
}

impl Availability {
    /// Availability over `pieces` pieces, all initially zero.
    pub fn new(pieces: u32) -> Self {
        Availability {
            counts: vec![0; pieces as usize],
        }
    }

    /// Register a member's bitfield (join).
    pub fn add_bitfield(&mut self, bf: &Bitfield) {
        for i in bf.ones() {
            self.counts[i as usize] += 1;
        }
    }

    /// Unregister a member's bitfield (leave).
    pub fn remove_bitfield(&mut self, bf: &Bitfield) {
        for i in bf.ones() {
            debug_assert!(self.counts[i as usize] > 0);
            self.counts[i as usize] -= 1;
        }
    }

    /// A member gained one piece.
    pub fn add_piece(&mut self, piece: u32) {
        self.counts[piece as usize] += 1;
    }

    /// Copies of `piece` currently in the swarm.
    pub fn count(&self, piece: u32) -> u32 {
        self.counts[piece as usize]
    }
}

/// Stable binary encoding: the per-piece copy counters in piece order.
impl rvs_checkpoint::Persist for Availability {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.counts.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Availability {
            counts: Vec::restore(dec)?,
        })
    }
}

/// Choose the next piece for `mine` to request from `theirs`.
///
/// * If `mine` is empty, pick uniformly at random among the pieces `theirs`
///   offers (random first piece).
/// * Otherwise pick the rarest candidate by `availability`, breaking ties
///   uniformly at random (reservoir over the minimum).
///
/// Returns `None` when `theirs` offers nothing new.
pub fn pick_piece(
    mine: &Bitfield,
    theirs: &Bitfield,
    availability: &Availability,
    rng: &mut DetRng,
) -> Option<u32> {
    if mine.count() == 0 {
        // Random first piece.
        let candidates: Vec<u32> = mine.missing_from(theirs).collect();
        if candidates.is_empty() {
            return None;
        }
        return Some(candidates[rng.index(candidates.len())]);
    }
    let mut best: Option<u32> = None;
    let mut best_avail = u32::MAX;
    let mut ties = 0u64;
    for piece in mine.missing_from(theirs) {
        let a = availability.count(piece);
        if a < best_avail {
            best_avail = a;
            best = Some(piece);
            ties = 1;
        } else if a == best_avail {
            // Reservoir sampling over equally-rare pieces keeps the choice
            // uniform without materialising the candidate list.
            ties += 1;
            if rng.below(ties) == 0 {
                best = Some(piece);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail_from(members: &[&Bitfield], pieces: u32) -> Availability {
        let mut a = Availability::new(pieces);
        for m in members {
            a.add_bitfield(m);
        }
        a
    }

    #[test]
    fn rarest_piece_wins() {
        let pieces = 4;
        let mut mine = Bitfield::empty(pieces);
        mine.set(0); // not a newcomer → rarest-first applies
        let theirs = Bitfield::full(pieces);
        // Piece 2 held by nobody else; pieces 1, 3 by one other member.
        let mut other = Bitfield::empty(pieces);
        other.set(1);
        other.set(3);
        let avail = avail_from(&[&theirs, &other, &mine], pieces);
        let mut rng = DetRng::new(1);
        for _ in 0..20 {
            assert_eq!(pick_piece(&mine, &theirs, &avail, &mut rng), Some(2));
        }
    }

    #[test]
    fn first_piece_is_random_not_rarest() {
        let pieces = 64;
        let mine = Bitfield::empty(pieces);
        let theirs = Bitfield::full(pieces);
        let avail = avail_from(&[&theirs], pieces);
        let mut rng = DetRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(pick_piece(&mine, &theirs, &avail, &mut rng).unwrap());
        }
        assert!(
            seen.len() > 20,
            "random first piece should spread; got {} distinct",
            seen.len()
        );
    }

    #[test]
    fn nothing_wanted_returns_none() {
        let pieces = 8;
        let mine = Bitfield::full(pieces);
        let theirs = Bitfield::full(pieces);
        let avail = avail_from(&[&mine, &theirs], pieces);
        let mut rng = DetRng::new(5);
        assert_eq!(pick_piece(&mine, &theirs, &avail, &mut rng), None);
    }

    #[test]
    fn ties_break_uniformly() {
        let pieces = 3;
        let mut mine = Bitfield::empty(pieces);
        mine.set(0);
        let theirs = Bitfield::full(pieces);
        let avail = avail_from(&[&theirs], pieces); // pieces 1,2 equally rare
        let mut rng = DetRng::new(7);
        let mut ones = 0;
        let n = 2_000;
        for _ in 0..n {
            match pick_piece(&mine, &theirs, &avail, &mut rng) {
                Some(1) => ones += 1,
                Some(2) => {}
                other => panic!("unexpected pick {other:?}"),
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((0.42..=0.58).contains(&frac), "tie split {frac}");
    }

    #[test]
    fn availability_tracks_joins_and_leaves() {
        let mut a = Availability::new(4);
        let mut bf = Bitfield::empty(4);
        bf.set(1);
        bf.set(2);
        a.add_bitfield(&bf);
        assert_eq!(a.count(1), 1);
        a.add_piece(1);
        assert_eq!(a.count(1), 2);
        a.remove_bitfield(&bf);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.count(2), 0);
    }
}
