//! Property-based tests for the swarm simulator: conservation and
//! role/capacity invariants under randomized membership and churn.

use proptest::prelude::*;
use rvs_bittorrent::swarm::{LinkProfile, MemberRole, SwarmConfig};
use rvs_bittorrent::{SwarmSim, TransferLedger};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime, SwarmId};
use rvs_trace::SwarmSpec;

#[derive(Debug, Clone)]
enum Op {
    JoinLeecher(u32, bool, u32),
    JoinSeeder(u32, bool, u32),
    Leave(u32),
    SetOnline(u32, bool),
    Tick(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..12, prop::bool::ANY, 32u32..512).prop_map(|(p, c, u)| Op::JoinLeecher(p, c, u)),
        (0u32..12, prop::bool::ANY, 32u32..512).prop_map(|(p, c, u)| Op::JoinSeeder(p, c, u)),
        (0u32..12).prop_map(Op::Leave),
        (0u32..12, prop::bool::ANY).prop_map(|(p, on)| Op::SetOnline(p, on)),
        (1u8..30).prop_map(Op::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary join/leave/churn/tick sequences the swarm never
    /// panics, progress stays within [0, 1], completions only ever promote
    /// to seeder, and total transfer never exceeds what the tick budget
    /// allows.
    #[test]
    fn swarm_survives_arbitrary_operations(ops in prop::collection::vec(arb_op(), 1..80)) {
        let spec = SwarmSpec {
            id: SwarmId(0),
            created: SimTime::ZERO,
            file_size_mib: 8,
            piece_size_kib: 256,
            initial_seeder: NodeId(0),
        };
        let mut sim = SwarmSim::new(spec, SwarmConfig::default());
        let mut ledger = TransferLedger::new();
        let mut rng = DetRng::new(7);
        let mut now = SimTime::ZERO;
        let dt = SimDuration::from_secs(10);
        let mut max_rate_kib = 0u64;
        for op in ops {
            match op {
                Op::JoinLeecher(p, connectable, up) => {
                    sim.join(NodeId(p), MemberRole::Leecher, LinkProfile {
                        connectable, uplink_kibps: up, downlink_kibps: up * 4,
                    }, true);
                    max_rate_kib = max_rate_kib.max(up as u64);
                }
                Op::JoinSeeder(p, connectable, up) => {
                    sim.join(NodeId(p), MemberRole::Seeder, LinkProfile {
                        connectable, uplink_kibps: up, downlink_kibps: up * 4,
                    }, true);
                    max_rate_kib = max_rate_kib.max(up as u64);
                }
                Op::Leave(p) => sim.leave(NodeId(p)),
                Op::SetOnline(p, on) => sim.set_online(NodeId(p), on),
                Op::Tick(k) => {
                    for _ in 0..k {
                        let completions = sim.tick(now, dt, &mut ledger, &mut rng);
                        now += dt;
                        for c in completions {
                            prop_assert_eq!(
                                sim.role(c.peer),
                                Some(MemberRole::Seeder),
                                "completion must promote to seeder"
                            );
                            prop_assert_eq!(sim.progress(c.peer), Some(1.0));
                        }
                    }
                }
            }
            for p in 0..12u32 {
                if let Some(prog) = sim.progress(NodeId(p)) {
                    prop_assert!((0.0..=1.0).contains(&prog));
                }
            }
        }
        // Conservation: total ledger volume is bounded by (elapsed time) ×
        // (sum of max uplinks ever seen × members) — a loose but absolute
        // physical cap.
        let elapsed_secs = now.as_secs();
        let cap = elapsed_secs.saturating_mul(max_rate_kib).saturating_mul(12);
        prop_assert!(ledger.total_kib() <= cap.max(1));
    }

    /// A closed seeder+leecher pair transfers exactly the file volume when
    /// run to completion (no creation or loss of bytes).
    #[test]
    fn byte_conservation_pairwise(file_mib in 1u32..16, up in 128u32..1024) {
        let spec = SwarmSpec {
            id: SwarmId(0),
            created: SimTime::ZERO,
            file_size_mib: file_mib,
            piece_size_kib: 256,
            initial_seeder: NodeId(0),
        };
        let mut sim = SwarmSim::new(spec, SwarmConfig::default());
        let link = LinkProfile { connectable: true, uplink_kibps: up, downlink_kibps: up * 4 };
        sim.join(NodeId(0), MemberRole::Seeder, link, true);
        sim.join(NodeId(1), MemberRole::Leecher, link, true);
        let mut ledger = TransferLedger::new();
        let mut rng = DetRng::new(1);
        let mut now = SimTime::ZERO;
        let dt = SimDuration::from_secs(10);
        let mut done = false;
        for _ in 0..500_000 {
            if !sim.tick(now, dt, &mut ledger, &mut rng).is_empty() {
                done = true;
                break;
            }
            now += dt;
        }
        prop_assert!(done, "download must finish");
        let moved = ledger.uploaded_kib(NodeId(0), NodeId(1));
        let file_kib = file_mib as u64 * 1024;
        // Within one piece of rounding slack.
        prop_assert!(moved + 256 >= file_kib && moved <= file_kib + 256,
            "moved {moved} KiB vs file {file_kib} KiB");
    }
}
