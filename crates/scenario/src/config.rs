//! Scenario configuration: protocol tuning plus the cast of actors
//! (moderators, voters, pre-seeded core, flash crowd).

use rvs_bartercast::{AdaptiveThreshold, BarterCastConfig};
use rvs_bittorrent::NetConfig;
use rvs_modcast::{ContentQuality, LocalVote, ModerationCastConfig};
use rvs_sim::{ModeratorId, NodeId, SimDuration, SimTime, SwarmId};

/// Protocol-level tuning shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// BitTorrent substrate tuning.
    pub net: NetConfig,
    /// BarterCast tuning (2-hop maxflow, 50-record exchanges).
    pub bartercast: BarterCastConfig,
    /// ModerationCast tuning.
    pub modcast: ModerationCastConfig,
    /// BallotBox / VoxPopuli tuning (B_min, B_max, V_max, K, …).
    pub votes: rvs_core::VoteSamplingConfig,
    /// Period of the protocol gossip loop (PSS encounters for BarterCast,
    /// ModerationCast and vote sampling).
    pub gossip_every: SimDuration,
    /// Experience threshold `T` in MiB (paper: 5 MB).
    pub experience_t_mib: f64,
    /// When set, every node runs the §VII adaptive threshold instead of
    /// the fixed `T` (ablation A1).
    pub adaptive_t: Option<AdaptiveThreshold>,
    /// VoxPopuli bootstrap enabled (ablation A6 switches it off).
    pub vox_enabled: bool,
    /// Use the Newscast gossip PSS instead of the uniform oracle.
    pub use_newscast_pss: bool,
    /// Failure injection: probability that any given protocol encounter is
    /// lost entirely (timeout, NAT failure, crash mid-exchange). Applied
    /// per encounter, deterministically from the run's seed.
    pub message_loss: f64,
}

impl ProtocolConfig {
    /// This configuration with BarterCast's incremental contribution cache
    /// switched off — the reference twin the cached-vs-uncached determinism
    /// regression tests run against.
    pub fn without_contribution_cache(mut self) -> Self {
        self.bartercast.cache_contributions = false;
        self
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            net: NetConfig::default(),
            bartercast: BarterCastConfig::default(),
            modcast: ModerationCastConfig::default(),
            votes: rvs_core::VoteSamplingConfig::default(),
            gossip_every: SimDuration::from_secs(60),
            experience_t_mib: 5.0,
            adaptive_t: None,
            vox_enabled: true,
            use_newscast_pss: false,
            message_loss: 0.0,
        }
    }
}

/// Stable binary encoding: every tuning field in declaration order —
/// substrate configs first, then the gossip period, experience threshold,
/// optional adaptive threshold, the two feature flags, and the legacy
/// message-loss knob.
impl rvs_checkpoint::Persist for ProtocolConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.net.persist(enc);
        self.bartercast.persist(enc);
        self.modcast.persist(enc);
        self.votes.persist(enc);
        self.gossip_every.persist(enc);
        enc.f64(self.experience_t_mib);
        self.adaptive_t.persist(enc);
        enc.bool(self.vox_enabled);
        enc.bool(self.use_newscast_pss);
        enc.f64(self.message_loss);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ProtocolConfig {
            net: NetConfig::restore(dec)?,
            bartercast: BarterCastConfig::restore(dec)?,
            modcast: ModerationCastConfig::restore(dec)?,
            votes: rvs_core::VoteSamplingConfig::restore(dec)?,
            gossip_every: SimDuration::restore(dec)?,
            experience_t_mib: dec.f64()?,
            adaptive_t: Option::restore(dec)?,
            vox_enabled: dec.bool()?,
            use_newscast_pss: dec.bool()?,
            message_loss: dec.f64()?,
        })
    }
}

/// A moderator that publishes one moderation when it first appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeratorSpec {
    /// The publishing node.
    pub moderator: ModeratorId,
    /// The swarm its moderation describes.
    pub swarm: SwarmId,
    /// Ground-truth quality of the metadata.
    pub quality: ContentQuality,
    /// Publication time.
    pub publish_at: SimTime,
}

/// Stable binary encoding: moderator, swarm, quality, publication time.
impl rvs_checkpoint::Persist for ModeratorSpec {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.moderator.persist(enc);
        self.swarm.persist(enc);
        self.quality.persist(enc);
        self.publish_at.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ModeratorSpec {
            moderator: ModeratorId::restore(dec)?,
            swarm: SwarmId::restore(dec)?,
            quality: ContentQuality::restore(dec)?,
            publish_at: SimTime::restore(dec)?,
        })
    }
}

/// A voter assignment: `voter` casts `vote` on `moderator` as soon as it
/// has received one of the moderator's items ("voting nodes do not vote
/// until they receive the appropriate moderations", Fig 6 caption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoterSpec {
    /// The voting node.
    pub voter: NodeId,
    /// The moderator voted on.
    pub moderator: ModeratorId,
    /// Thumbs-up or thumbs-down.
    pub vote: LocalVote,
}

/// Stable binary encoding: voter, moderator, vote.
impl rvs_checkpoint::Persist for VoterSpec {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.voter.persist(enc);
        self.moderator.persist(enc);
        self.vote.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(VoterSpec {
            voter: NodeId::restore(dec)?,
            moderator: ModeratorId::restore(dec)?,
            vote: LocalVote::restore(dec)?,
        })
    }
}

/// A pre-seeded experienced core (Figure 8 setup: "we fixed 30 nodes to be
/// part of the experienced core. At the start of the run the entire core
/// is converged on a top moderator M1").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreseededCore {
    /// Core members: treated as experienced by every node's `E`.
    pub members: Vec<NodeId>,
    /// The moderator the core has converged on.
    pub top_moderator: ModeratorId,
}

/// Stable binary encoding: member list, then the converged top moderator.
impl rvs_checkpoint::Persist for PreseededCore {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.members.persist(enc);
        self.top_moderator.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(PreseededCore {
            members: Vec::restore(dec)?,
            top_moderator: ModeratorId::restore(dec)?,
        })
    }
}

/// A flash crowd of colluding fresh identities promoting a spam moderator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdSpec {
    /// Number of colluding identities (appended after the trace peers).
    pub size: usize,
    /// When the crowd joins.
    pub join_at: SimTime,
    /// Swarm the spam moderation is attached to.
    pub spam_swarm: SwarmId,
    /// Honest moderator the crowd votes down, if any.
    pub demote: Option<ModeratorId>,
    /// Fraction of time each crowd identity is online (the crowd churns
    /// like the rest of the population; 1.0 = always on).
    pub duty_cycle: f64,
    /// On/off period for the crowd's duty cycle.
    pub churn_period: SimDuration,
}

impl CrowdSpec {
    /// A crowd of `size` nodes joining at `join_at` with ~50% presence,
    /// matching the traced population's churn.
    pub fn churning(size: usize, join_at: SimTime, spam_swarm: SwarmId) -> Self {
        CrowdSpec {
            size,
            join_at,
            spam_swarm,
            demote: None,
            duty_cycle: 0.5,
            churn_period: SimDuration::from_mins(80),
        }
    }
}

/// Stable binary encoding: size, join time, spam swarm, optional demote
/// target, duty cycle, churn period — declaration order.
impl rvs_checkpoint::Persist for CrowdSpec {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.size);
        self.join_at.persist(enc);
        self.spam_swarm.persist(enc);
        self.demote.persist(enc);
        enc.f64(self.duty_cycle);
        self.churn_period.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let size = dec.usize()?;
        if size == 0 {
            return Err(rvs_checkpoint::DecodeError::Corrupt(
                "CrowdSpec size must be positive".into(),
            ));
        }
        Ok(CrowdSpec {
            size,
            join_at: SimTime::restore(dec)?,
            spam_swarm: SwarmId::restore(dec)?,
            demote: Option::restore(dec)?,
            duty_cycle: dec.f64()?,
            churn_period: SimDuration::restore(dec)?,
        })
    }
}

/// The full cast of a scenario.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSetup {
    /// Moderators publishing metadata.
    pub moderators: Vec<ModeratorSpec>,
    /// Voter assignments.
    pub voters: Vec<VoterSpec>,
    /// Pre-seeded experienced core, if the scenario fixes one.
    pub core: Option<PreseededCore>,
    /// Flash crowd, if the scenario is under attack.
    pub crowd: Option<CrowdSpec>,
}

/// Stable binary encoding: moderators, voters, optional core, optional
/// crowd.
impl rvs_checkpoint::Persist for ScenarioSetup {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.moderators.persist(enc);
        self.voters.persist(enc);
        self.core.persist(enc);
        self.crowd.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ScenarioSetup {
            moderators: Vec::restore(dec)?,
            voters: Vec::restore(dec)?,
            core: Option::restore(dec)?,
            crowd: Option::restore(dec)?,
        })
    }
}

impl Default for PreseededCore {
    fn default() -> Self {
        PreseededCore {
            members: Vec::new(),
            top_moderator: NodeId(0),
        }
    }
}
