//! Ablations and extensions (experiment index A1–A6 in DESIGN.md).
//!
//! These probe the design decisions the paper argues for in §II, §V and
//! §VII: the adaptive threshold sketch, the ballot-box bounds, the
//! vote-list selection policy, sampling-vs-aggregation, the mole attack's
//! cost, and VoxPopuli's bootstrap/vulnerability trade-off.

use crate::config::ProtocolConfig;
use crate::experiments::parallel::{default_threads, parallel_runs};
use crate::experiments::spam::{fig8_setup, SpamAttackConfig};
use crate::experiments::vote_sampling::{fig6_setup, VoteSamplingConfig};
use crate::system::System;
use rvs_attacks::{EpidemicAggregation, MoleAttack};
use rvs_bartercast::{AdaptiveThreshold, BarterCast, BarterCastConfig};
use rvs_bittorrent::TransferLedger;
use rvs_core::VoteListPolicy;
use rvs_metrics::TimeSeries;
use rvs_sim::{DetRng, NodeId, SimTime};

/// A1 — adaptive threshold under attack: pollution with the fixed paper
/// threshold vs the §VII adaptive rule, plus where the adaptive `T`
/// settles.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Pollution under the fixed `T`.
    pub fixed: TimeSeries,
    /// Pollution under the paper's literal symmetric adaptive sketch.
    pub symmetric: TimeSeries,
    /// Pollution under the asymmetric (fast-raise, slow-decay) variant.
    pub adaptive: TimeSeries,
    /// Mean asymmetric-adaptive threshold across trace nodes at the end.
    pub final_t_mean_mib: f64,
}

/// Run the A1 ablation on the Figure 8 scenario (largest configured
/// crowd), with one twist: the crowd additionally votes the honest top
/// moderator *down*.
///
/// The demotion matters: the adaptive rule keys on vote **dispersion**,
/// and a pure promotion attack (everyone `+M0`, nobody `−M0`) produces
/// unanimous per-moderator votes — zero dispersion — so adaptive-`T` nodes
/// would never raise their guard (a genuine blind spot of the §VII sketch,
/// recorded in EXPERIMENTS.md). A demoting crowd splits the votes on `M1`
/// and trips the detector.
pub fn run_adaptive_threshold(cfg: &SpamAttackConfig) -> AdaptiveOutcome {
    let crowd_size = *cfg.crowd_sizes.iter().max().expect("at least one size");
    let run_variant = |adaptive: Option<AdaptiveThreshold>, label: &str| -> (TimeSeries, f64) {
        let seed = cfg.base_seed;
        let trace = cfg.trace.generate(seed);
        let mut setup = fig8_setup(&trace, cfg.core_size, crowd_size);
        let m1 = setup.core.as_ref().expect("fig8 has a core").top_moderator;
        if let Some(crowd) = setup.crowd.as_mut() {
            crowd.demote = Some(m1);
        }
        let spam = NodeId::from_index(trace.peer_count());
        let protocol = ProtocolConfig {
            adaptive_t: adaptive,
            votes: rvs_core::VoteSamplingConfig {
                // Adaptive nodes must shed votes accepted while T was low.
                revalidate: adaptive.is_some(),
                ..cfg.protocol.votes
            },
            ..cfg.protocol
        };
        let mut system = System::new(trace, protocol, setup, seed);
        let mut series = TimeSeries::new(label);
        let end = SimTime::ZERO + cfg.duration;
        system.run_until(end, cfg.sample_every, |sys, now| {
            series.push(now, sys.new_node_pollution(spam));
        });
        let final_t = system
            .adaptive_thresholds()
            .map(|ts| {
                let n = system.trace_peer_count();
                ts[..n].iter().map(|a| a.t_mib).sum::<f64>() / n as f64
            })
            .unwrap_or(cfg.protocol.experience_t_mib);
        (series, final_t)
    };
    let (fixed, _) = run_variant(None, "fixed T");
    let (symmetric, _) = run_variant(
        Some(AdaptiveThreshold::symmetric(1.0)),
        "adaptive (symmetric)",
    );
    let (adaptive, final_t_mean_mib) =
        run_variant(Some(AdaptiveThreshold::default()), "adaptive (asym)");
    AdaptiveOutcome {
        fixed,
        symmetric,
        adaptive,
        final_t_mean_mib,
    }
}

/// A2 — one row of the `B_min`/`B_max` sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BallotParamRow {
    /// Bootstrap sample floor.
    pub b_min: usize,
    /// Ballot capacity in unique voters.
    pub b_max: usize,
    /// Final ordering accuracy.
    pub final_accuracy: f64,
    /// First sampled hour at which accuracy exceeded 0.5, if ever.
    pub hours_to_half: Option<f64>,
}

/// Run the A2 sweep on the Figure 6 scenario.
pub fn run_ballot_param_sweep(
    cfg: &VoteSamplingConfig,
    b_mins: &[usize],
    b_maxes: &[usize],
) -> Vec<BallotParamRow> {
    let combos: Vec<(usize, usize)> = b_mins
        .iter()
        .flat_map(|&lo| b_maxes.iter().map(move |&hi| (lo, hi)))
        .filter(|&(lo, hi)| lo <= hi)
        .collect();
    parallel_runs(combos.len(), default_threads(combos.len()), |c| {
        let (b_min, b_max) = combos[c];
        let seed = cfg.base_seed;
        let trace = cfg.trace.generate(seed);
        let (setup, m) = fig6_setup(&trace, cfg.positive_fraction, cfg.negative_fraction, seed);
        let protocol = ProtocolConfig {
            votes: rvs_core::VoteSamplingConfig {
                b_min,
                b_max,
                ..cfg.protocol.votes
            },
            ..cfg.protocol
        };
        let mut system = System::new(trace, protocol, setup, seed);
        let mut series = TimeSeries::new(format!("bmin={b_min} bmax={b_max}"));
        let end = SimTime::ZERO + cfg.duration;
        system.run_until(end, cfg.sample_every, |sys, now| {
            series.push(now, sys.ordering_accuracy(&m));
        });
        let final_accuracy = series.last().map(|s| s.value).unwrap_or(0.0);
        let hours_to_half = series
            .samples
            .iter()
            .find(|s| s.value > 0.5)
            .map(|s| s.time.as_hours_f64());
        BallotParamRow {
            b_min,
            b_max,
            final_accuracy,
            hours_to_half,
        }
    })
}

/// A3 — one row of the vote-list policy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// The selection policy evaluated.
    pub policy: VoteListPolicy,
    /// Final ordering accuracy.
    pub final_accuracy: f64,
    /// Time-weighted mean accuracy over the whole run — the
    /// discriminating statistic once every policy eventually converges.
    pub mean_accuracy: f64,
}

/// Run the A3 policy comparison on the Figure 6 scenario.
pub fn run_policy_sweep(cfg: &VoteSamplingConfig) -> Vec<PolicyRow> {
    let policies = [
        VoteListPolicy::Recency,
        VoteListPolicy::Random,
        VoteListPolicy::RecencyAndRandom,
    ];
    parallel_runs(policies.len(), default_threads(policies.len()), |k| {
        let policy = policies[k];
        let seed = cfg.base_seed;
        let trace = cfg.trace.generate(seed);
        let (setup, m) = fig6_setup(&trace, cfg.positive_fraction, cfg.negative_fraction, seed);
        let protocol = ProtocolConfig {
            votes: rvs_core::VoteSamplingConfig {
                policy,
                ..cfg.protocol.votes
            },
            ..cfg.protocol
        };
        let mut system = System::new(trace, protocol, setup, seed);
        let end = SimTime::ZERO + cfg.duration;
        let mut series = rvs_metrics::TimeSeries::new(format!("{policy:?}"));
        system.run_until(end, cfg.sample_every, |sys, now| {
            series.push(now, sys.ordering_accuracy(&m));
        });
        PolicyRow {
            policy,
            final_accuracy: series.last().map(|s| s.value).unwrap_or(0.0),
            mean_accuracy: rvs_metrics::time_mean(&series),
        }
    })
}

/// A4 — one row of the sampling-vs-aggregation comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationRow {
    /// Fraction of lying nodes.
    pub liar_fraction: f64,
    /// Ground-truth support among honest nodes.
    pub truth: f64,
    /// What epidemic averaging converges to (honest-node mean).
    pub epidemic_estimate: f64,
    /// What a BallotBox-style uniform sample of `B_max` voters estimates.
    pub ballot_estimate: f64,
}

/// Run the A4 comparison: epidemic aggregation vs direct sampling under
/// lying minorities.
pub fn run_aggregation_comparison(
    n: usize,
    true_support: f64,
    liar_fractions: &[f64],
    rounds: usize,
    b_max: usize,
    seed: u64,
) -> Vec<AggregationRow> {
    liar_fractions
        .iter()
        .map(|&lf| {
            // rvs-lint: allow(rng-fork-site) -- standalone ablation experiment: its own seed root per liar fraction, no System run shares the stream
            let mut rng = DetRng::new(seed).fork((lf * 1000.0) as u64);
            let n_liars = ((n as f64) * lf).round() as usize;
            let n_honest = n - n_liars;
            let n_support = ((n_honest as f64) * true_support).round() as usize;
            // Honest nodes 0..n_honest (first n_support support), liars at
            // the tail. Positions are irrelevant to both protocols.
            let initial: Vec<f64> = (0..n)
                .map(|i| if i < n_support { 1.0 } else { 0.0 })
                .collect();
            let liars: Vec<NodeId> = (n_honest..n).map(NodeId::from_index).collect();
            let mut epidemic = EpidemicAggregation::new(initial, liars.clone(), 1.0);
            epidemic.run(rounds, &mut rng);
            let epidemic_estimate = epidemic.honest_mean();

            // BallotBox analogue: one pollster samples b_max distinct
            // voters uniformly; liars contribute a positive vote each,
            // honest voters their true vote. One node, one vote.
            let sample = rng.sample_indices(n, b_max.min(n));
            let positive = sample
                .iter()
                .filter(|&&i| i >= n_honest || i < n_support)
                .count();
            let ballot_estimate = positive as f64 / sample.len() as f64;
            AggregationRow {
                liar_fraction: lf,
                truth: true_support,
                epidemic_estimate,
                ballot_estimate,
            }
        })
        .collect()
}

/// A5 — one row of the mole-attack leverage table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoleRow {
    /// KiB the mole genuinely uploaded to the victim.
    pub real_kib: u64,
    /// KiB each colluder claims to have uploaded to the mole.
    pub claimed_kib: u64,
    /// Largest apparent contribution of any single colluder.
    pub per_colluder_kib: u64,
    /// Summed apparent contribution of all colluders.
    pub total_kib: u64,
}

/// Run the A5 mole-leverage measurement for several genuine payments.
pub fn run_mole_leverage(real_kibs: &[u64], claimed_kib: u64, colluders: usize) -> Vec<MoleRow> {
    assert!(colluders >= 1);
    real_kibs
        .iter()
        .map(|&real_kib| {
            let victim = NodeId(0);
            let mole = NodeId(1);
            let ids: Vec<NodeId> = (2..2 + colluders as u32).map(NodeId).collect();
            let mut ledger = TransferLedger::new();
            ledger.credit(mole, victim, real_kib);
            let mut bc = BarterCast::new(2 + colluders, BarterCastConfig::default());
            bc.sync_own_records(victim, &ledger);
            let attack = MoleAttack::new(mole, ids, claimed_kib);
            attack.inject(&mut bc, victim);
            MoleRow {
                real_kib,
                claimed_kib,
                per_colluder_kib: attack.max_colluder_contribution_kib(&bc, victim),
                total_kib: attack.apparent_contribution_kib(&bc, victim),
            }
        })
        .collect()
}

/// A6 — VoxPopuli on/off: bootstrap speed (Figure 6 scenario accuracy
/// curves) with and without the bootstrap protocol.
pub fn run_voxpopuli_ablation(cfg: &VoteSamplingConfig) -> (TimeSeries, TimeSeries) {
    let variant = |vox_enabled: bool, label: &str| -> TimeSeries {
        let seed = cfg.base_seed;
        let trace = cfg.trace.generate(seed);
        let (setup, m) = fig6_setup(&trace, cfg.positive_fraction, cfg.negative_fraction, seed);
        let protocol = ProtocolConfig {
            vox_enabled,
            ..cfg.protocol
        };
        let mut system = System::new(trace, protocol, setup, seed);
        let mut series = TimeSeries::new(label);
        let end = SimTime::ZERO + cfg.duration;
        system.run_until(end, cfg.sample_every, |sys, now| {
            series.push(now, sys.ordering_accuracy(&m));
        });
        series
    };
    (
        variant(true, "VoxPopuli on"),
        variant(false, "VoxPopuli off"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_rows_show_lying_vulnerability() {
        let rows = run_aggregation_comparison(60, 0.2, &[0.0, 0.1], 150, 50, 3);
        assert_eq!(rows.len(), 2);
        let clean = rows[0];
        let attacked = rows[1];
        assert!((clean.epidemic_estimate - 0.2).abs() < 0.05);
        assert!(
            attacked.epidemic_estimate > 0.6,
            "10% liars should poison the epidemic average: {}",
            attacked.epidemic_estimate
        );
        // BallotBox sampling degrades only proportionally to the liar
        // share.
        assert!(
            (attacked.ballot_estimate - attacked.truth).abs() < 0.25,
            "sampling stays near truth: {}",
            attacked.ballot_estimate
        );
    }

    #[test]
    fn mole_rows_scale_with_real_payment() {
        let rows = run_mole_leverage(&[0, 1024, 4096], 1 << 30, 3);
        assert_eq!(rows[0].per_colluder_kib, 0);
        assert!(rows[1].per_colluder_kib <= 1024);
        assert!(rows[2].per_colluder_kib <= 4096);
        assert!(rows[2].per_colluder_kib >= rows[1].per_colluder_kib);
    }

    #[test]
    fn policy_sweep_produces_all_rows() {
        let cfg = VoteSamplingConfig::quick_demo(5);
        let rows = run_policy_sweep(&cfg);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.final_accuracy));
        }
    }

    #[test]
    fn ballot_sweep_filters_invalid_combos() {
        let cfg = VoteSamplingConfig::quick_demo(6);
        let rows = run_ballot_param_sweep(&cfg, &[2, 50], &[10]);
        // (50, 10) is invalid (b_min > b_max) and filtered.
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].b_min, rows[0].b_max), (2, 10));
    }
}
