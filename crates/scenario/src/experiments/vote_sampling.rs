//! Figure 6 — effectiveness of the vote-sampling system over time.
//!
//! Setup (paper §VI-B): "We set the first three nodes (M1, M2 and M3)
//! entering the system to be moderators and to spread a moderation related
//! to a .torrent file. We selected 10% of the population at random to
//! provide a positive vote for M1 and 10% to provide a negative vote for
//! M3. M2 gets no votes. Hence the correct ordering, based on the popular
//! vote, should be M1 > M2 > M3." BallotBox runs with `B_min = 5`,
//! `B_max = 100`; VoxPopuli with `V_max = 10`, `K = 3`.
//!
//! The measured quantity is the fraction of nodes whose displayed ranking
//! orders M1 > M2 > M3; the paper shows three typical single-trace runs
//! plus the average over 10 independent traces.

use crate::config::{ModeratorSpec, ProtocolConfig, ScenarioSetup, VoterSpec};
use crate::experiments::parallel::{default_threads, parallel_runs};
use crate::system::System;
use rvs_metrics::TimeSeries;
use rvs_modcast::{ContentQuality, LocalVote};
use rvs_sim::{DetRng, ModeratorId, NodeId, SimDuration, SimTime, SwarmId};
use rvs_telemetry::Snapshot;
use rvs_trace::{Trace, TraceGenConfig};

/// Configuration for the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct VoteSamplingConfig {
    /// Trace generator settings.
    pub trace: TraceGenConfig,
    /// Protocol tuning (defaults carry the paper's B_min/B_max/V_max/K).
    pub protocol: ProtocolConfig,
    /// Fraction voting `+` on M1 (paper: 0.10).
    pub positive_fraction: f64,
    /// Fraction voting `−` on M3 (paper: 0.10).
    pub negative_fraction: f64,
    /// Independent trace runs to average (paper: 10).
    pub runs: usize,
    /// Base seed; run `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Sampling interval of the accuracy curve.
    pub sample_every: SimDuration,
    /// Simulated span.
    pub duration: SimDuration,
    /// Shard count K for the scale-out engine (1 = monolithic). Purely a
    /// scheduling knob: K can never change results, so curves and
    /// counters are identical for any value.
    pub shards: usize,
    /// Run each trace under the invariant auditor and panic on any
    /// violation (used by the CI scale smoke; off by default because the
    /// auditor costs wall-clock).
    pub audit: bool,
}

impl VoteSamplingConfig {
    /// The paper's Figure 6 setup.
    pub fn paper() -> Self {
        VoteSamplingConfig {
            trace: TraceGenConfig::filelist_like(),
            protocol: ProtocolConfig::default(),
            positive_fraction: 0.10,
            negative_fraction: 0.10,
            runs: 10,
            base_seed: 100,
            sample_every: SimDuration::from_hours(2),
            duration: SimDuration::from_days(7),
            shards: 1,
            audit: false,
        }
    }

    /// A fast, scaled-down run for tests, the quickstart example, and the
    /// facade doctest. Uses a denser voter assignment so the tiny
    /// population still produces meaningful samples.
    pub fn quick_demo(seed: u64) -> Self {
        VoteSamplingConfig {
            trace: TraceGenConfig::quick(24, SimDuration::from_hours(36)),
            protocol: ProtocolConfig {
                experience_t_mib: 1.0,
                ..ProtocolConfig::default()
            },
            positive_fraction: 0.25,
            negative_fraction: 0.25,
            runs: 2,
            base_seed: seed,
            sample_every: SimDuration::from_hours(4),
            duration: SimDuration::from_hours(36),
            shards: 1,
            audit: false,
        }
    }
}

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct VoteSamplingOutcome {
    /// Per-run accuracy curves ("three typical runs" in the paper).
    pub typical: Vec<TimeSeries>,
    /// Point-wise mean over all runs.
    pub accuracy: TimeSeries,
    /// The moderators `[M1, M2, M3]` of the *first* run (ids differ per
    /// trace; exposed for inspection).
    pub moderators: [ModeratorId; 3],
    /// Per-protocol counters merged over all runs (phase timings stripped,
    /// so the outcome stays deterministic given the seed).
    pub telemetry: Snapshot,
}

/// Build the Figure 6 scenario cast for a given trace.
pub fn fig6_setup(
    trace: &Trace,
    positive_fraction: f64,
    negative_fraction: f64,
    seed: u64,
) -> (ScenarioSetup, [ModeratorId; 3]) {
    let order = trace.arrival_order();
    assert!(order.len() >= 6, "population too small for the Fig 6 cast");
    let m = [order[0], order[1], order[2]];
    let n_swarms = trace.swarms.len() as u32;
    let moderators = (0..3)
        .map(|k| ModeratorSpec {
            moderator: m[k],
            swarm: SwarmId(k as u32 % n_swarms),
            quality: ContentQuality::Genuine,
            publish_at: trace.peers[m[k].index()].arrival,
        })
        .collect();

    // Random voter assignment over the non-moderator population.
    // rvs-lint: allow(rng-fork-site) -- scenario construction: voter assignment is drawn before the System starts, from a root keyed only by the experiment seed
    let mut rng = DetRng::new(seed).fork(0xF166);
    let candidates: Vec<NodeId> = order.iter().copied().filter(|n| !m.contains(n)).collect();
    let n_pos = ((trace.peer_count() as f64) * positive_fraction).round() as usize;
    let n_neg = ((trace.peer_count() as f64) * negative_fraction).round() as usize;
    let picks = rng.sample_indices(candidates.len(), (n_pos + n_neg).min(candidates.len()));
    let mut voters = Vec::with_capacity(picks.len());
    for (k, idx) in picks.into_iter().enumerate() {
        let voter = candidates[idx];
        if k < n_pos {
            voters.push(VoterSpec {
                voter,
                moderator: m[0],
                vote: LocalVote::Approve,
            });
        } else {
            voters.push(VoterSpec {
                voter,
                moderator: m[2],
                vote: LocalVote::Disapprove,
            });
        }
    }
    (
        ScenarioSetup {
            moderators,
            voters,
            core: None,
            crowd: None,
        },
        m,
    )
}

/// Run one Figure 6 trace and return its accuracy curve plus the run's
/// counter snapshot (phase timings stripped — counters are deterministic
/// given the seed, wall-clock phases are not).
fn run_one(cfg: &VoteSamplingConfig, run: usize) -> (TimeSeries, [ModeratorId; 3], Snapshot) {
    let seed = cfg.base_seed + run as u64;
    let trace = cfg.trace.generate(seed);
    let (setup, m) = fig6_setup(&trace, cfg.positive_fraction, cfg.negative_fraction, seed);
    let mut system = System::new(trace, cfg.protocol, setup, seed);
    system.set_shards(cfg.shards);
    if cfg.audit {
        system.enable_audit();
    }
    let mut series = TimeSeries::new(format!("run {run}"));
    let end = SimTime::ZERO + cfg.duration;
    system.run_until(end, cfg.sample_every, |sys, now| {
        series.push(now, sys.ordering_accuracy(&m));
    });
    if cfg.audit {
        assert_eq!(
            system.audit_violations(),
            &[] as &[String],
            "invariant violations in run {run} (seed {seed})"
        );
    }
    let snapshot = system.telemetry_snapshot().counters_only();
    (series, m, snapshot)
}

/// Run the full Figure 6 experiment (parallel over traces).
pub fn run_vote_sampling(cfg: &VoteSamplingConfig) -> VoteSamplingOutcome {
    assert!(cfg.runs >= 1);
    let results = parallel_runs(cfg.runs, default_threads(cfg.runs), |r| run_one(cfg, r));
    let moderators = results[0].1;
    let telemetry = results
        .iter()
        .fold(Snapshot::default(), |acc, (_, _, snap)| acc.merged(snap));
    let typical: Vec<TimeSeries> = results.into_iter().map(|(s, _, _)| s).collect();
    let accuracy = TimeSeries::mean_over(format!("avg of {}", cfg.runs), &typical);
    VoteSamplingOutcome {
        typical,
        accuracy,
        moderators,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_cast_matches_paper_shape() {
        let trace = TraceGenConfig::quick(30, SimDuration::from_hours(24)).generate(9);
        let (setup, m) = fig6_setup(&trace, 0.1, 0.1, 9);
        assert_eq!(setup.moderators.len(), 3);
        assert_eq!(setup.moderators[0].moderator, m[0]);
        let pos = setup
            .voters
            .iter()
            .filter(|v| v.vote == LocalVote::Approve)
            .count();
        let neg = setup.voters.len() - pos;
        assert_eq!(pos, 3, "10% of 30");
        assert_eq!(neg, 3);
        // Voters vote on the right moderators and are not moderators.
        for v in &setup.voters {
            assert!(!m.contains(&v.voter));
            match v.vote {
                LocalVote::Approve => assert_eq!(v.moderator, m[0]),
                LocalVote::Disapprove => assert_eq!(v.moderator, m[2]),
            }
        }
    }

    #[test]
    fn voters_are_distinct() {
        let trace = TraceGenConfig::quick(40, SimDuration::from_hours(24)).generate(2);
        let (setup, _) = fig6_setup(&trace, 0.2, 0.2, 2);
        let mut ids: Vec<NodeId> = setup.voters.iter().map(|v| v.voter).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "a node holds at most one assignment");
    }

    #[test]
    fn quick_demo_converges_to_majority_accuracy() {
        let cfg = VoteSamplingConfig::quick_demo(42);
        let outcome = run_vote_sampling(&cfg);
        assert_eq!(outcome.typical.len(), 2);
        let last = outcome.accuracy.last().expect("non-empty");
        assert!(
            last.value > 0.5,
            "most nodes should order M1 > M2 > M3 by the end; got {}",
            last.value
        );
        // Accuracy starts near zero: nobody has votes or rankings yet.
        let first = outcome.accuracy.samples.first().unwrap();
        assert!(
            first.value < 0.3,
            "accuracy starts low, got {}",
            first.value
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let cfg = VoteSamplingConfig::quick_demo(7);
        let a = run_vote_sampling(&cfg);
        let b = run_vote_sampling(&cfg);
        assert_eq!(a, b);
    }
}
