//! Figure 8 — the flash-crowd spam attack.
//!
//! Setup (paper §VI-C): 30 nodes form a fixed experienced core converged
//! on a top moderator M1; a flash crowd of fresh identities joins and
//! promotes a spam moderator M0 — votes that the experience function makes
//! core and integrated nodes ignore, plus fabricated VoxPopuli top-K lists
//! that *do* reach bootstrapping newcomers, who "cannot distinguish core
//! nodes from other new nodes". The plot shows, per crowd size (1× and 2×
//! the core), the proportion of newly arrived normal nodes ranking M0 top.
//!
//! Expected shape: a 2×-core crowd defeats most new nodes for ≈24 hours
//! until their BitTorrent participation earns them `B_min` experienced
//! voters and the ballot path takes over; a 1× crowd only ever poisons a
//! minority; below 1× pollution stays at zero.

use crate::config::{CrowdSpec, ModeratorSpec, PreseededCore, ProtocolConfig, ScenarioSetup};
use crate::experiments::parallel::{default_threads, parallel_runs};
use crate::system::System;
use rvs_metrics::TimeSeries;
use rvs_modcast::ContentQuality;
use rvs_sim::{NodeId, SimDuration, SimTime, SwarmId};
use rvs_trace::{Trace, TraceGenConfig};

/// Configuration for the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct SpamAttackConfig {
    /// Trace generator settings.
    pub trace: TraceGenConfig,
    /// Protocol tuning.
    pub protocol: ProtocolConfig,
    /// Size of the fixed experienced core (paper: 30).
    pub core_size: usize,
    /// Crowd sizes to evaluate (paper: 30 and 60 — 1× and 2× core).
    pub crowd_sizes: Vec<usize>,
    /// Independent trace runs to average (paper: 10).
    pub runs: usize,
    /// Base seed; run `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Sampling interval of the pollution curve.
    pub sample_every: SimDuration,
    /// Simulated span (the interesting dynamics play out in 2–3 days).
    pub duration: SimDuration,
}

impl SpamAttackConfig {
    /// The paper's Figure 8 setup.
    pub fn paper() -> Self {
        SpamAttackConfig {
            trace: TraceGenConfig::filelist_like(),
            protocol: ProtocolConfig::default(),
            core_size: 30,
            crowd_sizes: vec![30, 60],
            runs: 10,
            base_seed: 500,
            sample_every: SimDuration::from_hours(2),
            duration: SimDuration::from_days(3),
        }
    }

    /// A scaled-down preset for tests and examples.
    pub fn quick(seed: u64) -> Self {
        SpamAttackConfig {
            trace: TraceGenConfig::quick(30, SimDuration::from_hours(36)),
            protocol: ProtocolConfig {
                experience_t_mib: 1.0,
                ..ProtocolConfig::default()
            },
            core_size: 8,
            crowd_sizes: vec![8, 16],
            runs: 2,
            base_seed: seed,
            sample_every: SimDuration::from_hours(4),
            duration: SimDuration::from_hours(36),
        }
    }
}

/// Build the Figure 8 scenario cast: pre-seeded core (the first
/// `core_size` arrivals, converged on M1 = the very first arrival) plus a
/// crowd of `crowd_size` identities joining at time zero.
pub fn fig8_setup(trace: &Trace, core_size: usize, crowd_size: usize) -> ScenarioSetup {
    let order = trace.arrival_order();
    assert!(
        order.len() > core_size,
        "population must exceed the core size"
    );
    let core_members: Vec<NodeId> = order.iter().copied().take(core_size).collect();
    let m1 = core_members[0];
    ScenarioSetup {
        moderators: vec![ModeratorSpec {
            moderator: m1,
            swarm: SwarmId(0),
            quality: ContentQuality::Genuine,
            publish_at: trace.peers[m1.index()].arrival,
        }],
        voters: Vec::new(),
        core: Some(PreseededCore {
            members: core_members,
            top_moderator: m1,
        }),
        crowd: Some(CrowdSpec::churning(crowd_size, SimTime::ZERO, SwarmId(0))),
    }
}

/// Pollution curves, one per crowd size, averaged over the runs.
pub fn run_spam_attack(cfg: &SpamAttackConfig) -> Vec<TimeSeries> {
    let jobs: Vec<(usize, usize)> = cfg
        .crowd_sizes
        .iter()
        .flat_map(|&size| (0..cfg.runs).map(move |r| (size, r)))
        .collect();
    let curves = parallel_runs(jobs.len(), default_threads(jobs.len()), |j| {
        let (crowd_size, run) = jobs[j];
        let seed = cfg.base_seed + run as u64;
        let trace = cfg.trace.generate(seed);
        let setup = fig8_setup(&trace, cfg.core_size, crowd_size);
        let spam = NodeId::from_index(trace.peer_count()); // M0: first crowd id
        let mut system = System::new(trace, cfg.protocol, setup, seed);
        let mut series = TimeSeries::new(format!("crowd={crowd_size} run={run}"));
        let end = SimTime::ZERO + cfg.duration;
        system.run_until(end, cfg.sample_every, |sys, now| {
            series.push(now, sys.new_node_pollution(spam));
        });
        series
    });
    // Average per crowd size, preserving crowd_sizes order.
    cfg.crowd_sizes
        .iter()
        .enumerate()
        .map(|(k, &size)| {
            let runs: Vec<TimeSeries> = curves[k * cfg.runs..(k + 1) * cfg.runs].to_vec();
            let factor = size as f64 / cfg.core_size as f64;
            TimeSeries::mean_over(format!("crowd={size} ({factor:.1}x core)"), &runs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_cast_shapes() {
        let trace = TraceGenConfig::quick(30, SimDuration::from_hours(24)).generate(3);
        let setup = fig8_setup(&trace, 8, 16);
        let core = setup.core.as_ref().unwrap();
        assert_eq!(core.members.len(), 8);
        assert_eq!(core.top_moderator, core.members[0]);
        assert_eq!(setup.crowd.unwrap().size, 16);
        assert_eq!(setup.moderators.len(), 1);
    }

    #[test]
    fn larger_crowds_pollute_more() {
        let cfg = SpamAttackConfig::quick(11);
        let curves = run_spam_attack(&cfg);
        assert_eq!(curves.len(), 2);
        let peak = |s: &TimeSeries| s.samples.iter().map(|p| p.value).fold(0.0_f64, f64::max);
        let small = peak(&curves[0]);
        let large = peak(&curves[1]);
        assert!(
            large >= small,
            "2x crowd should pollute at least as much as 1x: {small} vs {large}"
        );
        assert!(
            large > 0.0,
            "a 2x-core crowd must poison some bootstrapping nodes"
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let cfg = SpamAttackConfig::quick(13);
        assert_eq!(run_spam_attack(&cfg), run_spam_attack(&cfg));
    }
}
