//! Experiment harnesses reproducing the paper's evaluation (§VI) and the
//! discussion's proposed extensions (§VII).

pub mod ablations;
pub mod experience;
pub mod parallel;
pub mod spam;
pub mod vote_sampling;
