//! Fan independent simulation runs out across threads.
//!
//! Multi-run averages (the paper uses 10 runs per configuration) and
//! parameter sweeps are embarrassingly parallel: every run owns its whole
//! system state and shares nothing. All threading is delegated to
//! `rvs_sim::pool` — the single sanctioned home for thread fan-out in this
//! workspace (the lint gate's ambient-thread rule whitelists only that
//! module). Results come back in index order: thread scheduling never
//! affects results, only wall-clock time.

/// Execute `f(0..n)` across up to `max_threads` worker threads and return
/// the results in index order. `f` must be deterministic per index.
pub fn parallel_runs<T, F>(n: usize, max_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(max_threads > 0, "need at least one worker");
    rvs_sim::pool::run_indexed(n, max_threads, f)
}

/// Default worker count: the machine's parallelism, capped at the number
/// of runs.
pub fn default_threads(runs: usize) -> usize {
    rvs_sim::pool::available_threads().min(runs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_runs(16, 4, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let out = parallel_runs(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_threads_than_runs() {
        let out = parallel_runs(2, 16, |i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn zero_runs_yield_empty() {
        let out: Vec<usize> = parallel_runs(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        assert!(default_threads(100) >= 1);
        assert_eq!(default_threads(1), 1);
    }
}
