//! Figure 5 — experience formation — and the §VI dataset statistics
//! ("Table 1").
//!
//! The paper runs trace-based simulations and plots the Collective
//! Experience Value over the seven days for several thresholds `T`,
//! selecting `T = 5 MB` because ≈20% of ordered node pairs produce
//! experience within 12 hours while free-riders and rarely-online peers
//! keep the curve well below 1.0 even after a week.
//!
//! Contribution values `f_{j→i}` do not depend on `T`, so one simulation
//! yields every threshold's curve: we sample the full contribution matrix
//! on a fixed grid and threshold it per `T`.

use crate::config::{ProtocolConfig, ScenarioSetup};
use crate::experiments::parallel::{default_threads, parallel_runs};
use crate::system::System;
use rvs_metrics::TimeSeries;
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::{TraceGenConfig, TraceStats};

/// Configuration for the experience-formation experiment.
#[derive(Debug, Clone)]
pub struct ExperienceConfig {
    /// Trace generator settings.
    pub trace: TraceGenConfig,
    /// Trace seed ("a typical trace from the dataset").
    pub trace_seed: u64,
    /// Protocol tuning.
    pub protocol: ProtocolConfig,
    /// Thresholds to plot, MiB (paper sweeps several; selects 5 MB).
    pub thresholds_mib: Vec<f64>,
    /// Sampling interval for the CEV curve.
    pub sample_every: SimDuration,
    /// Simulated span (paper: the full 7-day trace).
    pub duration: SimDuration,
}

impl ExperienceConfig {
    /// The paper's Figure 5 setup.
    pub fn paper() -> Self {
        ExperienceConfig {
            trace: TraceGenConfig::filelist_like(),
            trace_seed: 1,
            protocol: ProtocolConfig::default(),
            thresholds_mib: vec![2.0, 5.0, 10.0, 20.0],
            sample_every: SimDuration::from_hours(2),
            duration: SimDuration::from_days(7),
        }
    }

    /// A scaled-down preset for tests and the quickstart example.
    pub fn quick(seed: u64) -> Self {
        ExperienceConfig {
            trace: TraceGenConfig::quick(20, SimDuration::from_hours(24)),
            trace_seed: seed,
            protocol: ProtocolConfig::default(),
            thresholds_mib: vec![2.0, 5.0],
            sample_every: SimDuration::from_hours(4),
            duration: SimDuration::from_hours(24),
        }
    }
}

/// Run the experience-formation experiment: one CEV time series per
/// threshold in [`ExperienceConfig::thresholds_mib`].
pub fn run_experience_formation(cfg: &ExperienceConfig) -> Vec<TimeSeries> {
    let trace = cfg.trace.generate(cfg.trace_seed);
    let n = trace.peer_count();
    let mut system = System::new(
        trace,
        cfg.protocol,
        ScenarioSetup::default(),
        cfg.trace_seed,
    );
    let mut series: Vec<TimeSeries> = cfg
        .thresholds_mib
        .iter()
        .map(|t| TimeSeries::new(format!("T={t}MB")))
        .collect();
    let thresholds = cfg.thresholds_mib.clone();
    let peers: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let end = SimTime::ZERO + cfg.duration;
    system.run_until(end, cfg.sample_every, |sys, now| {
        // One pass over the contribution matrix covers every threshold;
        // each evaluator's row goes through the batched cache path (one
        // reconciliation per row instead of per pair).
        let mut counts = vec![0u64; thresholds.len()];
        for (i, &evaluator) in peers.iter().enumerate() {
            let row = sys.bartercast().contributions_mib(evaluator, &peers);
            for (j, &f) in row.iter().enumerate() {
                if i == j {
                    continue;
                }
                for (k, &t) in thresholds.iter().enumerate() {
                    if f >= t {
                        counts[k] += 1;
                    }
                }
            }
        }
        let pairs = (n * (n - 1)) as f64;
        for (k, s) in series.iter_mut().enumerate() {
            s.push(now, counts[k] as f64 / pairs);
        }
    });
    series
}

/// Regenerate the dataset statistics the paper quotes for its 10 traces
/// (≈23k events each, ~50% average online, ~25% free-riders): generates
/// `n_traces` traces in parallel and returns per-trace stats plus the mean.
pub fn dataset_statistics(
    cfg: &TraceGenConfig,
    n_traces: usize,
    base_seed: u64,
) -> (Vec<TraceStats>, TraceStats) {
    let per_trace = parallel_runs(n_traces, default_threads(n_traces), |i| {
        TraceStats::compute(&cfg.generate(base_seed + i as u64))
    });
    let mean = TraceStats::mean_over(&per_trace);
    (per_trace, mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cev_curves_are_monotone_in_threshold() {
        let cfg = ExperienceConfig::quick(3);
        let series = run_experience_formation(&cfg);
        assert_eq!(series.len(), 2);
        // At every sample, CEV(T=2) >= CEV(T=5).
        for (lo, hi) in series[0].samples.iter().zip(series[1].samples.iter()) {
            assert!(
                lo.value >= hi.value - 1e-12,
                "lower threshold must dominate: {} vs {}",
                lo.value,
                hi.value
            );
        }
    }

    #[test]
    fn cev_grows_over_time() {
        let cfg = ExperienceConfig::quick(4);
        let series = run_experience_formation(&cfg);
        let s = &series[0];
        assert!(s.len() >= 3);
        let first = s.samples.first().unwrap().value;
        let last = s.samples.last().unwrap().value;
        assert!(
            last > first,
            "experience should form over a day: {first} -> {last}"
        );
        assert!(last > 0.0, "some pairs must become experienced");
        assert!(last <= 1.0);
    }

    #[test]
    fn experiment_is_deterministic() {
        let cfg = ExperienceConfig::quick(5);
        assert_eq!(
            run_experience_formation(&cfg),
            run_experience_formation(&cfg)
        );
    }

    #[test]
    fn dataset_statistics_aggregates() {
        let cfg = TraceGenConfig::quick(10, SimDuration::from_hours(12));
        let (per, mean) = dataset_statistics(&cfg, 4, 7);
        assert_eq!(per.len(), 4);
        assert_eq!(mean.unique_peers, 10);
    }
}
