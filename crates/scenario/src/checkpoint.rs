//! Checkpoint container: the serialized form of a paused [`crate::System`].
//!
//! A [`Checkpoint`] is a self-contained byte blob — seed, configuration,
//! scenario cast, trace, and every layer of protocol state — produced by
//! [`crate::System::checkpoint`] and consumed by [`crate::System::restore`].
//! Resuming from one is byte-identical to never having stopped (proven by
//! `tests/checkpoint_differential.rs`). The format is versioned
//! ([`rvs_checkpoint::FORMAT_VERSION`]); layout and versioning policy are
//! documented in DESIGN.md §12.

use rvs_checkpoint::{peek_version, DecodeError};
use rvs_sim::SimTime;
use std::fmt;
use std::io;
use std::path::Path;

/// A serialized [`crate::System`] snapshot.
///
/// The blob always starts with the format header (magic + version) followed
/// by the identity fields ([`CheckpointInfo`]); the rest is the sectioned
/// system state. Construction goes through [`crate::System::checkpoint`] or
/// [`Checkpoint::from_bytes`] — both guarantee a well-formed header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub(crate) bytes: Vec<u8>,
}

/// Header-level summary of a checkpoint, cheap to read (no full decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Format version the blob was written with.
    pub version: u32,
    /// The run's seed (every RNG stream derives from it).
    pub seed: u64,
    /// Simulation time at which the snapshot was taken.
    pub now: SimTime,
    /// Peers in the underlying trace.
    pub trace_peers: usize,
    /// Total nodes including any flash crowd.
    pub total_nodes: usize,
    /// Size of the whole blob in bytes.
    pub bytes: usize,
}

impl fmt::Display for CheckpointInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "format version : {}", self.version)?;
        writeln!(f, "seed           : {}", self.seed)?;
        writeln!(f, "simulated time : {}", self.now)?;
        writeln!(f, "trace peers    : {}", self.trace_peers)?;
        writeln!(f, "total nodes    : {}", self.total_nodes)?;
        write!(f, "size           : {} bytes", self.bytes)
    }
}

impl Checkpoint {
    /// Wrap raw bytes read from elsewhere, validating the magic bytes and
    /// the identity prefix. Version skew is *not* rejected here — so
    /// `rvs ckpt inspect` can summarize foreign files — only by
    /// [`crate::System::restore`], which needs the full format to match.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Checkpoint, DecodeError> {
        let ckpt = Checkpoint { bytes };
        ckpt.peek_info()?;
        Ok(ckpt)
    }

    /// The serialized blob.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the checkpoint, yielding the blob.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Decode the header-level summary without decoding the full state.
    ///
    /// Works on any version whose identity prefix matches (the prefix is
    /// frozen across versions precisely so `inspect` keeps working), but
    /// reports [`DecodeError::WrongVersion`] for blobs this build cannot
    /// restore.
    pub fn info(&self) -> Result<CheckpointInfo, DecodeError> {
        let version = peek_version(&self.bytes)?;
        let mut dec = rvs_checkpoint::Decoder::new(&self.bytes);
        rvs_checkpoint::read_header(&mut dec)?;
        let seed = dec.u64()?;
        let now = rvs_checkpoint::Persist::restore(&mut dec)?;
        let trace_peers = dec.usize()?;
        let total_nodes = dec.usize()?;
        Ok(CheckpointInfo {
            version,
            seed,
            now,
            trace_peers,
            total_nodes,
            bytes: self.bytes.len(),
        })
    }

    /// Like [`Checkpoint::info`], but tolerant of future format versions:
    /// returns the summary even when [`crate::System::restore`] would
    /// refuse the blob. Only the magic bytes and identity prefix must
    /// parse.
    pub fn peek_info(&self) -> Result<CheckpointInfo, DecodeError> {
        let version = peek_version(&self.bytes)?;
        let mut dec = rvs_checkpoint::Decoder::new(&self.bytes);
        // Skip magic + version (already validated by peek_version).
        dec.take(rvs_checkpoint::MAGIC.len())?;
        dec.u32()?;
        let seed = dec.u64()?;
        let now = rvs_checkpoint::Persist::restore(&mut dec)?;
        let trace_peers = dec.usize()?;
        let total_nodes = dec.usize()?;
        Ok(CheckpointInfo {
            version,
            seed,
            now,
            trace_peers,
            total_nodes,
            bytes: self.bytes.len(),
        })
    }

    /// Write the blob to `path` (atomically: temp file + rename, so a
    /// crash mid-write never leaves a torn checkpoint behind).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &self.bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Read a checkpoint from `path`, validating header and identity
    /// fields.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        Checkpoint::from_bytes(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Seeds of the committed golden checkpoint corpus under `tests/golden/`.
pub const GOLDEN_SEEDS: [u64; 2] = [1, 2];

/// Simulated hours the golden run advances before the snapshot is taken.
pub const GOLDEN_HOURS: u64 = 2;

/// File name of the committed golden checkpoint for `seed`.
pub fn golden_file_name(seed: u64) -> String {
    format!("fig6-seed{seed}.ckpt")
}

/// The canonical small fixed-seed Figure-6 run the golden corpus snapshots:
/// 12 peers, a 6-hour quick trace, experience threshold 1 MiB, advanced
/// [`GOLDEN_HOURS`] simulated hours. `rvs ckpt regen` rebuilds the corpus
/// from this single definition; the forward-compat test restores the
/// committed blobs against the current build and re-encodes them
/// byte-identically.
pub fn golden_system(seed: u64) -> crate::System {
    let trace =
        rvs_trace::TraceGenConfig::quick(12, rvs_sim::SimDuration::from_hours(6)).generate(seed);
    let (setup, _) = crate::experiments::vote_sampling::fig6_setup(&trace, 0.25, 0.25, seed);
    let cfg = crate::ProtocolConfig {
        experience_t_mib: 1.0,
        ..crate::ProtocolConfig::default()
    };
    let mut system = crate::System::new(trace, cfg, setup, seed);
    system.run_until(
        SimTime::from_hours(GOLDEN_HOURS),
        rvs_sim::SimDuration::from_hours(1),
        |_, _| {},
    );
    system
}

/// The golden checkpoint for `seed` — [`golden_system`] snapshotted.
pub fn golden_checkpoint(seed: u64) -> Checkpoint {
    golden_system(seed).checkpoint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(matches!(
            Checkpoint::from_bytes(vec![0u8; 64]),
            Err(DecodeError::Corrupt(_))
        ));
        assert!(matches!(
            Checkpoint::from_bytes(Vec::new()),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn info_rejects_wrong_version_but_peek_reads_it() {
        let mut enc = rvs_checkpoint::Encoder::new();
        enc.raw(&rvs_checkpoint::MAGIC);
        enc.u32(rvs_checkpoint::FORMAT_VERSION + 1);
        enc.u64(42); // seed
        enc.u64(0); // SimTime millis
        enc.usize(10);
        enc.usize(12);
        let ckpt = Checkpoint {
            bytes: enc.into_bytes(),
        };
        assert!(matches!(ckpt.info(), Err(DecodeError::WrongVersion { .. })));
        let peeked = ckpt.peek_info().expect("identity prefix parses");
        assert_eq!(peeked.version, rvs_checkpoint::FORMAT_VERSION + 1);
        assert_eq!(peeked.seed, 42);
        assert_eq!(peeked.trace_peers, 10);
        assert_eq!(peeked.total_nodes, 12);
    }
}
