//! Full-system wiring and the paper's experiments.
//!
//! [`System`] assembles every substrate — trace-driven churn, piece-level
//! BitTorrent swarms, the PSS, BarterCast, ModerationCast, and the
//! BallotBox/VoxPopuli vote sampling — into one deterministic simulation,
//! with moderators, voter assignments, pre-seeded experienced cores, and
//! flash crowds configured per scenario.
//!
//! The [`experiments`] module reproduces the paper's evaluation:
//!
//! * [`experiments::experience`] — Figure 5 (CEV vs time for thresholds T)
//!   and the §VI dataset statistics ("Table 1");
//! * [`experiments::vote_sampling`] — Figure 6 (vote-sampling
//!   effectiveness over time, typical runs + 10-run average);
//! * [`experiments::spam`] — Figure 8 (flash-crowd pollution for crowd
//!   sizes relative to the core);
//! * [`experiments::ablations`] — adaptive-T, `B_min`/`B_max` sweeps,
//!   vote-list policies, epidemic-aggregation baseline, mole attack, and
//!   VoxPopuli on/off.

pub mod audit;
pub mod checkpoint;
pub mod config;
pub mod experiments;
pub mod system;

pub use audit::Auditor;
pub use checkpoint::{Checkpoint, CheckpointInfo};
pub use config::{
    CrowdSpec, ModeratorSpec, PreseededCore, ProtocolConfig, ScenarioSetup, VoterSpec,
};
pub use experiments::experience::{run_experience_formation, ExperienceConfig};
pub use experiments::spam::{run_spam_attack, SpamAttackConfig};
pub use experiments::vote_sampling::{run_vote_sampling, VoteSamplingConfig, VoteSamplingOutcome};
pub use system::System;
