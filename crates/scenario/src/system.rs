//! The assembled system: every substrate wired together and driven by a
//! trace.

use crate::audit::Auditor;
use crate::config::{ProtocolConfig, ScenarioSetup};
use rvs_attacks::FlashCrowd;
use rvs_bartercast::{AdaptiveThreshold, BarterCast};
use rvs_bittorrent::BitTorrentNet;
use rvs_core::{BallotBox, VoteEntry, VoteSampling};
use rvs_metrics::{collective_experience_value, correct_ordering_fraction, pollution_fraction};
use rvs_modcast::{KeyRegistry, LocalVote, ModerationCast};
use rvs_pss::{NewscastConfig, NewscastPss, OraclePss, PeerSampler};
use rvs_sim::{DetRng, ModeratorId, NodeId, SimTime};
use rvs_telemetry::{EncounterCounters, PhaseTimer, Snapshot};
use rvs_trace::{Trace, TraceEventKind};
use std::collections::BTreeSet;

/// Evaluator nodes whose contribution caches are coherence-sampled per
/// audited gossip round.
const AUDIT_CACHE_NODES_PER_ROUND: usize = 2;
/// Cached `(i, j)` pairs re-derived per sampled evaluator.
const AUDIT_CACHE_PAIRS_PER_NODE: usize = 2;

/// Number of vote entries `voter` currently holds in `ballot`.
fn votes_from(ballot: &BallotBox, voter: NodeId) -> usize {
    ballot.iter().filter(|&(v, _, _, _)| v == voter).count()
}

/// The peer sampling service in use.
enum Pss {
    Oracle(OraclePss),
    Newscast(NewscastPss),
}

impl Pss {
    fn set_online(&mut self, peer: NodeId, introducer: Option<NodeId>, now: SimTime) {
        match self {
            Pss::Oracle(o) => o.set_online(peer),
            Pss::Newscast(n) => n.set_online(peer, introducer, now),
        }
    }
    fn set_offline(&mut self, peer: NodeId) {
        match self {
            Pss::Oracle(o) => o.set_offline(peer),
            Pss::Newscast(n) => n.set_offline(peer),
        }
    }
    fn sample(&mut self, requester: NodeId, rng: &mut DetRng) -> Option<NodeId> {
        match self {
            Pss::Oracle(o) => o.sample(requester, rng),
            Pss::Newscast(n) => n.sample(requester, rng),
        }
    }
    fn gossip_round(&mut self, now: SimTime, rng: &mut DetRng) {
        if let Pss::Newscast(n) = self {
            n.gossip_round(now, rng);
        }
    }
}

/// The fully wired simulation.
pub struct System {
    cfg: ProtocolConfig,
    setup: ScenarioSetup,
    trace: Trace,
    n_trace: usize,
    n_total: usize,

    net: BitTorrentNet,
    pss: Pss,
    bc: BarterCast,
    mc: ModerationCast,
    registry: KeyRegistry,
    vs: VoteSampling,

    crowd: Option<FlashCrowd>,
    crowd_activated: bool,
    crowd_online: Vec<bool>,
    core_members: BTreeSet<NodeId>,
    adaptive: Option<Vec<AdaptiveThreshold>>,

    published: Vec<bool>,
    vote_cast: Vec<bool>,

    now: SimTime,
    next_event: usize,
    next_gossip: SimTime,
    rng_bt: DetRng,
    rng_gossip: DetRng,
    rng_pss: DetRng,
    // Dedicated stream for audit sampling so enabling the auditor never
    // perturbs protocol randomness.
    rng_audit: DetRng,

    enc: EncounterCounters,
    timer: PhaseTimer,
    audit: Option<Auditor>,
}

impl System {
    /// Assemble a system for `trace` with the given scenario cast.
    pub fn new(trace: Trace, cfg: ProtocolConfig, setup: ScenarioSetup, seed: u64) -> System {
        let n_trace = trace.peer_count();
        let crowd_size = setup.crowd.map(|c| c.size).unwrap_or(0);
        let n_total = n_trace + crowd_size;
        let root = DetRng::new(seed);

        let net = BitTorrentNet::new(&trace, cfg.net);
        let pss = if cfg.use_newscast_pss {
            Pss::Newscast(NewscastPss::new(n_total, NewscastConfig::default()))
        } else {
            Pss::Oracle(OraclePss::new(n_total))
        };
        let bc = BarterCast::new(n_total, cfg.bartercast);
        let mut mc = ModerationCast::new(n_total, cfg.modcast);
        let registry = KeyRegistry::new(n_total, seed ^ 0x5EED);
        let mut vs = VoteSampling::new(n_total, cfg.votes);

        // The flash crowd occupies ids n_trace..n_total; its first member
        // doubles as the spam moderator M0.
        let crowd = setup.crowd.map(|spec| {
            assert!(spec.size > 0, "crowd must have at least one member");
            let members: Vec<NodeId> = (n_trace..n_total).map(NodeId::from_index).collect();
            FlashCrowd::new(
                members,
                NodeId::from_index(n_trace),
                spec.demote,
                spec.join_at,
            )
        });

        // Pre-seeded experienced core: converged on its top moderator.
        let mut core_members = BTreeSet::new();
        if let Some(core) = &setup.core {
            core_members.extend(core.members.iter().copied());
            let t0 = SimTime::ZERO;
            for &i in &core.members {
                mc.set_opinion(i, core.top_moderator, LocalVote::Approve, t0);
            }
            let entry = VoteEntry {
                moderator: core.top_moderator,
                vote: rvs_core::Vote::Positive,
                made_at: t0,
            };
            for &i in &core.members {
                for &j in &core.members {
                    if i != j {
                        vs.ballot_mut(i).merge(j, &[entry], t0);
                    }
                }
            }
        }

        let adaptive = cfg.adaptive_t.map(|a| vec![a; n_total]);
        let n_moderators = setup.moderators.len();
        let n_voters = setup.voters.len();

        System {
            cfg,
            setup,
            trace,
            n_trace,
            n_total,
            net,
            pss,
            bc,
            mc,
            registry,
            vs,
            crowd,
            crowd_activated: false,
            crowd_online: vec![false; crowd_size],
            core_members,
            adaptive,
            published: vec![false; n_moderators],
            vote_cast: vec![false; n_voters],
            now: SimTime::ZERO,
            next_event: 0,
            next_gossip: SimTime::ZERO,
            rng_bt: root.fork(1),
            rng_gossip: root.fork(2),
            rng_pss: root.fork(3),
            rng_audit: root.fork(4),
            enc: EncounterCounters::default(),
            timer: PhaseTimer::new(),
            audit: None,
        }
    }

    /// Switch on runtime invariant auditing (idempotent). The [`Auditor`]
    /// re-checks conservation and protocol invariants after every
    /// encounter; enabling it never changes protocol behaviour.
    pub fn enable_audit(&mut self) {
        if self.audit.is_none() {
            self.audit = Some(Auditor::new());
        }
    }

    /// The auditor, when auditing is enabled.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.audit.as_ref()
    }

    /// Violations recorded so far — empty when auditing is off or clean.
    pub fn audit_violations(&self) -> &[String] {
        self.audit.as_ref().map(Auditor::violations).unwrap_or(&[])
    }

    /// A mergeable snapshot of every protocol layer's counters plus this
    /// system's wall-clock phase timings.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        Snapshot {
            encounters: self.enc.clone(),
            moderation: self.mc.counters().clone(),
            votes: self.vs.counters().clone(),
            voxpopuli: self.vs.vox_counters().clone(),
            barter: self.bc.counters(),
            pss: match &self.pss {
                Pss::Newscast(n) => n.counters().clone(),
                Pss::Oracle(_) => Default::default(),
            },
            phase_nanos: self.timer.phases().clone(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of peers in the underlying trace.
    pub fn trace_peer_count(&self) -> usize {
        self.n_trace
    }

    /// Total nodes including any flash crowd.
    pub fn total_nodes(&self) -> usize {
        self.n_total
    }

    /// The trace driving the run.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The BitTorrent substrate.
    pub fn net(&self) -> &BitTorrentNet {
        &self.net
    }

    /// The BarterCast state.
    pub fn bartercast(&self) -> &BarterCast {
        &self.bc
    }

    /// The ModerationCast state.
    pub fn modcast(&self) -> &ModerationCast {
        &self.mc
    }

    /// The vote-sampling state.
    pub fn votes(&self) -> &VoteSampling {
        &self.vs
    }

    /// The flash crowd, if any.
    pub fn crowd(&self) -> Option<&FlashCrowd> {
        self.crowd.as_ref()
    }

    /// Is `node` online right now (trace churn for trace peers, duty cycle
    /// for crowd identities)?
    pub fn is_online(&self, node: NodeId) -> bool {
        if node.index() < self.n_trace {
            self.net.is_online(node)
        } else {
            self.crowd_online
                .get(node.index() - self.n_trace)
                .copied()
                .unwrap_or(false)
        }
    }

    fn is_crowd(&self, node: NodeId) -> bool {
        self.crowd
            .as_ref()
            .map(|c| c.is_member(node))
            .unwrap_or(false)
    }

    /// The experience predicate `E_i(j)` as node `i` evaluates it —
    /// always computed from `i`'s own BarterCast graph, even for the
    /// pre-seeded core: a *new* node has downloaded nothing yet, so nobody
    /// (core included) is experienced towards it until it participates in
    /// swarms. That asymmetry is what opens the Figure 8 bootstrap window.
    pub fn experienced(&self, i: NodeId, j: NodeId) -> bool {
        let t = match &self.adaptive {
            Some(per_node) => per_node[i.index()].t_mib,
            None => self.cfg.experience_t_mib,
        };
        self.bc.contribution_mib(i, j) >= t
    }

    /// Batched `E_i(j)` for one evaluator against many peers. Reconciles
    /// `i`'s contribution cache once for the whole sweep, so round-level
    /// gating over a candidate set costs one cache pass plus the misses.
    pub fn experienced_batch(&self, i: NodeId, peers: &[NodeId]) -> Vec<bool> {
        let t = match &self.adaptive {
            Some(per_node) => per_node[i.index()].t_mib,
            None => self.cfg.experience_t_mib,
        };
        self.bc
            .contributions_mib(i, peers)
            .into_iter()
            .map(|f| f >= t)
            .collect()
    }

    /// Contribution `f_{j→i}` in MiB for an explicit threshold sweep.
    pub fn contribution_mib(&self, i: NodeId, j: NodeId) -> f64 {
        self.bc.contribution_mib(i, j)
    }

    /// CEV over the trace population for threshold `t_mib` (Figure 5).
    /// Sweeps each evaluator's row through the batched cache path.
    pub fn cev(&self, t_mib: f64) -> f64 {
        let peers: Vec<NodeId> = (0..self.n_trace).map(NodeId::from_index).collect();
        let rows: Vec<Vec<f64>> = peers
            .iter()
            .map(|&i| self.bc.contributions_mib(i, &peers))
            .collect();
        collective_experience_value(self.n_trace, |i, j| rows[i.index()][j.index()] >= t_mib)
    }

    /// The ranking node `i` would display to its user: the VoxPopuli merge
    /// while bootstrapping, ballot statistics (unioned with moderators
    /// known from its local database) afterwards.
    pub fn display_ranking(&self, i: NodeId) -> Vec<ModeratorId> {
        self.vs.ranking_with_known(i, &self.mc).ranked
    }

    /// Fraction of trace nodes whose displayed ranking orders `expected`
    /// correctly (Figure 6).
    pub fn ordering_accuracy(&self, expected: &[ModeratorId]) -> f64 {
        let rankings: Vec<Vec<ModeratorId>> = (0..self.n_trace)
            .map(|i| self.display_ranking(NodeId::from_index(i)))
            .collect();
        correct_ordering_fraction(rankings.iter().map(|r| r.as_slice()), expected)
    }

    /// Fraction of *newly arrived honest* nodes (trace peers outside the
    /// pre-seeded core that have arrived by now) ranking `spam` top
    /// (Figure 8).
    pub fn new_node_pollution(&self, spam: ModeratorId) -> f64 {
        let rankings: Vec<Vec<ModeratorId>> = (0..self.n_trace)
            .map(NodeId::from_index)
            .filter(|n| !self.core_members.contains(n))
            .filter(|n| self.trace.peers[n.index()].arrival <= self.now)
            .map(|n| self.display_ranking(n))
            .collect();
        pollution_fraction(rankings.iter().map(|r| r.as_slice()), spam)
    }

    /// Advance the simulation to `end`, invoking `observer` every
    /// `sample_every` of simulated time (and once at the end).
    pub fn run_until(
        &mut self,
        end: SimTime,
        sample_every: rvs_sim::SimDuration,
        mut observer: impl FnMut(&System, SimTime),
    ) {
        let mut next_sample = self.now;
        while self.now < end {
            self.step();
            if self.now >= next_sample {
                observer(self, self.now);
                next_sample = self.now + sample_every;
            }
        }
        observer(self, end);
    }

    /// One simulation tick: trace events, BitTorrent transfers, crowd
    /// churn, and (when due) a protocol gossip round.
    pub fn step(&mut self) {
        // Trace events at or before the current tick.
        while self.next_event < self.trace.events.len()
            && self.trace.events[self.next_event].time <= self.now
        {
            let ev = self.trace.events[self.next_event];
            self.next_event += 1;
            self.net.apply_event(&ev, self.now);
            match ev.kind {
                TraceEventKind::Online => {
                    let introducer = self.any_online_except(ev.peer);
                    self.pss.set_online(ev.peer, introducer, self.now);
                }
                TraceEventKind::Offline => self.pss.set_offline(ev.peer),
                TraceEventKind::StartDownload { .. } => {}
            }
        }
        self.timer.start("bittorrent");
        self.net.tick(self.now, &mut self.rng_bt);
        self.timer.stop();
        self.update_crowd();
        if self.now >= self.next_gossip {
            self.timer.start("gossip");
            self.gossip_round();
            self.timer.stop();
            self.next_gossip = self.now + self.cfg.gossip_every;
        }
        self.now += self.cfg.net.tick;
    }

    fn any_online_except(&self, except: NodeId) -> Option<NodeId> {
        (0..self.n_total)
            .map(NodeId::from_index)
            .find(|&n| n != except && self.is_online(n))
    }

    /// Crowd activation and duty-cycle churn.
    fn update_crowd(&mut self) {
        let Some(crowd) = &self.crowd else { return };
        let spec = self.setup.crowd.expect("crowd spec exists");
        if self.now < spec.join_at {
            return;
        }
        if !self.crowd_activated {
            self.crowd_activated = true;
            // M0 publishes its spam moderation; every member approves it
            // (so they all forward it) and optionally votes the honest top
            // moderator down.
            let m0 = crowd.spam_moderator();
            self.mc.publish(
                &self.registry,
                m0,
                spec.spam_swarm,
                rvs_modcast::ContentQuality::Spam,
                self.now,
            );
            let members: Vec<NodeId> = crowd.members().collect();
            for &m in &members {
                self.mc.set_opinion(m, m0, LocalVote::Approve, self.now);
                if let Some(target) = spec.demote {
                    self.mc
                        .set_opinion(m, target, LocalVote::Disapprove, self.now);
                }
            }
        }
        // Deterministic staggered duty cycle.
        let period = spec.churn_period.as_millis().max(1);
        let since = (self.now - spec.join_at).as_millis();
        for idx in 0..self.crowd_online.len() {
            let offset = (idx as u64 * period) / self.crowd_online.len().max(1) as u64;
            let phase = ((since + offset) % period) as f64 / period as f64;
            let online = phase < spec.duty_cycle;
            if online != self.crowd_online[idx] {
                self.crowd_online[idx] = online;
                let node = NodeId::from_index(self.n_trace + idx);
                if online {
                    let introducer = self.any_online_except(node);
                    self.pss.set_online(node, introducer, self.now);
                } else {
                    self.pss.set_offline(node);
                }
            }
        }
    }

    /// One protocol gossip round over every online node.
    fn gossip_round(&mut self) {
        self.pss.gossip_round(self.now, &mut self.rng_pss);
        self.publish_due_moderations();
        self.cast_due_votes();
        for idx in 0..self.n_total {
            let i = NodeId::from_index(idx);
            if !self.is_online(i) {
                continue;
            }
            self.enc.attempted += 1;
            let Some(j) = self.pss.sample(i, &mut self.rng_pss) else {
                self.enc.dropped_no_sample += 1;
                continue;
            };
            if i == j {
                self.enc.dropped_self_target += 1;
                continue;
            }
            // Contacting an offline peer fails (stale PSS views).
            if !self.is_online(j) {
                self.enc.dropped_offline_target += 1;
                continue;
            }
            // Failure injection: the whole encounter may be lost.
            if self.cfg.message_loss > 0.0 && self.rng_gossip.chance(self.cfg.message_loss) {
                self.enc.dropped_message_loss += 1;
                continue;
            }
            self.encounter(i, j);
            self.enc.delivered += 1;
        }
        if self.adaptive.is_some() {
            self.observe_dispersion();
        }
        if let Some(aud) = &mut self.audit {
            let e = &self.enc;
            let now = self.now;
            let accounted = e.delivered
                + e.dropped_no_sample
                + e.dropped_offline_target
                + e.dropped_self_target
                + e.dropped_message_loss;
            aud.check(e.attempted == accounted, || {
                format!("encounter conservation broken at {now}: {e:?}")
            });
            // Sampled cache coherence: pick a few evaluators, re-derive a
            // random subset of their cached contributions from scratch, and
            // demand byte-identical values.
            for _ in 0..AUDIT_CACHE_NODES_PER_ROUND {
                let node = NodeId::from_index(self.rng_audit.index(self.n_total));
                let violations = self.bc.audit_cache_coherence(
                    node,
                    AUDIT_CACHE_PAIRS_PER_NODE,
                    &mut self.rng_audit,
                );
                aud.check(violations.is_empty(), || {
                    format!("at {now}: {}", violations.join("; "))
                });
            }
        }
    }

    fn publish_due_moderations(&mut self) {
        for (k, spec) in self.setup.moderators.clone().into_iter().enumerate() {
            if !self.published[k] && spec.publish_at <= self.now && self.is_online(spec.moderator) {
                self.mc.publish(
                    &self.registry,
                    spec.moderator,
                    spec.swarm,
                    spec.quality,
                    self.now,
                );
                self.published[k] = true;
            }
        }
    }

    fn cast_due_votes(&mut self) {
        for (k, spec) in self.setup.voters.clone().into_iter().enumerate() {
            if self.vote_cast[k] {
                continue;
            }
            // A voter casts only once it has received one of the
            // moderator's items via dissemination.
            if self.mc.db(spec.voter).has_items_from(spec.moderator) {
                self.mc
                    .set_opinion(spec.voter, spec.moderator, spec.vote, self.now);
                self.vote_cast[k] = true;
            }
        }
    }

    /// A full protocol encounter between online nodes `i` (active) and `j`.
    fn encounter(&mut self, i: NodeId, j: NodeId) {
        // BarterCast: refresh own records, then swap them.
        self.bc.sync_own_records(i, self.net.ledger());
        self.bc.sync_own_records(j, self.net.ledger());
        self.bc.exchange(i, j);

        // ModerationCast push/pull.
        self.mc
            .exchange(&self.registry, i, j, self.now, &mut self.rng_gossip);

        // Vote sampling: experience computed before any merge.
        let e_i_accepts_j = self.experienced(i, j);
        let e_j_accepts_i = self.experienced(j, i);
        // Audit pre-state: votes each side currently holds from the other.
        let pre = self.audit.is_some().then(|| {
            (
                votes_from(self.vs.ballot(i), j),
                votes_from(self.vs.ballot(j), i),
            )
        });
        let list_i = self.outgoing_vote_list(i);
        let list_j = self.outgoing_vote_list(j);
        self.vs
            .deliver_vote_list(j, i, &list_j, self.now, e_i_accepts_j);
        self.vs
            .deliver_vote_list(i, j, &list_i, self.now, e_j_accepts_i);

        // VoxPopuli bootstrap: crowd members answer with fabricated lists;
        // honest nodes follow Fig 3c.
        let mut vox_breach = false;
        if self.cfg.vox_enabled && !self.is_crowd(i) && self.vs.needs_bootstrap(i) {
            if self.is_crowd(j) {
                let crowd = self.crowd.as_ref().expect("crowd member implies crowd");
                let list = crowd.topk_response(&[], self.cfg.votes.k);
                self.vs.deliver_external_topk(i, list);
            } else {
                let j_bootstrapping = self.vs.needs_bootstrap(j);
                let answered = self.vs.vox_request(i, j);
                vox_breach = answered && j_bootstrapping;
            }
        }

        if let Some((pre_j_in_i, pre_i_in_j)) = pre {
            self.audit_encounter(
                i,
                j,
                (e_i_accepts_j, e_j_accepts_i),
                (pre_j_in_i, pre_i_in_j),
                vox_breach,
            );
        }
    }

    /// Post-encounter invariant checks (audit mode only): ballot bound,
    /// experience gating, and VoxPopuli bootstrap honesty.
    fn audit_encounter(
        &mut self,
        i: NodeId,
        j: NodeId,
        (e_i_accepts_j, e_j_accepts_i): (bool, bool),
        (pre_j_in_i, pre_i_in_j): (usize, usize),
        vox_breach: bool,
    ) {
        let b_max = self.cfg.votes.b_max;
        let revalidate = self.cfg.votes.revalidate;
        let now = self.now;
        let post_j_in_i = votes_from(self.vs.ballot(i), j);
        let post_i_in_j = votes_from(self.vs.ballot(j), i);
        let uv_i = self.vs.ballot(i).unique_voters();
        let uv_j = self.vs.ballot(j).unique_voters();
        let aud = self.audit.as_mut().expect("caller checked audit is on");
        aud.check(uv_i <= b_max, || {
            format!("{i}'s ballot holds {uv_i} unique voters > B_max {b_max} at {now}")
        });
        aud.check(uv_j <= b_max, || {
            format!("{j}'s ballot holds {uv_j} unique voters > B_max {b_max} at {now}")
        });
        // A rejected sender must not add votes: untouched without
        // revalidation, shed entirely with it.
        if !e_i_accepts_j {
            let ok = if revalidate {
                post_j_in_i == 0
            } else {
                post_j_in_i == pre_j_in_i
            };
            aud.check(ok, || {
                format!(
                    "inexperienced {j}'s votes in {i}'s ballot went \
                     {pre_j_in_i} -> {post_j_in_i} at {now}"
                )
            });
        }
        if !e_j_accepts_i {
            let ok = if revalidate {
                post_i_in_j == 0
            } else {
                post_i_in_j == pre_i_in_j
            };
            aud.check(ok, || {
                format!(
                    "inexperienced {i}'s votes in {j}'s ballot went \
                     {pre_i_in_j} -> {post_i_in_j} at {now}"
                )
            });
        }
        aud.check(!vox_breach, || {
            format!("bootstrapping {j} answered {i}'s VoxPopuli request at {now}")
        });
    }

    fn outgoing_vote_list(&mut self, node: NodeId) -> Vec<VoteEntry> {
        if self.is_crowd(node) {
            self.crowd
                .as_ref()
                .expect("crowd member implies crowd")
                .vote_list()
        } else {
            self.vs.vote_list_of(node, &self.mc, &mut self.rng_gossip)
        }
    }

    fn observe_dispersion(&mut self) {
        let adaptive = self.adaptive.as_mut().expect("caller checked");
        for (idx, threshold) in adaptive.iter_mut().take(self.n_trace).enumerate() {
            let node = NodeId::from_index(idx);
            if self.net.is_online(node) {
                let d = self.vs.ballot(node).dispersion();
                threshold.observe_dispersion(d);
            }
        }
    }

    /// Current adaptive thresholds (ablation A1), if enabled.
    pub fn adaptive_thresholds(&self) -> Option<&[AdaptiveThreshold]> {
        self.adaptive.as_deref()
    }
}
