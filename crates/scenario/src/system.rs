//! The assembled system: every substrate wired together and driven by a
//! trace.

use crate::audit::Auditor;
use crate::checkpoint::Checkpoint;
use crate::config::{ProtocolConfig, ScenarioSetup};
use rvs_attacks::{FlashCrowd, Flooder, Malformer};
use rvs_bartercast::{validate_records, AdaptiveThreshold, BarterCast};
use rvs_bittorrent::BitTorrentNet;
use rvs_checkpoint::Persist as _;
use rvs_core::{validate_topk, validate_vote_list, BallotBox, VoteEntry, VoteSampling};
use rvs_faults::{
    Backoff, BackoffDecision, FaultConfig, FaultLane, FaultPlane, FaultSchedule, PartitionView,
    SendOutcome,
};
use rvs_guard::{Governor, GuardConfig, MessageClass, RejectReason};
use rvs_metrics::{collective_experience_value, correct_ordering_fraction, pollution_fraction};
use rvs_modcast::{validate_moderation_list, KeyRegistry, LocalVote, ModerationCast};
use rvs_pss::{NewscastConfig, NewscastPss, OraclePss};
use rvs_shard::{ShardBus, ShardConfig};
use rvs_sim::{pool, DetRng, Engine, ModeratorId, NodeId, Pool, SimTime};
use rvs_telemetry::{EncounterCounters, FaultCounters, PhaseTimer, Snapshot};
use rvs_trace::{Trace, TraceEventKind};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Evaluator nodes whose contribution caches are coherence-sampled per
/// audited gossip round.
const AUDIT_CACHE_NODES_PER_ROUND: usize = 2;
/// Cached `(i, j)` pairs re-derived per sampled evaluator.
const AUDIT_CACHE_PAIRS_PER_NODE: usize = 2;
/// Bound on each node's remembered VoxPopuli decliners (responder
/// rotation state). The message-id dedup window is bounded too, but its
/// cap is configurable — see [`GuardConfig::seen_window`] and
/// [`System::mark_seen`].
const DECLINER_WINDOW: usize = 8;

/// Events routed through the fault-plane delivery engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultEvent {
    /// A scheduled message delivery: the primary copy or a duplicate
    /// spawned by the duplication fault (same `id`, `primary = false`).
    Deliver {
        id: u64,
        from: NodeId,
        to: NodeId,
        attempt: u32,
        primary: bool,
    },
    /// A backoff wake-up: re-attempt a failed encounter send.
    Resend {
        from: NodeId,
        to: NodeId,
        attempt: u32,
    },
    /// Activate (cut) the partition registered at this index.
    PartitionStart(usize),
    /// Deactivate (heal) the partition registered at this index.
    PartitionHeal(usize),
    /// Crash-restart a node, wiping its volatile protocol state.
    Crash(NodeId),
}

/// Stable binary encoding: a `u8` discriminant (0 = Deliver, 1 = Resend,
/// 2 = PartitionStart, 3 = PartitionHeal, 4 = Crash) followed by the
/// variant's fields in declaration order.
impl rvs_checkpoint::Persist for FaultEvent {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        match *self {
            FaultEvent::Deliver {
                id,
                from,
                to,
                attempt,
                primary,
            } => {
                enc.u8(0);
                enc.u64(id);
                from.persist(enc);
                to.persist(enc);
                enc.u32(attempt);
                enc.bool(primary);
            }
            FaultEvent::Resend { from, to, attempt } => {
                enc.u8(1);
                from.persist(enc);
                to.persist(enc);
                enc.u32(attempt);
            }
            FaultEvent::PartitionStart(idx) => {
                enc.u8(2);
                enc.usize(idx);
            }
            FaultEvent::PartitionHeal(idx) => {
                enc.u8(3);
                enc.usize(idx);
            }
            FaultEvent::Crash(node) => {
                enc.u8(4);
                node.persist(enc);
            }
        }
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(FaultEvent::Deliver {
                id: dec.u64()?,
                from: NodeId::restore(dec)?,
                to: NodeId::restore(dec)?,
                attempt: dec.u32()?,
                primary: dec.bool()?,
            }),
            1 => Ok(FaultEvent::Resend {
                from: NodeId::restore(dec)?,
                to: NodeId::restore(dec)?,
                attempt: dec.u32()?,
            }),
            2 => Ok(FaultEvent::PartitionStart(dec.usize()?)),
            3 => Ok(FaultEvent::PartitionHeal(dec.usize()?)),
            4 => Ok(FaultEvent::Crash(NodeId::restore(dec)?)),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid FaultEvent discriminant {d}"
            ))),
        }
    }
}

/// Number of vote entries `voter` currently holds in `ballot`.
fn votes_from(ballot: &BallotBox, voter: NodeId) -> usize {
    ballot.iter().filter(|&(v, _, _, _)| v == voter).count()
}

/// The peer sampling service in use.
enum Pss {
    Oracle(OraclePss),
    Newscast(NewscastPss),
}

impl Pss {
    fn set_online(&mut self, peer: NodeId, introducer: Option<NodeId>, now: SimTime) {
        match self {
            Pss::Oracle(o) => o.set_online(peer),
            Pss::Newscast(n) => n.set_online(peer, introducer, now),
        }
    }
    fn set_offline(&mut self, peer: NodeId) {
        match self {
            Pss::Oracle(o) => o.set_offline(peer),
            Pss::Newscast(n) => n.set_offline(peer),
        }
    }
    /// Read-only sampling: PSS state never changes on sampling (only on
    /// churn and gossip rounds), so parallel send jobs can share one view
    /// while drawing from their own per-peer RNG lanes.
    fn sample_from(&self, requester: NodeId, rng: &mut DetRng) -> Option<NodeId> {
        match self {
            Pss::Oracle(o) => o.sample_from(requester, rng),
            Pss::Newscast(n) => n.sample_from(requester, rng),
        }
    }
    fn gossip_round(&mut self, now: SimTime, rng: &mut DetRng) {
        if let Pss::Newscast(n) = self {
            n.gossip_round(now, rng);
        }
    }
}

/// Stable binary encoding: a `u8` discriminant (0 = Oracle, 1 = Newscast)
/// followed by the wrapped sampler's state.
impl rvs_checkpoint::Persist for Pss {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        match self {
            Pss::Oracle(o) => {
                enc.u8(0);
                o.persist(enc);
            }
            Pss::Newscast(n) => {
                enc.u8(1);
                n.persist(enc);
            }
        }
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(Pss::Oracle(OraclePss::restore(dec)?)),
            1 => Ok(Pss::Newscast(NewscastPss::restore(dec)?)),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid Pss discriminant {d}"
            ))),
        }
    }
}

/// The fully wired simulation.
pub struct System {
    /// The run's master seed; every RNG stream is a labelled fork of it.
    /// Carried so checkpoints are self-contained (volatile state such as
    /// the key registry is re-derived from it on restore).
    seed: u64,
    cfg: ProtocolConfig,
    setup: ScenarioSetup,
    trace: Trace,
    n_trace: usize,
    n_total: usize,

    net: BitTorrentNet,
    pss: Pss,
    bc: BarterCast,
    mc: ModerationCast,
    registry: KeyRegistry,
    vs: VoteSampling,

    crowd: Option<FlashCrowd>,
    crowd_activated: bool,
    crowd_online: Vec<bool>,
    core_members: BTreeSet<NodeId>,
    adaptive: Option<Vec<AdaptiveThreshold>>,

    published: Vec<bool>,
    vote_cast: Vec<bool>,

    now: SimTime,
    next_event: usize,
    next_gossip: SimTime,
    rng_gossip: DetRng,
    rng_pss: DetRng,
    // Dedicated stream for audit sampling so enabling the auditor never
    // perturbs protocol randomness.
    rng_audit: DetRng,
    /// Per-peer send-phase RNG lanes (PSS sample draws), keyed by peer id
    /// so the stream each peer observes is independent of sharding.
    send_rng: Vec<DetRng>,

    // Parallel round engine. The pool shards per-peer send planning and
    // per-swarm BitTorrent windows; results merge in canonical order, so
    // `threads` can never change results (proven by
    // tests/parallel_differential.rs).
    threads: usize,
    pool: Pool,
    /// First BitTorrent tick not yet materialized.
    bt_window_start: SimTime,
    /// Online snapshot at `bt_window_start` (end of the last window).
    bt_online0: Vec<bool>,
    /// Trace events consumed by materialized windows so far.
    bt_event_lo: usize,

    enc: EncounterCounters,
    timer: PhaseTimer,
    audit: Option<Auditor>,

    // Fault-injection plane. With the default (inert) schedule, every
    // message takes the synchronous inline path and none of this state
    // consumes RNG draws or changes behaviour.
    faults: FaultPlane,
    fault_events: Engine<FaultEvent>,
    /// Next message id (monotone; ids order sends for reorder detection).
    next_msg_id: u64,
    /// Scheduled primary deliveries not yet resolved — the in-flight term
    /// of the encounter conservation identity.
    pending_primary: u64,
    /// Highest message id whose exchange has been applied.
    max_fired_msg: u64,
    /// Per-node windows of applied message ids (duplicate suppression).
    seen_msgs: Vec<BTreeSet<u64>>,
    /// Per-node VoxPopuli bootstrap backoff state (only consulted when the
    /// schedule enables retry).
    vox_backoff: Vec<Backoff>,
    /// Per-node responder-rotation memory: peers that recently declined a
    /// VoxPopuli request and should not be re-asked immediately.
    vox_decliners: Vec<BTreeSet<NodeId>>,

    // Byzantine message plane. With the default (disabled) GuardConfig
    // the governor admits everything, the gates never run, and the
    // encounter takes the exact legacy path.
    guard: Governor,
    /// The flooding adversary, when armed: extra gossip initiations per
    /// member per round, routed through the normal send path.
    flooder: Option<Flooder>,
    /// The wire mutator, when armed: structured corruption applied to
    /// guarded sub-messages before admission.
    malformer: Option<Malformer>,
    /// Dedicated RNG lane for malformation decisions, so arming the
    /// malformer never perturbs honest protocol draws.
    rng_malform: DetRng,
    /// Per-node count of scheduled (in-flight) deliveries headed to the
    /// node — the bounded-inbox gauge the guard's `inbox_cap` polices.
    inbox_load: Vec<u32>,

    // Sharded scale-out plane. Every planned send — intra- or cross-shard
    // — serializes through the bus with the canonical codec and is
    // delivered at the round barrier in (round, sender, seq) order, so
    // K=1 and K>1 share one code path and K can never change results
    // (proven by tests/shard_differential.rs).
    bus: ShardBus,
    /// Shard membership lists, ascending within each shard — a pure
    /// projection of `(n_total, K)`, rebuilt on `set_shards`/restore and
    /// deliberately outside the checkpoint.
    shard_members: Vec<Vec<NodeId>>,
}

impl System {
    /// Assemble a system for `trace` with the given scenario cast and an
    /// inert fault plane (no latency, loss, partitions, or crashes beyond
    /// the legacy `message_loss` knob).
    pub fn new(trace: Trace, cfg: ProtocolConfig, setup: ScenarioSetup, seed: u64) -> System {
        System::with_faults(trace, cfg, setup, seed, FaultSchedule::default())
    }

    /// Assemble a system whose deliveries route through the fault plane
    /// driven by `schedule`. The plane draws from a dedicated RNG fork, so
    /// two runs differing only in their schedule share every protocol RNG
    /// stream; an inert schedule reproduces [`System::new`] byte-for-byte.
    pub fn with_faults(
        trace: Trace,
        cfg: ProtocolConfig,
        setup: ScenarioSetup,
        seed: u64,
        schedule: FaultSchedule,
    ) -> System {
        let n_trace = trace.peer_count();
        let crowd_size = setup.crowd.map(|c| c.size).unwrap_or(0);
        let n_total = n_trace + crowd_size;
        let root = DetRng::new(seed);

        let net = BitTorrentNet::new(&trace, cfg.net, &root.fork(1));
        let pss = if cfg.use_newscast_pss {
            Pss::Newscast(NewscastPss::new(n_total, NewscastConfig::default()))
        } else {
            Pss::Oracle(OraclePss::new(n_total))
        };
        let bc = BarterCast::new(n_total, cfg.bartercast);
        let mut mc = ModerationCast::new(n_total, cfg.modcast);
        let registry = KeyRegistry::new(n_total, seed ^ 0x5EED);
        let mut vs = VoteSampling::new(n_total, cfg.votes);

        // The flash crowd occupies ids n_trace..n_total; its first member
        // doubles as the spam moderator M0.
        let crowd = setup.crowd.map(|spec| {
            assert!(spec.size > 0, "crowd must have at least one member");
            let members: Vec<NodeId> = (n_trace..n_total).map(NodeId::from_index).collect();
            FlashCrowd::new(
                members,
                NodeId::from_index(n_trace),
                spec.demote,
                spec.join_at,
            )
        });

        // Pre-seeded experienced core: converged on its top moderator.
        let mut core_members = BTreeSet::new();
        if let Some(core) = &setup.core {
            core_members.extend(core.members.iter().copied());
            let t0 = SimTime::ZERO;
            for &i in &core.members {
                mc.set_opinion(i, core.top_moderator, LocalVote::Approve, t0);
            }
            let entry = VoteEntry {
                moderator: core.top_moderator,
                vote: rvs_core::Vote::Positive,
                made_at: t0,
            };
            for &i in &core.members {
                for &j in &core.members {
                    if i != j {
                        vs.ballot_mut(i).merge(j, &[entry], t0);
                    }
                }
            }
        }

        let adaptive = cfg.adaptive_t.map(|a| vec![a; n_total]);
        let n_moderators = setup.moderators.len();
        let n_voters = setup.voters.len();

        // The legacy `message_loss` knob routes through the fault plane as
        // independent loss (unless the schedule configures its own rate),
        // so every drop reason is attributed to exactly one counter.
        let mut fault_cfg = schedule.config;
        if fault_cfg.loss == 0.0 {
            fault_cfg.loss = cfg.message_loss;
        }
        let mut faults = FaultPlane::new(fault_cfg, root.fork(5));
        let mut fault_events: Engine<FaultEvent> = Engine::new();
        for p in &schedule.partitions {
            let idx = faults.add_partition(p.members.iter().copied());
            fault_events.schedule_at(p.start, FaultEvent::PartitionStart(idx));
            fault_events.schedule_at(p.heal, FaultEvent::PartitionHeal(idx));
        }
        for c in &schedule.crashes {
            if c.node.index() < n_total {
                fault_events.schedule_at(c.at, FaultEvent::Crash(c.node));
            }
        }

        let send_base = root.fork(6);
        let threads = pool::env_threads();
        let bt_online0 = net.online_flags().to_vec();
        System {
            seed,
            cfg,
            setup,
            trace,
            n_trace,
            n_total,
            net,
            pss,
            bc,
            mc,
            registry,
            vs,
            crowd,
            crowd_activated: false,
            crowd_online: vec![false; crowd_size],
            core_members,
            adaptive,
            published: vec![false; n_moderators],
            vote_cast: vec![false; n_voters],
            now: SimTime::ZERO,
            next_event: 0,
            next_gossip: SimTime::ZERO,
            rng_gossip: root.fork(2),
            rng_pss: root.fork(3),
            rng_audit: root.fork(4),
            send_rng: (0..n_total as u64).map(|i| send_base.fork(i)).collect(),
            threads,
            pool: Pool::new(threads),
            bt_window_start: SimTime::ZERO,
            bt_online0,
            bt_event_lo: 0,
            enc: EncounterCounters::default(),
            timer: PhaseTimer::new(),
            audit: None,
            faults,
            fault_events,
            next_msg_id: 1,
            pending_primary: 0,
            max_fired_msg: 0,
            seen_msgs: vec![BTreeSet::new(); n_total],
            vox_backoff: vec![Backoff::new(); n_total],
            vox_decliners: vec![BTreeSet::new(); n_total],
            guard: Governor::new(n_total, GuardConfig::default()),
            flooder: None,
            malformer: None,
            rng_malform: root.fork(7),
            inbox_load: vec![0; n_total],
            bus: ShardBus::new(ShardConfig::default()),
            shard_members: rvs_shard::members(n_total, 1),
        }
    }

    /// The master seed this run was assembled from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serialize the complete resumable state into a self-contained
    /// [`Checkpoint`]: seed, configuration, scenario cast, trace, every
    /// protocol layer, every RNG lane, the fault plane with its in-flight
    /// event queue, and the telemetry counters. Volatile-by-design state
    /// (thread pool, wall-clock phase timer, auditor, key registry, flash
    /// crowd handle) is *not* written — [`System::restore`] re-derives it,
    /// which is what makes restoring on a different thread count legal.
    /// Resuming is byte-identical to never having stopped (proven by
    /// `tests/checkpoint_differential.rs`); layout and versioning policy
    /// are documented in DESIGN.md §12.
    pub fn checkpoint(&self) -> Checkpoint {
        let mut enc = rvs_checkpoint::Encoder::new();
        rvs_checkpoint::write_header(&mut enc);
        // Identity prefix, frozen across format versions so that
        // `rvs ckpt inspect` can summarize any checkpoint file.
        enc.u64(self.seed);
        self.now.persist(&mut enc);
        enc.usize(self.n_trace);
        enc.usize(self.n_total);

        enc.tag("cfg");
        self.cfg.persist(&mut enc);
        enc.tag("setup");
        self.setup.persist(&mut enc);
        enc.tag("trace");
        self.trace.persist(&mut enc);

        enc.tag("net");
        self.net.persist(&mut enc);
        enc.tag("pss");
        self.pss.persist(&mut enc);
        enc.tag("bartercast");
        self.bc.persist(&mut enc);
        enc.tag("modcast");
        self.mc.persist(&mut enc);
        enc.tag("votes");
        self.vs.persist(&mut enc);

        enc.tag("scenario");
        enc.bool(self.crowd_activated);
        self.crowd_online.persist(&mut enc);
        self.core_members.persist(&mut enc);
        self.adaptive.persist(&mut enc);
        self.published.persist(&mut enc);
        self.vote_cast.persist(&mut enc);

        enc.tag("clock");
        enc.usize(self.next_event);
        self.next_gossip.persist(&mut enc);

        enc.tag("rng");
        self.rng_gossip.persist(&mut enc);
        self.rng_pss.persist(&mut enc);
        self.rng_audit.persist(&mut enc);
        self.send_rng.persist(&mut enc);

        enc.tag("bt");
        self.bt_window_start.persist(&mut enc);
        self.bt_online0.persist(&mut enc);
        enc.usize(self.bt_event_lo);

        enc.tag("counters");
        self.enc.persist(&mut enc);

        enc.tag("faults");
        self.faults.persist(&mut enc);
        self.fault_events.persist(&mut enc);
        enc.u64(self.next_msg_id);
        enc.u64(self.pending_primary);
        enc.u64(self.max_fired_msg);
        self.seen_msgs.persist(&mut enc);
        self.vox_backoff.persist(&mut enc);
        self.vox_decliners.persist(&mut enc);

        enc.tag("guard");
        self.guard.persist(&mut enc);
        self.flooder.persist(&mut enc);
        self.malformer.persist(&mut enc);
        self.rng_malform.persist(&mut enc);
        self.inbox_load.persist(&mut enc);

        enc.tag("shard");
        self.bus.persist(&mut enc);

        Checkpoint {
            bytes: enc.into_bytes(),
        }
    }

    /// Rebuild a [`System`] from a [`Checkpoint`], re-deriving every
    /// volatile: the thread pool from the current environment (so a
    /// checkpoint taken under `RVS_THREADS=1` restores cleanly under
    /// `RVS_THREADS=4` and vice versa), the key registry from the seed,
    /// the flash-crowd handle from the persisted spec, a fresh phase
    /// timer, and auditing off (call [`System::enable_audit`] again to
    /// resume invariant checking — the audit RNG lane is persisted, so a
    /// re-enabled auditor samples exactly as an uninterrupted one).
    ///
    /// Never panics on damaged input: corrupt, truncated, or
    /// version-skewed blobs surface as typed [`DecodeError`]s, and
    /// cross-field consistency (population sizes, cursor bounds,
    /// per-node vector lengths) is validated before any state is used.
    ///
    /// [`DecodeError`]: rvs_checkpoint::DecodeError
    pub fn restore(ckpt: &Checkpoint) -> Result<System, rvs_checkpoint::DecodeError> {
        let corrupt = |msg: String| rvs_checkpoint::DecodeError::Corrupt(msg);
        let mut dec = rvs_checkpoint::Decoder::new(ckpt.as_bytes());
        rvs_checkpoint::read_header(&mut dec)?;
        let seed = dec.u64()?;
        let now = SimTime::restore(&mut dec)?;
        let n_trace = dec.usize()?;
        let n_total = dec.usize()?;

        dec.tag("cfg")?;
        let cfg = ProtocolConfig::restore(&mut dec)?;
        dec.tag("setup")?;
        let setup = ScenarioSetup::restore(&mut dec)?;
        dec.tag("trace")?;
        let trace = Trace::restore(&mut dec)?;

        dec.tag("net")?;
        let net = BitTorrentNet::restore(&mut dec)?;
        dec.tag("pss")?;
        let pss = Pss::restore(&mut dec)?;
        dec.tag("bartercast")?;
        let bc = BarterCast::restore(&mut dec)?;
        dec.tag("modcast")?;
        let mc = ModerationCast::restore(&mut dec)?;
        dec.tag("votes")?;
        let vs = VoteSampling::restore(&mut dec)?;

        dec.tag("scenario")?;
        let crowd_activated = dec.bool()?;
        let crowd_online: Vec<bool> = Vec::restore(&mut dec)?;
        let core_members: BTreeSet<NodeId> = BTreeSet::restore(&mut dec)?;
        let adaptive: Option<Vec<AdaptiveThreshold>> = Option::restore(&mut dec)?;
        let published: Vec<bool> = Vec::restore(&mut dec)?;
        let vote_cast: Vec<bool> = Vec::restore(&mut dec)?;

        dec.tag("clock")?;
        let next_event = dec.usize()?;
        let next_gossip = SimTime::restore(&mut dec)?;

        dec.tag("rng")?;
        let rng_gossip = DetRng::restore(&mut dec)?;
        let rng_pss = DetRng::restore(&mut dec)?;
        let rng_audit = DetRng::restore(&mut dec)?;
        let send_rng: Vec<DetRng> = Vec::restore(&mut dec)?;

        dec.tag("bt")?;
        let bt_window_start = SimTime::restore(&mut dec)?;
        let bt_online0: Vec<bool> = Vec::restore(&mut dec)?;
        let bt_event_lo = dec.usize()?;

        dec.tag("counters")?;
        let enc_counters = EncounterCounters::restore(&mut dec)?;

        dec.tag("faults")?;
        let faults = FaultPlane::restore(&mut dec)?;
        let fault_events: Engine<FaultEvent> = Engine::restore(&mut dec)?;
        let next_msg_id = dec.u64()?;
        let pending_primary = dec.u64()?;
        let max_fired_msg = dec.u64()?;
        let seen_msgs: Vec<BTreeSet<u64>> = Vec::restore(&mut dec)?;
        let vox_backoff: Vec<Backoff> = Vec::restore(&mut dec)?;
        let vox_decliners: Vec<BTreeSet<NodeId>> = Vec::restore(&mut dec)?;

        dec.tag("guard")?;
        let guard = Governor::restore(&mut dec)?;
        let flooder: Option<Flooder> = Option::restore(&mut dec)?;
        let malformer: Option<Malformer> = Option::restore(&mut dec)?;
        let rng_malform = DetRng::restore(&mut dec)?;
        let inbox_load: Vec<u32> = Vec::restore(&mut dec)?;

        dec.tag("shard")?;
        let bus = ShardBus::restore(&mut dec)?;
        dec.finish()?;

        // Cross-field consistency: a blob that decodes field-by-field can
        // still describe an impossible system; reject it before wiring.
        let crowd_size = setup.crowd.map(|c| c.size).unwrap_or(0);
        if trace.peer_count() != n_trace {
            return Err(corrupt(format!(
                "trace has {} peers but header claims {n_trace}",
                trace.peer_count()
            )));
        }
        if n_total != n_trace + crowd_size {
            return Err(corrupt(format!(
                "total nodes {n_total} != trace peers {n_trace} + crowd {crowd_size}"
            )));
        }
        if crowd_online.len() != crowd_size {
            return Err(corrupt(format!(
                "crowd online flags {} != crowd size {crowd_size}",
                crowd_online.len()
            )));
        }
        for (name, len) in [
            ("send RNG lanes", send_rng.len()),
            ("dedup windows", seen_msgs.len()),
            ("backoff states", vox_backoff.len()),
            ("decliner windows", vox_decliners.len()),
            ("guard records", guard.len()),
            ("inbox gauges", inbox_load.len()),
        ] {
            if len != n_total {
                return Err(corrupt(format!("{name} {len} != total nodes {n_total}")));
            }
        }
        if published.len() != setup.moderators.len() || vote_cast.len() != setup.voters.len() {
            return Err(corrupt(format!(
                "cast progress ({}, {}) does not match setup ({}, {})",
                published.len(),
                vote_cast.len(),
                setup.moderators.len(),
                setup.voters.len()
            )));
        }
        if next_event > trace.events.len() || bt_event_lo > next_event {
            return Err(corrupt(format!(
                "event cursors ({bt_event_lo}, {next_event}) exceed trace length {}",
                trace.events.len()
            )));
        }
        if bt_online0.len() != net.online_flags().len() {
            return Err(corrupt(format!(
                "BitTorrent online snapshot {} != substrate population {}",
                bt_online0.len(),
                net.online_flags().len()
            )));
        }
        if let Some(env) = bus.queued_envelopes().find(|e| e.sender.index() >= n_total) {
            return Err(corrupt(format!(
                "in-flight bus envelope names sender {} outside population {n_total}",
                env.sender.index()
            )));
        }

        // Volatile rebuilds — everything deliberately outside the blob.
        let registry = KeyRegistry::new(n_total, seed ^ 0x5EED);
        let crowd = setup.crowd.map(|spec| {
            let members: Vec<NodeId> = (n_trace..n_total).map(NodeId::from_index).collect();
            FlashCrowd::new(
                members,
                NodeId::from_index(n_trace),
                spec.demote,
                spec.join_at,
            )
        });
        let threads = pool::env_threads();

        Ok(System {
            seed,
            cfg,
            setup,
            trace,
            n_trace,
            n_total,
            net,
            pss,
            bc,
            mc,
            registry,
            vs,
            crowd,
            crowd_activated,
            crowd_online,
            core_members,
            adaptive,
            published,
            vote_cast,
            now,
            next_event,
            next_gossip,
            rng_gossip,
            rng_pss,
            rng_audit,
            send_rng,
            threads,
            pool: Pool::new(threads),
            bt_window_start,
            bt_online0,
            bt_event_lo,
            enc: enc_counters,
            timer: PhaseTimer::new(),
            audit: None,
            faults,
            fault_events,
            next_msg_id,
            pending_primary,
            max_fired_msg,
            seen_msgs,
            vox_backoff,
            vox_decliners,
            guard,
            flooder,
            malformer,
            rng_malform,
            inbox_load,
            shard_members: rvs_shard::members(n_total, bus.shards()),
            bus,
        })
    }

    /// Set the worker-thread count for the parallel round engine (clamped
    /// to at least 1; 1 runs everything inline on the caller's thread).
    /// Thread count can never change results — per-peer and per-swarm RNG
    /// streams are keyed by id and cross-shard effects merge in canonical
    /// order — so this is purely a wall-clock knob.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.threads {
            self.threads = threads;
            self.pool = Pool::new(threads);
        }
    }

    /// The worker-thread count the round engine is using.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Re-partition the population into `shards` deterministic shards
    /// (clamped to at least 1). Like [`System::set_threads`], this is
    /// purely a scheduling knob: shard membership is a pure function of
    /// `(peer id, K)`, every planned send serializes through the bus, and
    /// delivery order at the round barrier is canonical, so K can never
    /// change results (proven by `tests/shard_differential.rs`). Legal
    /// between rounds at any time, including after a restore from a
    /// checkpoint taken under a different K.
    pub fn set_shards(&mut self, shards: usize) {
        self.bus.set_shards(shards);
        self.shard_members = rvs_shard::members(self.n_total, self.bus.shards());
    }

    /// The shard count K of the scale-out plane.
    pub fn shards(&self) -> usize {
        self.bus.shards()
    }

    /// The shard owning `node` under the current partition.
    pub fn shard_of(&self, node: NodeId) -> usize {
        rvs_shard::route(node, self.bus.shards())
    }

    /// The members of `shard`, in ascending id order. Observer sampling
    /// can aggregate per shard through this view; per-shard aggregates
    /// merge to exactly the global value (see
    /// [`System::ordering_accuracy_in_shard`]).
    pub fn shard_members(&self, shard: usize) -> &[NodeId] {
        &self.shard_members[shard]
    }

    /// The cross-shard bus (queued envelopes, routing counters).
    pub fn shard_bus(&self) -> &ShardBus {
        &self.bus
    }

    /// Switch on runtime invariant auditing (idempotent). The [`Auditor`]
    /// re-checks conservation and protocol invariants after every
    /// encounter; enabling it never changes protocol behaviour.
    pub fn enable_audit(&mut self) {
        if self.audit.is_none() {
            self.audit = Some(Auditor::new());
        }
    }

    /// The auditor, when auditing is enabled.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.audit.as_ref()
    }

    /// Violations recorded so far — empty when auditing is off or clean.
    pub fn audit_violations(&self) -> &[String] {
        self.audit.as_ref().map(Auditor::violations).unwrap_or(&[])
    }

    /// A mergeable snapshot of every protocol layer's counters plus this
    /// system's wall-clock phase timings.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        Snapshot {
            encounters: self.enc.clone(),
            moderation: self.mc.counters().clone(),
            votes: self.vs.counters().clone(),
            voxpopuli: self.vs.vox_counters().clone(),
            barter: self.bc.counters(),
            pss: match &self.pss {
                Pss::Newscast(n) => n.counters().clone(),
                Pss::Oracle(_) => Default::default(),
            },
            faults: self.faults.counters().clone(),
            guard: self.guard.counters().clone(),
            shard: self.bus.counters().clone(),
            phase_nanos: self.timer.phases().clone(),
        }
    }

    /// The fault-injection plane (partition state and fault counters).
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.faults
    }

    /// The Byzantine guard plane (per-peer budgets, quarantine state,
    /// rejection counters).
    pub fn guard(&self) -> &Governor {
        &self.guard
    }

    /// Arm (or re-arm) the guard plane. Re-arming resets every peer's
    /// budgets to the new config; rejection counters are kept. With
    /// `enabled == false` the engine takes the exact legacy path.
    pub fn set_guard_config(&mut self, cfg: GuardConfig) {
        self.guard.set_config(cfg);
    }

    /// Size of the largest per-node dedup window right now. Bounded by
    /// [`GuardConfig::seen_window`] at all times — the flood regression
    /// tests assert this never exceeds the configured cap.
    pub fn max_seen_window(&self) -> usize {
        self.seen_msgs.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Arm the flooding adversary: each member initiates `per_round`
    /// extra gossip sends per round through the normal send path.
    pub fn set_flooder(&mut self, flooder: Flooder) {
        self.flooder = Some(flooder);
    }

    /// The flooding adversary, when armed.
    pub fn flooder(&self) -> Option<&Flooder> {
        self.flooder.as_ref()
    }

    /// Arm the wire mutator: guarded sub-messages are structurally
    /// corrupted at its configured rate before admission. Only effective
    /// while the guard plane is enabled (the mutation point sits on the
    /// gated delivery path).
    pub fn set_malformer(&mut self, malformer: Malformer) {
        self.malformer = Some(malformer);
    }

    /// The wire mutator, when armed.
    pub fn malformer(&self) -> Option<&Malformer> {
        self.malformer.as_ref()
    }

    /// Scheduled primary deliveries still in flight.
    pub fn in_flight(&self) -> u64 {
        self.pending_primary
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of peers in the underlying trace.
    pub fn trace_peer_count(&self) -> usize {
        self.n_trace
    }

    /// Total nodes including any flash crowd.
    pub fn total_nodes(&self) -> usize {
        self.n_total
    }

    /// The trace driving the run.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The BitTorrent substrate.
    pub fn net(&self) -> &BitTorrentNet {
        &self.net
    }

    /// The BarterCast state.
    pub fn bartercast(&self) -> &BarterCast {
        &self.bc
    }

    /// The ModerationCast state.
    pub fn modcast(&self) -> &ModerationCast {
        &self.mc
    }

    /// The vote-sampling state.
    pub fn votes(&self) -> &VoteSampling {
        &self.vs
    }

    /// The flash crowd, if any.
    pub fn crowd(&self) -> Option<&FlashCrowd> {
        self.crowd.as_ref()
    }

    /// Is `node` online right now (trace churn for trace peers, duty cycle
    /// for crowd identities)?
    pub fn is_online(&self, node: NodeId) -> bool {
        if node.index() < self.n_trace {
            self.net.is_online(node)
        } else {
            self.crowd_online
                .get(node.index() - self.n_trace)
                .copied()
                .unwrap_or(false)
        }
    }

    fn is_crowd(&self, node: NodeId) -> bool {
        self.crowd
            .as_ref()
            .map(|c| c.is_member(node))
            .unwrap_or(false)
    }

    /// The experience predicate `E_i(j)` as node `i` evaluates it —
    /// always computed from `i`'s own BarterCast graph, even for the
    /// pre-seeded core: a *new* node has downloaded nothing yet, so nobody
    /// (core included) is experienced towards it until it participates in
    /// swarms. That asymmetry is what opens the Figure 8 bootstrap window.
    pub fn experienced(&self, i: NodeId, j: NodeId) -> bool {
        let t = match &self.adaptive {
            Some(per_node) => per_node[i.index()].t_mib,
            None => self.cfg.experience_t_mib,
        };
        self.bc.contribution_mib(i, j) >= t
    }

    /// Batched `E_i(j)` for one evaluator against many peers. Reconciles
    /// `i`'s contribution cache once for the whole sweep, so round-level
    /// gating over a candidate set costs one cache pass plus the misses.
    pub fn experienced_batch(&self, i: NodeId, peers: &[NodeId]) -> Vec<bool> {
        let t = match &self.adaptive {
            Some(per_node) => per_node[i.index()].t_mib,
            None => self.cfg.experience_t_mib,
        };
        self.bc
            .contributions_mib(i, peers)
            .into_iter()
            .map(|f| f >= t)
            .collect()
    }

    /// Contribution `f_{j→i}` in MiB for an explicit threshold sweep.
    pub fn contribution_mib(&self, i: NodeId, j: NodeId) -> f64 {
        self.bc.contribution_mib(i, j)
    }

    /// CEV over the trace population for threshold `t_mib` (Figure 5).
    /// Sweeps each evaluator's row through the batched cache path.
    pub fn cev(&self, t_mib: f64) -> f64 {
        let peers: Vec<NodeId> = (0..self.n_trace).map(NodeId::from_index).collect();
        let rows: Vec<Vec<f64>> = peers
            .iter()
            .map(|&i| self.bc.contributions_mib(i, &peers))
            .collect();
        collective_experience_value(self.n_trace, |i, j| rows[i.index()][j.index()] >= t_mib)
    }

    /// The ranking node `i` would display to its user: the VoxPopuli merge
    /// while bootstrapping, ballot statistics (unioned with moderators
    /// known from its local database) afterwards.
    pub fn display_ranking(&self, i: NodeId) -> Vec<ModeratorId> {
        self.vs.ranking_with_known(i, &self.mc).ranked
    }

    /// Fraction of trace nodes whose displayed ranking orders `expected`
    /// correctly (Figure 6).
    pub fn ordering_accuracy(&self, expected: &[ModeratorId]) -> f64 {
        let rankings: Vec<Vec<ModeratorId>> = (0..self.n_trace)
            .map(|i| self.display_ranking(NodeId::from_index(i)))
            .collect();
        correct_ordering_fraction(rankings.iter().map(|r| r.as_slice()), expected)
    }

    /// [`System::ordering_accuracy`] restricted to the trace members of
    /// one shard, as `(correct, sampled)` counts. Count form makes the
    /// observer shard-aware without losing exactness: summing the counts
    /// over all shards reproduces the global fraction bit-for-bit (a
    /// sum of per-shard `f64` fractions would not), which the shard
    /// differential suite asserts.
    pub fn ordering_accuracy_in_shard(&self, shard: usize, expected: &[ModeratorId]) -> (u64, u64) {
        let mut correct = 0u64;
        let mut total = 0u64;
        for &n in &self.shard_members[shard] {
            if n.index() >= self.n_trace {
                continue;
            }
            total += 1;
            if rvs_metrics::orders_correctly(&self.display_ranking(n), expected) {
                correct += 1;
            }
        }
        (correct, total)
    }

    /// Fraction of *newly arrived honest* nodes (trace peers outside the
    /// pre-seeded core that have arrived by now) ranking `spam` top
    /// (Figure 8).
    pub fn new_node_pollution(&self, spam: ModeratorId) -> f64 {
        let rankings: Vec<Vec<ModeratorId>> = (0..self.n_trace)
            .map(NodeId::from_index)
            .filter(|n| !self.core_members.contains(n))
            .filter(|n| self.trace.peers[n.index()].arrival <= self.now)
            .map(|n| self.display_ranking(n))
            .collect();
        pollution_fraction(rankings.iter().map(|r| r.as_slice()), spam)
    }

    /// Advance the simulation to `end`, invoking `observer` every
    /// `sample_every` of simulated time (and once at the end).
    pub fn run_until(
        &mut self,
        end: SimTime,
        sample_every: rvs_sim::SimDuration,
        mut observer: impl FnMut(&System, SimTime),
    ) {
        let mut next_sample = self.now;
        while self.now < end {
            self.step();
            if self.now >= next_sample {
                // Materialize pending BitTorrent ticks so the observer sees
                // transfers up to the current tick, exactly as the serial
                // engine always did. Sample cadence is thread-independent,
                // so this cannot perturb thread-count invariance.
                self.materialize_bt(self.now);
                observer(self, self.now);
                next_sample = self.now + sample_every;
            }
        }
        self.materialize_bt(self.now);
        observer(self, end);
    }

    /// One simulation tick: pending fault-plane events, trace events,
    /// BitTorrent transfers, crowd churn, and (when due) a protocol gossip
    /// round.
    pub fn step(&mut self) {
        // Fault-plane events that came due since the previous tick
        // (deliveries, resends, partition cuts/heals, crashes). Delivery
        // times are quantized to the tick boundary: an event scheduled at
        // `t` fires at the first tick with `now > t`, in (time, seq) order.
        while let Some((_, ev)) = self.fault_events.next_before(self.now) {
            self.handle_fault_event(ev);
        }
        // Trace events at or before the current tick. Only the churn side
        // (online flags, PSS membership) applies immediately; the
        // swarm-level mutations are replayed tick-accurately inside the
        // next BitTorrent window, which runs the same `time <= tick` rule.
        while self.next_event < self.trace.events.len()
            && self.trace.events[self.next_event].time <= self.now
        {
            let ev = self.trace.events[self.next_event];
            self.next_event += 1;
            self.net.note_event(&ev);
            match ev.kind {
                TraceEventKind::Online => {
                    let introducer = self.any_online_except(ev.peer);
                    self.pss.set_online(ev.peer, introducer, self.now);
                }
                TraceEventKind::Offline => self.pss.set_offline(ev.peer),
                TraceEventKind::StartDownload { .. } => {}
            }
        }
        self.update_crowd();
        if self.now >= self.next_gossip {
            // Materialize BitTorrent ticks up to and including this one,
            // so the gossip round reads a ledger exact as of `now` — the
            // same state the per-tick serial engine produced.
            self.materialize_bt(self.now + self.cfg.net.tick);
            self.timer.start("gossip");
            self.gossip_round();
            self.timer.stop();
            self.next_gossip = self.now + self.cfg.gossip_every;
        }
        self.now += self.cfg.net.tick;
    }

    /// Materialize every pending BitTorrent tick in
    /// `[bt_window_start, end_exclusive)` as one parallel window, then
    /// re-capture the online snapshot and event cursor for the next one.
    fn materialize_bt(&mut self, end_exclusive: SimTime) {
        if self.bt_window_start >= end_exclusive {
            return;
        }
        self.timer.start("bittorrent");
        let events = &self.trace.events[self.bt_event_lo..self.next_event];
        self.bt_window_start = self.net.advance_window(
            self.bt_window_start,
            end_exclusive,
            events,
            &self.bt_online0,
            &self.pool,
        );
        self.bt_event_lo = self.next_event;
        self.bt_online0.clear();
        self.bt_online0.extend_from_slice(self.net.online_flags());
        self.timer.stop();
    }

    /// A deterministically random online node other than `except`, drawn
    /// from the gossip stream. (Taking the *first* online node here skewed
    /// every PSS bootstrap introduction toward node 0.)
    fn any_online_except(&mut self, except: NodeId) -> Option<NodeId> {
        let candidates: Vec<NodeId> = (0..self.n_total)
            .map(NodeId::from_index)
            .filter(|&n| n != except && self.is_online(n))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(*self.rng_gossip.pick(&candidates))
        }
    }

    /// Crowd activation and duty-cycle churn.
    fn update_crowd(&mut self) {
        let Some(crowd) = &self.crowd else { return };
        let spec = self.setup.crowd.expect("crowd spec exists");
        if self.now < spec.join_at {
            return;
        }
        if !self.crowd_activated {
            self.crowd_activated = true;
            // M0 publishes its spam moderation; every member approves it
            // (so they all forward it) and optionally votes the honest top
            // moderator down.
            let m0 = crowd.spam_moderator();
            self.mc.publish(
                &self.registry,
                m0,
                spec.spam_swarm,
                rvs_modcast::ContentQuality::Spam,
                self.now,
            );
            let members: Vec<NodeId> = crowd.members().collect();
            for &m in &members {
                self.mc.set_opinion(m, m0, LocalVote::Approve, self.now);
                if let Some(target) = spec.demote {
                    self.mc
                        .set_opinion(m, target, LocalVote::Disapprove, self.now);
                }
            }
        }
        // Deterministic staggered duty cycle.
        let period = spec.churn_period.as_millis().max(1);
        let since = (self.now - spec.join_at).as_millis();
        for idx in 0..self.crowd_online.len() {
            let offset = (idx as u64 * period) / self.crowd_online.len().max(1) as u64;
            let phase = ((since + offset) % period) as f64 / period as f64;
            let online = phase < spec.duty_cycle;
            if online != self.crowd_online[idx] {
                self.crowd_online[idx] = online;
                let node = NodeId::from_index(self.n_trace + idx);
                if online {
                    let introducer = self.any_online_except(node);
                    self.pss.set_online(node, introducer, self.now);
                } else {
                    self.pss.set_offline(node);
                }
            }
        }
    }

    /// One protocol gossip round over every online node: a parallel
    /// *plan* phase (per-peer PSS sample + fault decide, each peer drawing
    /// from its own RNG lanes) followed by a strictly serial *apply* phase
    /// in ascending sender order — the canonical `(round, sender, seq)`
    /// merge order that makes results independent of thread count.
    fn gossip_round(&mut self) {
        // Quarantine bookkeeping first: refill budgets, decay strikes,
        // release served sentences — and re-validate what released peers
        // left behind (see `revalidate_released`).
        for q in self.guard.on_round(self.now) {
            self.revalidate_released(q);
        }
        self.pss.gossip_round(self.now, &mut self.rng_pss);
        self.publish_due_moderations();
        self.cast_due_votes();
        let plans = self.plan_sends();
        for (i, j, outcome) in plans {
            // Attempt 1 is the initial send; retries re-enter via dispatch.
            self.apply_outcome(i, j, 1, outcome);
        }
        // Flood traffic rides after the honest plan, strictly serial, so
        // the per-peer draw order is independent of thread count.
        self.run_flooder_sends();
        if self.adaptive.is_some() {
            self.observe_dispersion();
        }
        if let Some(aud) = &mut self.audit {
            let e = &self.enc;
            let f = self.faults.counters();
            let g = self.guard.counters();
            let s = self.bus.counters();
            let now = self.now;
            let in_flight = self.pending_primary;
            let bus_in_flight = self.bus.in_flight();
            // Fault-aware conservation: every attempt is delivered, dropped
            // for an attributed reason, still in flight (scheduled delivery
            // or envelope queued on the shard bus at the round cut), or
            // refused at the bus admission gate. Duplicate copies are
            // outside the identity by construction — they never touch
            // `attempted` or `delivered` (a duplicate shed by a full inbox
            // lands in `inbox_dropped_dup`, also outside it).
            let accounted = e.delivered
                + e.dropped_no_sample
                + e.dropped_offline_target
                + e.dropped_self_target
                + e.dropped_message_loss
                + f.dropped_burst
                + f.partitioned
                + f.dropped_expired
                + g.inbox_dropped
                + in_flight
                + bus_in_flight
                + s.envelopes_rejected;
            aud.check(e.attempted == accounted, || {
                format!(
                    "encounter conservation broken at {now}: {e:?} faults {f:?} \
                     inbox-dropped {} in-flight {in_flight} bus-in-flight \
                     {bus_in_flight} bus-rejected {}",
                    g.inbox_dropped, s.envelopes_rejected
                )
            });
            // Sampled cache coherence: pick a few evaluators, re-derive a
            // random subset of their cached contributions from scratch, and
            // demand byte-identical values.
            for _ in 0..AUDIT_CACHE_NODES_PER_ROUND {
                let node = NodeId::from_index(self.rng_audit.index(self.n_total));
                let violations = self.bc.audit_cache_coherence(
                    node,
                    AUDIT_CACHE_PAIRS_PER_NODE,
                    &mut self.rng_audit,
                );
                aud.check(violations.is_empty(), || {
                    format!("at {now}: {}", violations.join("; "))
                });
            }
        }
    }

    /// Plan this round's sends shard by shard: snapshot the online flags
    /// and partition state, lend the (read-only) PSS views to the pool,
    /// and move each member's RNG lane and fault lane into its shard's
    /// planning job (sub-chunked across threads). Every planned send —
    /// fault fate already decided on the sender's own lane, so attribution
    /// is shard-invariant — is serialized with the canonical codec and
    /// posted to the [`ShardBus`]; the round barrier drains the bus in
    /// canonical `(round, sender, seq)` order, which is exactly the
    /// ascending-sender order of the monolithic engine. The result is a
    /// pure function of per-peer streams — never of sharding or
    /// threading.
    fn plan_sends(&mut self) -> Vec<(NodeId, NodeId, SendOutcome)> {
        let n = self.n_total;
        struct SendCtx {
            pss: Pss,
            online: Vec<bool>,
            cfg: FaultConfig,
            view: PartitionView,
        }
        self.faults.ensure_lanes(n);
        self.bus.begin_round(self.bus.round() + 1);
        let ctx = Arc::new(SendCtx {
            pss: std::mem::replace(&mut self.pss, Pss::Oracle(OraclePss::new(0))),
            online: (0..n)
                .map(|i| self.is_online(NodeId::from_index(i)))
                .collect(),
            cfg: *self.faults.config(),
            view: self.faults.partition_view(),
        });
        // Lane lending, keyed by peer id: each shard job takes exactly its
        // members' RNG and fault lanes and hands them back with its
        // results, so every lane advances identically under any K.
        let mut send_rng: Vec<Option<DetRng>> = std::mem::take(&mut self.send_rng)
            .into_iter()
            .map(Some)
            .collect();
        let mut lanes: Vec<Option<FaultLane>> =
            self.faults.take_lanes().into_iter().map(Some).collect();

        type ChunkResult = (
            Vec<(NodeId, DetRng, FaultLane)>,
            Vec<(NodeId, NodeId, SendOutcome)>,
            EncounterCounters,
            FaultCounters,
        );
        let shards = self.bus.shards();
        // Sub-chunk each shard's member list so K < threads still keeps
        // every worker busy; chunk geometry can't affect results (lanes
        // are per-peer, counters commute, delivery order is canonical).
        let subs = self.pool.threads().div_ceil(shards).max(1);
        let mut jobs: Vec<Box<dyn FnOnce() -> ChunkResult + Send + 'static>> = Vec::new();
        for members in &self.shard_members {
            if members.is_empty() {
                continue;
            }
            let chunk_size = members.len().div_ceil(subs.min(members.len()));
            for chunk in members.chunks(chunk_size) {
                let owned: Vec<(NodeId, DetRng, FaultLane)> = chunk
                    .iter()
                    .map(|&p| {
                        let rng = send_rng[p.index()]
                            .take()
                            .expect("route() puts each peer in exactly one shard");
                        let lane = lanes[p.index()]
                            .take()
                            .expect("route() puts each peer in exactly one shard");
                        (p, rng, lane)
                    })
                    .collect();
                let ctx = Arc::clone(&ctx);
                jobs.push(Box::new(move || {
                    let mut owned = owned;
                    let mut plans = Vec::new();
                    let mut enc = EncounterCounters::default();
                    let mut fc = FaultCounters::default();
                    for (i, rng, lane) in &mut owned {
                        let i = *i;
                        if !ctx.online[i.index()] {
                            continue;
                        }
                        enc.attempted += 1;
                        let Some(j) = ctx.pss.sample_from(i, rng) else {
                            enc.dropped_no_sample += 1;
                            continue;
                        };
                        if i == j {
                            enc.dropped_self_target += 1;
                            continue;
                        }
                        // Contacting an offline peer fails (stale PSS views).
                        if !ctx.online[j.index()] {
                            enc.dropped_offline_target += 1;
                            continue;
                        }
                        // Every send routes through the fault plane, which
                        // decides loss/latency/duplication from the sender's
                        // own lane — before serialization, so the fate rides
                        // inside the envelope and is shard-invariant.
                        let outcome = lane.decide(&ctx.cfg, &ctx.view, &mut fc, i, j);
                        if matches!(outcome, SendOutcome::DropIndependent) {
                            // Independent loss keeps its historical home in the
                            // encounter block (`message_loss` attribution).
                            enc.dropped_message_loss += 1;
                        }
                        plans.push((i, j, outcome));
                    }
                    (owned, plans, enc, fc)
                }));
            }
        }

        for (owned, chunk_plans, enc, fc) in self.pool.scatter(jobs) {
            for (p, rng, lane) in owned {
                send_rng[p.index()] = Some(rng);
                lanes[p.index()] = Some(lane);
            }
            for (i, j, outcome) in chunk_plans {
                // The inter-shard wire format: the canonical codec over
                // (target, fate), framed by the envelope header.
                self.bus.post(i, j, rvs_checkpoint::to_bytes(&(j, outcome)));
            }
            self.enc.merge_from(&enc);
            self.faults.counters_mut().merge_from(&fc);
        }
        self.send_rng = send_rng
            .into_iter()
            .map(|o| o.expect("every lent lane came back with its job"))
            .collect();
        self.faults.restore_lanes(
            lanes
                .into_iter()
                .map(|o| o.expect("every lent lane came back with its job"))
                .collect(),
        );
        let ctx = Arc::try_unwrap(ctx)
            .unwrap_or_else(|_| unreachable!("scatter joined every job, so no Arc clone survives"));
        self.pss = ctx.pss;

        // Round barrier: release the bus in canonical order and decode
        // each envelope back into a plan. Decode failures and out-of-range
        // targets can only come from a hostile checkpoint blob's carried
        // envelopes — refused with counter attribution, never a panic.
        let mut plans = Vec::new();
        for env in self.bus.drain_barrier() {
            match rvs_checkpoint::from_bytes::<(NodeId, SendOutcome)>(&env.payload) {
                Ok((j, outcome)) if j.index() < n => plans.push((env.sender, j, outcome)),
                Ok(_) | Err(_) => self.bus.counters_mut().envelopes_rejected += 1,
            }
        }
        plans
    }

    /// Route one send from `i` to `j` through the fault plane (the serial
    /// path, used by backoff resends). The caller has already counted
    /// `attempted` and verified both endpoints online.
    fn dispatch(&mut self, i: NodeId, j: NodeId, attempt: u32) {
        let outcome = self.faults.decide(i, j);
        if matches!(outcome, SendOutcome::DropIndependent) {
            // Independent loss keeps its historical home in the encounter
            // block (`message_loss` attribution).
            self.enc.dropped_message_loss += 1;
        }
        self.apply_outcome(i, j, attempt, outcome);
    }

    /// Apply a decided send outcome: drops feed the retry path, deliveries
    /// assign the (serial, monotone) message id and either run the
    /// exchange inline or schedule it. Strictly serial — this is where
    /// cross-peer state changes, in canonical sender order.
    fn apply_outcome(&mut self, i: NodeId, j: NodeId, attempt: u32, outcome: SendOutcome) {
        match outcome {
            SendOutcome::DropIndependent
            | SendOutcome::DropBurst
            | SendOutcome::DropPartitioned => {
                // Loss attribution already happened where the decide ran.
                self.maybe_retry(i, j, attempt);
            }
            SendOutcome::Deliver {
                delay,
                duplicate_delay,
            } => {
                let id = self.next_msg_id;
                self.next_msg_id += 1;
                let inbox_full = |load: &[u32], guard: &Governor| {
                    guard.enabled() && load[j.index()] >= guard.config().inbox_cap
                };
                if let Some(extra) = duplicate_delay {
                    if inbox_full(&self.inbox_load, &self.guard) {
                        // Fixed drop policy: a full inbox sheds the newest
                        // arrival. Duplicates are outside the conservation
                        // identity, so this gets its own counter.
                        self.guard.counters_mut().inbox_dropped_dup += 1;
                    } else {
                        self.inbox_load[j.index()] += 1;
                        self.fault_events.schedule_at(
                            self.now.saturating_add(extra),
                            FaultEvent::Deliver {
                                id,
                                from: i,
                                to: j,
                                attempt,
                                primary: false,
                            },
                        );
                    }
                }
                if delay.is_zero() {
                    // Zero-latency fast path: the legacy synchronous
                    // exchange, applied inside the sending gossip round.
                    self.apply_message(id, i, j);
                    self.enc.delivered += 1;
                } else if inbox_full(&self.inbox_load, &self.guard) {
                    // The primary copy is shed before scheduling: the
                    // attempt resolves as an attributed drop (the
                    // `inbox_dropped` term of the conservation identity)
                    // and feeds the retry path like any other loss.
                    self.guard
                        .note_rejection(j, RejectReason::InboxOverflow, self.now);
                    self.maybe_retry(i, j, attempt);
                } else {
                    self.inbox_load[j.index()] += 1;
                    self.pending_primary += 1;
                    self.fault_events.schedule_at(
                        self.now.saturating_add(delay),
                        FaultEvent::Deliver {
                            id,
                            from: i,
                            to: j,
                            attempt,
                            primary: true,
                        },
                    );
                }
            }
        }
    }

    fn handle_fault_event(&mut self, ev: FaultEvent) {
        match ev {
            FaultEvent::Deliver {
                id,
                from,
                to,
                attempt,
                primary,
            } => self.handle_delivery(id, from, to, attempt, primary),
            FaultEvent::Resend { from, to, attempt } => self.handle_resend(from, to, attempt),
            FaultEvent::PartitionStart(idx) => self.faults.set_partition_active(idx, true),
            FaultEvent::PartitionHeal(idx) => self.faults.set_partition_active(idx, false),
            FaultEvent::Crash(node) => self.crash_restart(node),
        }
    }

    /// A scheduled copy (primary or duplicate) of message `id` arrives.
    fn handle_delivery(&mut self, id: u64, from: NodeId, to: NodeId, attempt: u32, primary: bool) {
        // Every scheduled copy occupied an inbox slot; arriving frees it.
        self.inbox_load[to.index()] = self.inbox_load[to.index()].saturating_sub(1);
        if primary {
            self.pending_primary -= 1;
        }
        // Receiver-side dedup: if any copy of this id already applied, the
        // exchange must not run twice. A suppressed *primary* still counts
        // as delivered — its duplicate carried the logical message through.
        if self.has_seen(from, id) || self.has_seen(to, id) {
            self.faults.counters_mut().dedup_suppressed += 1;
            if primary {
                self.enc.delivered += 1;
            }
            return;
        }
        // A partition may have been cut while the message was in flight.
        if self.faults.partitioned(from, to) {
            if primary {
                self.faults.counters_mut().partitioned += 1;
                self.maybe_retry(from, to, attempt);
            }
            return;
        }
        // An endpoint may have churned offline while the message was in
        // flight; the encounter needs both sides up.
        if !self.is_online(from) || !self.is_online(to) {
            if primary {
                self.faults.counters_mut().dropped_expired += 1;
                self.maybe_retry(from, to, attempt);
            }
            return;
        }
        if self.audit.is_some() {
            let double_apply = self.has_seen(from, id) || self.has_seen(to, id);
            let crosses_cut = self.faults.partitioned(from, to);
            let now = self.now;
            if let Some(aud) = self.audit.as_mut() {
                aud.check(!double_apply, || {
                    format!("message {id} ({from}->{to}) would apply twice at {now}")
                });
                aud.check(!crosses_cut, || {
                    format!("delivery {id} ({from}->{to}) crosses an active partition at {now}")
                });
            }
        }
        self.apply_message(id, from, to);
        if primary {
            self.enc.delivered += 1;
        }
    }

    /// Apply message `id`'s exchange: record it in both dedup windows,
    /// track send-order inversions, and run the protocol encounter.
    fn apply_message(&mut self, id: u64, from: NodeId, to: NodeId) {
        // The encounter reads the transfer ledger, so pending BitTorrent
        // ticks must materialize first: otherwise the exchange would see
        // state "as of the last window cut", and outcomes would depend on
        // where `run_until` stop/sample boundaries happened to fall —
        // breaking the resume-transparency the checkpoint differential
        // tests prove.
        self.materialize_bt(self.now);
        if id < self.max_fired_msg {
            self.faults.counters_mut().reordered += 1;
        } else {
            self.max_fired_msg = id;
        }
        self.mark_seen(from, id);
        self.mark_seen(to, id);
        // Quarantined peers are cut off at the application gate: they
        // neither push nor pull until released. The message still counts
        // as delivered (the network did its job); the refusal is
        // attributed to the quarantine counter.
        if self.guard.enabled() {
            let q_from = self.guard.is_quarantined(from, self.now);
            let q_to = self.guard.is_quarantined(to, self.now);
            if q_from || q_to {
                let culprit = if q_from { from } else { to };
                self.guard
                    .note_rejection(culprit, RejectReason::Quarantined, self.now);
                return;
            }
        }
        self.encounter(from, to);
    }

    fn has_seen(&self, node: NodeId, id: u64) -> bool {
        self.seen_msgs[node.index()].contains(&id)
    }

    /// Record `id` in `node`'s dedup window, evicting the smallest id
    /// beyond the configured cap. Ids are monotone, so evicting the
    /// smallest keeps the most recent ids — the only ones a late-arriving
    /// duplicate can realistically carry. The cap is
    /// [`GuardConfig::seen_window`] (in force even while the rest of the
    /// plane is disabled; the default reproduces the historical bound).
    fn mark_seen(&mut self, node: NodeId, id: u64) {
        let cap = (self.guard.config().seen_window as usize).max(1);
        let window = &mut self.seen_msgs[node.index()];
        window.insert(id);
        while window.len() > cap {
            window.pop_first();
        }
    }

    /// After a failed attempt, schedule a backoff resend when the schedule
    /// enables retry; otherwise the loss stands, exactly as before.
    fn maybe_retry(&mut self, from: NodeId, to: NodeId, failed_attempt: u32) {
        let Some(rc) = self.faults.config().retry else {
            return;
        };
        if failed_attempt >= rc.max_attempts {
            self.faults.counters_mut().backoff_gaveups += 1;
            return;
        }
        self.faults.counters_mut().retries += 1;
        let delay = rc.backoff_delay(failed_attempt + 1);
        self.fault_events.schedule_at(
            self.now.saturating_add(delay),
            FaultEvent::Resend {
                from,
                to,
                attempt: failed_attempt + 1,
            },
        );
    }

    /// A backoff timer fired: re-attempt the encounter, rotating to a
    /// fresh responder when the sampler offers one (the failed target may
    /// be dead or unreachable behind a partition).
    fn handle_resend(&mut self, from: NodeId, to: NodeId, attempt: u32) {
        if !self.is_online(from) {
            // The sender churned away; the retry dissolves without an
            // attempt (nothing was sent, so conservation is untouched).
            return;
        }
        self.enc.attempted += 1;
        // Resends draw from the sender's own send lane — the same stream
        // its round sends use — so the per-peer draw order is a fixed
        // interleaving of rounds and (serially processed) retries,
        // independent of thread count.
        let target = match self.pss.sample_from(from, &mut self.send_rng[from.index()]) {
            Some(t) if t != from && t != to => t,
            _ => to,
        };
        if !self.is_online(target) {
            self.enc.dropped_offline_target += 1;
            self.maybe_retry(from, target, attempt);
            return;
        }
        self.dispatch(from, target, attempt);
    }

    /// Crash-restart `node`: volatile protocol state (ballot box,
    /// VoxPopuli cache, dedup window, backoff state) is wiped; persistent
    /// state (BarterCast graph, signed moderations in the local database,
    /// PSS view) survives, as Tribler persists those across sessions.
    fn crash_restart(&mut self, node: NodeId) {
        if node.index() >= self.n_total {
            return;
        }
        self.vs.crash_reset(node);
        self.seen_msgs[node.index()].clear();
        self.vox_backoff[node.index()] = Backoff::new();
        self.vox_decliners[node.index()].clear();
        // Guard state is volatile by design: a rebooted peer returns with
        // fresh budgets and no strikes or quarantine history.
        self.guard.crash_reset(node);
        self.faults.counters_mut().crash_restarts += 1;
    }

    fn publish_due_moderations(&mut self) {
        for (k, spec) in self.setup.moderators.clone().into_iter().enumerate() {
            if !self.published[k] && spec.publish_at <= self.now && self.is_online(spec.moderator) {
                self.mc.publish(
                    &self.registry,
                    spec.moderator,
                    spec.swarm,
                    spec.quality,
                    self.now,
                );
                self.published[k] = true;
            }
        }
    }

    fn cast_due_votes(&mut self) {
        for (k, spec) in self.setup.voters.clone().into_iter().enumerate() {
            if self.vote_cast[k] {
                continue;
            }
            // A voter casts only once it has received one of the
            // moderator's items via dissemination.
            if self.mc.db(spec.voter).has_items_from(spec.moderator) {
                self.mc
                    .set_opinion(spec.voter, spec.moderator, spec.vote, self.now);
                self.vote_cast[k] = true;
            }
        }
    }

    /// A full protocol encounter between online nodes `i` (active) and
    /// `j`. With the guard plane disabled this is the exact legacy
    /// exchange; with it enabled, every sub-message crosses a typed
    /// validation gate and the sender's rate budget first.
    fn encounter(&mut self, i: NodeId, j: NodeId) {
        if self.guard.enabled() {
            self.encounter_guarded(i, j);
        } else {
            self.encounter_plain(i, j);
        }
    }

    /// The legacy ungated encounter (guard plane disabled).
    fn encounter_plain(&mut self, i: NodeId, j: NodeId) {
        // BarterCast: refresh own records, then swap them.
        self.bc.sync_own_records(i, self.net.ledger());
        self.bc.sync_own_records(j, self.net.ledger());
        self.bc.exchange(i, j);

        // ModerationCast push/pull.
        self.mc
            .exchange(&self.registry, i, j, self.now, &mut self.rng_gossip);

        // Vote sampling: experience computed before any merge.
        let e_i_accepts_j = self.experienced(i, j);
        let e_j_accepts_i = self.experienced(j, i);
        // Audit pre-state: votes each side currently holds from the other.
        let pre = self.audit.is_some().then(|| {
            (
                votes_from(self.vs.ballot(i), j),
                votes_from(self.vs.ballot(j), i),
            )
        });
        let list_i = self.outgoing_vote_list(i);
        let list_j = self.outgoing_vote_list(j);
        self.vs
            .deliver_vote_list(j, i, &list_j, self.now, e_i_accepts_j);
        self.vs
            .deliver_vote_list(i, j, &list_i, self.now, e_j_accepts_i);

        // VoxPopuli bootstrap: crowd members answer with fabricated lists;
        // honest nodes follow Fig 3c.
        let mut vox_breach = false;
        if self.cfg.vox_enabled && !self.is_crowd(i) && self.vs.needs_bootstrap(i) {
            if self.is_crowd(j) {
                let crowd = self.crowd.as_ref().expect("crowd member implies crowd");
                let list = crowd.topk_response(&[], self.cfg.votes.k);
                self.vs.deliver_external_topk(i, list);
            } else if let Some(rc) = self.faults.config().retry {
                // Graceful degradation under faults: requests are gated by
                // capped exponential backoff, and recent decliners are
                // skipped (responder rotation) so a bootstrapping node does
                // not hammer the same unhelpful peer.
                let idx = i.index();
                if self.vox_backoff[idx].ready(self.now) && !self.vox_decliners[idx].contains(&j) {
                    let j_bootstrapping = self.vs.needs_bootstrap(j);
                    self.vox_backoff[idx].on_attempt(self.now, &rc);
                    let answered = self.vs.vox_request(i, j);
                    vox_breach = answered && j_bootstrapping;
                    if answered {
                        self.vox_backoff[idx].on_success();
                        self.vox_decliners[idx].clear();
                    } else {
                        let decliners = &mut self.vox_decliners[idx];
                        decliners.insert(j);
                        while decliners.len() > DECLINER_WINDOW {
                            decliners.pop_first();
                        }
                        match self.vox_backoff[idx].on_failure(self.now, &rc) {
                            BackoffDecision::Retry => self.faults.counters_mut().retries += 1,
                            BackoffDecision::GaveUp => {
                                // The round is abandoned; after a cooldown a
                                // fresh round may query anyone again.
                                self.faults.counters_mut().backoff_gaveups += 1;
                                self.vox_decliners[idx].clear();
                            }
                        }
                    }
                }
            } else {
                // Retry-free legacy path: ask whoever the encounter offers.
                let j_bootstrapping = self.vs.needs_bootstrap(j);
                let answered = self.vs.vox_request(i, j);
                vox_breach = answered && j_bootstrapping;
            }
        }

        if let Some((pre_j_in_i, pre_i_in_j)) = pre {
            self.audit_encounter(
                i,
                j,
                (e_i_accepts_j, e_j_accepts_i),
                (pre_j_in_i, pre_i_in_j),
                (true, true),
                vox_breach,
            );
        }
    }

    /// The gated encounter (guard plane enabled). Structure mirrors
    /// [`System::encounter_plain`], but each sub-message first crosses
    /// the wire (where an armed [`Malformer`] may corrupt it), then the
    /// sender's admission budget, then the class's typed validation gate;
    /// only accepted messages reach the protocol layer, and each
    /// rejection is attributed to exactly one [`RejectReason`] counter.
    /// The responding half of an exchange runs only when the initiating
    /// half was accepted — a peer does not answer a message it refused.
    fn encounter_guarded(&mut self, i: NodeId, j: NodeId) {
        // BarterCast: refresh own records, then swap them, each
        // direction gated.
        self.bc.sync_own_records(i, self.net.ledger());
        self.bc.sync_own_records(j, self.net.ledger());
        self.bc.mark_exchange();
        if self.deliver_barter_half(i, j) {
            self.deliver_barter_half(j, i);
        }

        // ModerationCast push/pull (extraction order matches the plain
        // path: i's list first, then j's, both from the gossip stream).
        let mods_i = self.mc.extract_from(i, &mut self.rng_gossip);
        let mods_j = self.mc.extract_from(j, &mut self.rng_gossip);
        if self.deliver_moderations_half(i, j, mods_i) {
            self.deliver_moderations_half(j, i, mods_j);
        }

        // Vote sampling: experience computed before any merge.
        let e_i_accepts_j = self.experienced(i, j);
        let e_j_accepts_i = self.experienced(j, i);
        let pre = self.audit.is_some().then(|| {
            (
                votes_from(self.vs.ballot(i), j),
                votes_from(self.vs.ballot(j), i),
            )
        });
        let list_i = self.outgoing_vote_list(i);
        let list_j = self.outgoing_vote_list(j);
        let votes_i_to_j = self.deliver_votes_half(i, j, list_i, e_j_accepts_i);
        let votes_j_to_i = votes_i_to_j && self.deliver_votes_half(j, i, list_j, e_i_accepts_j);

        // VoxPopuli bootstrap, with the response intercepted on the wire
        // and gated like any other inbound message.
        let mut vox_breach = false;
        if self.cfg.vox_enabled && !self.is_crowd(i) && self.vs.needs_bootstrap(i) {
            if self.is_crowd(j) {
                let crowd = self.crowd.as_ref().expect("crowd member implies crowd");
                let list = crowd.topk_response(&[], self.cfg.votes.k);
                self.deliver_topk_half(i, j, list);
            } else if let Some(rc) = self.faults.config().retry {
                // Same backoff/rotation degradation as the plain path; a
                // gate rejection reads as an unhelpful responder.
                let idx = i.index();
                if self.vox_backoff[idx].ready(self.now) && !self.vox_decliners[idx].contains(&j) {
                    let j_bootstrapping = self.vs.needs_bootstrap(j);
                    self.vox_backoff[idx].on_attempt(self.now, &rc);
                    let answered = self.vox_exchange_guarded(i, j);
                    vox_breach = answered && j_bootstrapping;
                    if answered {
                        self.vox_backoff[idx].on_success();
                        self.vox_decliners[idx].clear();
                    } else {
                        let decliners = &mut self.vox_decliners[idx];
                        decliners.insert(j);
                        while decliners.len() > DECLINER_WINDOW {
                            decliners.pop_first();
                        }
                        match self.vox_backoff[idx].on_failure(self.now, &rc) {
                            BackoffDecision::Retry => self.faults.counters_mut().retries += 1,
                            BackoffDecision::GaveUp => {
                                self.faults.counters_mut().backoff_gaveups += 1;
                                self.vox_decliners[idx].clear();
                            }
                        }
                    }
                }
            } else {
                let j_bootstrapping = self.vs.needs_bootstrap(j);
                let answered = self.vox_exchange_guarded(i, j);
                vox_breach = answered && j_bootstrapping;
            }
        }

        if let Some((pre_j_in_i, pre_i_in_j)) = pre {
            self.audit_encounter(
                i,
                j,
                (e_i_accepts_j, e_j_accepts_i),
                (pre_j_in_i, pre_i_in_j),
                (votes_j_to_i, votes_i_to_j),
                vox_breach,
            );
        }
    }

    /// Pass one outbound payload across the (possibly hostile) wire:
    /// when the malformer is armed it draws once per message and may
    /// corrupt it in place via `mutate`.
    fn cross_wire<T>(
        &mut self,
        payload: &mut T,
        mutate: impl FnOnce(&Malformer, &mut T, SimTime, &mut DetRng) -> bool,
    ) {
        if let Some(m) = self.malformer {
            if m.should_mutate(&mut self.rng_malform)
                && mutate(&m, payload, self.now, &mut self.rng_malform)
            {
                self.guard.counters_mut().malformer_mutations += 1;
            }
        }
    }

    /// One gated BarterCast half: `s`'s own records into `r`. Returns
    /// whether the message was accepted.
    fn deliver_barter_half(&mut self, s: NodeId, r: NodeId) -> bool {
        let mut recs = self.bc.own_records(s);
        self.cross_wire(&mut recs, |m, p, _, rng| m.mutate_records(p, s, rng));
        if let Err(reason) = self.guard.admit(s, MessageClass::BarterRecords, self.now) {
            self.guard.note_rejection(s, reason, self.now);
            return false;
        }
        // An honest record set holds at most two directed edges per
        // counterparty, hence the 2n length bound.
        let max_kib = self.guard.config().max_record_kib;
        match validate_records(&recs, s, 2 * self.n_total, self.n_total, max_kib) {
            Ok(()) => {
                self.guard.note_accepted();
                self.bc.deliver_records(r, s, &recs);
                true
            }
            Err(reason) => {
                self.guard.note_rejection(s, reason, self.now);
                false
            }
        }
    }

    /// One gated ModerationCast half: `s`'s extracted list into `r`.
    /// Returns whether the message was accepted.
    fn deliver_moderations_half(
        &mut self,
        s: NodeId,
        r: NodeId,
        mut list: Vec<rvs_modcast::Moderation>,
    ) -> bool {
        self.cross_wire(&mut list, |m, p, now, rng| {
            m.mutate_moderations(p, now, rng)
        });
        if let Err(reason) = self.guard.admit(s, MessageClass::Moderations, self.now) {
            self.guard.note_rejection(s, reason, self.now);
            return false;
        }
        let skew = self.guard.config().max_timestamp_skew;
        match validate_moderation_list(
            &list,
            &self.registry,
            self.cfg.modcast.max_list,
            self.n_total,
            self.now,
            skew,
        ) {
            Ok(()) => {
                self.guard.note_accepted();
                self.mc.deliver_list(&self.registry, r, &list, self.now);
                true
            }
            Err(reason) => {
                self.guard.note_rejection(s, reason, self.now);
                false
            }
        }
    }

    /// One gated vote-list half: `s`'s local votes into `r`'s ballot
    /// (`experienced` is `E_r(s)`). Returns whether the message was
    /// accepted by the gate — the experience function then decides the
    /// merge, exactly as on the plain path.
    fn deliver_votes_half(
        &mut self,
        s: NodeId,
        r: NodeId,
        mut list: Vec<VoteEntry>,
        experienced: bool,
    ) -> bool {
        self.cross_wire(&mut list, |m, p, now, rng| m.mutate_votes(p, now, rng));
        if let Err(reason) = self.guard.admit(s, MessageClass::VoteList, self.now) {
            self.guard.note_rejection(s, reason, self.now);
            return false;
        }
        let gcfg = *self.guard.config();
        match validate_vote_list(
            &list,
            self.n_total,
            self.n_total,
            self.now,
            gcfg.max_timestamp_skew,
            gcfg.replay_window,
        ) {
            Ok(()) => {
                self.guard.note_accepted();
                self.vs
                    .deliver_vote_list(s, r, &list, self.now, experienced);
                true
            }
            Err(reason) => {
                self.guard.note_rejection(s, reason, self.now);
                false
            }
        }
    }

    /// One gated top-K response from `s` to bootstrapping `r` with an
    /// explicit (external or fabricated) list. Returns whether it was
    /// accepted and delivered.
    fn deliver_topk_half(&mut self, r: NodeId, s: NodeId, mut list: rvs_core::TopKList) -> bool {
        self.cross_wire(&mut list, |m, p, _, rng| m.mutate_topk(p, rng));
        if let Err(reason) = self.guard.admit(s, MessageClass::TopK, self.now) {
            self.guard.note_rejection(s, reason, self.now);
            return false;
        }
        match validate_topk(&list, self.cfg.votes.k, self.n_total) {
            Ok(()) => {
                self.guard.note_accepted();
                self.vs.deliver_external_topk(r, list);
                true
            }
            Err(reason) => {
                self.guard.note_rejection(s, reason, self.now);
                false
            }
        }
    }

    /// A guarded honest VoxPopuli round trip: `j`'s top-K response is
    /// intercepted on the wire and gated before delivery. Returns whether
    /// a valid response reached `i` (declines and gate rejections both
    /// read as "not answered" to the backoff logic).
    fn vox_exchange_guarded(&mut self, i: NodeId, j: NodeId) -> bool {
        match self.vs.topk_response(j) {
            Some(list) => self.deliver_topk_half(i, j, list),
            None => {
                self.vs.note_vox_decline();
                false
            }
        }
    }

    /// Extra gossip initiations from the flooding crowd, after the honest
    /// plan. Flood traffic uses each flooder's own send lane and the
    /// normal fault-plane path — loss, partitions, retries, and the
    /// conservation identity all apply.
    fn run_flooder_sends(&mut self) {
        let Some(f) = &self.flooder else { return };
        let per_round = f.per_round();
        let members: Vec<NodeId> = f.members().filter(|m| m.index() < self.n_total).collect();
        for m in members {
            if !self.is_online(m) {
                continue;
            }
            for _ in 0..per_round {
                self.guard.counters_mut().flooder_sends += 1;
                self.enc.attempted += 1;
                let Some(j) = self.pss.sample_from(m, &mut self.send_rng[m.index()]) else {
                    self.enc.dropped_no_sample += 1;
                    continue;
                };
                if j == m {
                    self.enc.dropped_self_target += 1;
                    continue;
                }
                if !self.is_online(j) {
                    self.enc.dropped_offline_target += 1;
                    continue;
                }
                self.dispatch(m, j, 1);
            }
        }
    }

    /// A peer released from quarantine gets what it previously deposited
    /// re-validated: with [`VoteSamplingConfig::revalidate`] set, every
    /// evaluator that no longer finds the peer experienced sheds the
    /// peer's votes from its ballot — acceptance during good standing is
    /// not a permanent grant.
    ///
    /// [`VoteSamplingConfig::revalidate`]: rvs_core::VoteSamplingConfig
    fn revalidate_released(&mut self, q: NodeId) {
        self.guard.counters_mut().release_revalidations += 1;
        if !self.cfg.votes.revalidate {
            return;
        }
        for idx in 0..self.n_total {
            let i = NodeId::from_index(idx);
            if i == q {
                continue;
            }
            if votes_from(self.vs.ballot(i), q) > 0 && !self.experienced(i, q) {
                self.vs.ballot_mut(i).forget_voter(q);
                self.guard.counters_mut().release_forgets += 1;
            }
        }
    }

    /// Post-encounter invariant checks (audit mode only): ballot bound,
    /// experience gating, and VoxPopuli bootstrap honesty. `delivered`
    /// marks which vote lists actually crossed the guard gate
    /// (`(j→i, i→j)`; both true on the ungated path) — the gating checks
    /// only constrain halves that were delivered.
    fn audit_encounter(
        &mut self,
        i: NodeId,
        j: NodeId,
        (e_i_accepts_j, e_j_accepts_i): (bool, bool),
        (pre_j_in_i, pre_i_in_j): (usize, usize),
        (delivered_j_to_i, delivered_i_to_j): (bool, bool),
        vox_breach: bool,
    ) {
        let b_max = self.cfg.votes.b_max;
        let revalidate = self.cfg.votes.revalidate;
        let now = self.now;
        let post_j_in_i = votes_from(self.vs.ballot(i), j);
        let post_i_in_j = votes_from(self.vs.ballot(j), i);
        let uv_i = self.vs.ballot(i).unique_voters();
        let uv_j = self.vs.ballot(j).unique_voters();
        let aud = self.audit.as_mut().expect("caller checked audit is on");
        aud.check(uv_i <= b_max, || {
            format!("{i}'s ballot holds {uv_i} unique voters > B_max {b_max} at {now}")
        });
        aud.check(uv_j <= b_max, || {
            format!("{j}'s ballot holds {uv_j} unique voters > B_max {b_max} at {now}")
        });
        // A rejected sender must not add votes: untouched without
        // revalidation, shed entirely with it.
        if delivered_j_to_i && !e_i_accepts_j {
            let ok = if revalidate {
                post_j_in_i == 0
            } else {
                post_j_in_i == pre_j_in_i
            };
            aud.check(ok, || {
                format!(
                    "inexperienced {j}'s votes in {i}'s ballot went \
                     {pre_j_in_i} -> {post_j_in_i} at {now}"
                )
            });
        }
        if delivered_i_to_j && !e_j_accepts_i {
            let ok = if revalidate {
                post_i_in_j == 0
            } else {
                post_i_in_j == pre_i_in_j
            };
            aud.check(ok, || {
                format!(
                    "inexperienced {i}'s votes in {j}'s ballot went \
                     {pre_i_in_j} -> {post_i_in_j} at {now}"
                )
            });
        }
        aud.check(!vox_breach, || {
            format!("bootstrapping {j} answered {i}'s VoxPopuli request at {now}")
        });
    }

    fn outgoing_vote_list(&mut self, node: NodeId) -> Vec<VoteEntry> {
        if self.is_crowd(node) {
            self.crowd
                .as_ref()
                .expect("crowd member implies crowd")
                .vote_list()
        } else {
            self.vs.vote_list_of(node, &self.mc, &mut self.rng_gossip)
        }
    }

    fn observe_dispersion(&mut self) {
        let adaptive = self.adaptive.as_mut().expect("caller checked");
        for (idx, threshold) in adaptive.iter_mut().take(self.n_trace).enumerate() {
            let node = NodeId::from_index(idx);
            if self.net.is_online(node) {
                let d = self.vs.ballot(node).dispersion();
                threshold.observe_dispersion(d);
            }
        }
    }

    /// Current adaptive thresholds (ablation A1), if enabled.
    pub fn adaptive_thresholds(&self) -> Option<&[AdaptiveThreshold]> {
        self.adaptive.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::vote_sampling::fig6_setup;
    use rvs_core::Vote;
    use rvs_sim::SimDuration;
    use rvs_trace::TraceGenConfig;

    /// Satellite regression: accept → quarantine → release. A vote list
    /// accepted before its sender was quarantined must be re-validated
    /// when the quarantine lifts — with `revalidate` on, entries no
    /// first-hand experience backs are shed and the shedding is
    /// attributed to `release_forgets`.
    #[test]
    fn quarantine_release_revalidates_unbacked_votes() {
        let seed = 9;
        let trace = TraceGenConfig::quick(8, SimDuration::from_hours(2)).generate(seed);
        let (setup, moderators) = fig6_setup(&trace, 0.25, 0.25, seed);
        let mut protocol = ProtocolConfig {
            experience_t_mib: 1.0,
            ..ProtocolConfig::default()
        };
        protocol.votes.revalidate = true;
        let mut system = System::new(trace, protocol, setup, seed);
        system.set_guard_config(GuardConfig::active());

        let observer = NodeId::from_index(0);
        let suspect = NodeId::from_index(5);
        // Accept: the suspect's list lands in the observer's ballot. The
        // delivery-time experience flag was true, but no transfer backs
        // it, so the post-release re-validation must find nothing
        // first-hand and shed the voter.
        let list = [VoteEntry {
            moderator: moderators[0],
            vote: Vote::Positive,
            made_at: system.now,
        }];
        system
            .vs
            .deliver_vote_list(suspect, observer, &list, system.now, true);
        assert_eq!(votes_from(system.vs.ballot(observer), suspect), 1);

        // Quarantine: strike the suspect up to the threshold.
        for _ in 0..system.guard.config().strike_threshold {
            system
                .guard
                .note_rejection(suspect, RejectReason::RateLimited, system.now);
        }
        assert!(system.guard.is_quarantined(suspect, system.now));
        assert_eq!(system.guard.counters().quarantines_started, 1);

        // Release: advance past the base quarantine and run the
        // per-round maintenance hook exactly as `gossip_round` does.
        system.now = system.now.saturating_add(SimDuration::from_hours(8));
        let released = system.guard.on_round(system.now);
        assert_eq!(released, vec![suspect]);
        for peer in released {
            system.revalidate_released(peer);
        }

        assert_eq!(
            votes_from(system.vs.ballot(observer), suspect),
            0,
            "unbacked votes must be shed on release"
        );
        assert_eq!(system.guard.counters().quarantines_released, 1);
        assert_eq!(system.guard.counters().release_revalidations, 1);
        assert_eq!(system.guard.counters().release_forgets, 1);
    }

    /// Without `revalidate`, release keeps previously accepted votes —
    /// the shedding is an explicit opt-in policy, not a side effect.
    #[test]
    fn quarantine_release_keeps_votes_without_revalidate() {
        let seed = 9;
        let trace = TraceGenConfig::quick(8, SimDuration::from_hours(2)).generate(seed);
        let (setup, moderators) = fig6_setup(&trace, 0.25, 0.25, seed);
        let protocol = ProtocolConfig {
            experience_t_mib: 1.0,
            ..ProtocolConfig::default()
        };
        let mut system = System::new(trace, protocol, setup, seed);
        system.set_guard_config(GuardConfig::active());

        let observer = NodeId::from_index(0);
        let suspect = NodeId::from_index(5);
        let list = [VoteEntry {
            moderator: moderators[0],
            vote: Vote::Positive,
            made_at: system.now,
        }];
        system
            .vs
            .deliver_vote_list(suspect, observer, &list, system.now, true);

        for _ in 0..system.guard.config().strike_threshold {
            system
                .guard
                .note_rejection(suspect, RejectReason::RateLimited, system.now);
        }
        system.now = system.now.saturating_add(SimDuration::from_hours(8));
        for peer in system.guard.on_round(system.now) {
            system.revalidate_released(peer);
        }

        assert_eq!(votes_from(system.vs.ballot(observer), suspect), 1);
        assert_eq!(system.guard.counters().release_revalidations, 1);
        assert_eq!(system.guard.counters().release_forgets, 0);
    }
}
