//! Runtime invariant auditing.
//!
//! An [`Auditor`] rides along inside [`crate::System`] (opt-in via
//! [`crate::System::enable_audit`]) and re-checks, after every encounter
//! and every gossip round, the invariants the protocol stack promises:
//!
//! * **Conservation** — every gossip initiation is accounted for exactly
//!   once: `attempted == delivered + dropped_no_sample +
//!   dropped_offline_target + dropped_self_target + dropped_message_loss`.
//! * **Ballot bound** — no ballot box ever samples more than `B_max`
//!   unique voters.
//! * **Experience gating** — a sender that fails the receiver's experience
//!   function never *adds* votes to that receiver's ballot (under
//!   revalidation its earlier votes must be shed entirely).
//! * **VoxPopuli honesty** — a node that is itself bootstrapping never
//!   serves a top-K response.
//! * **Contribution-cache coherence** — each round a random subset of
//!   BarterCast's cached `f_{j→i}` values is re-derived from the subjective
//!   graph by a cache-free maxflow and must match byte-for-byte (sampled,
//!   because re-deriving every pair would defeat the cache being audited).
//!
//! Violations are collected as human-readable strings rather than panicking
//! in place, so a failing run can report every breach at once; the
//! integration tests assert that the list stays empty.

/// Collects invariant violations observed while a [`crate::System`] runs.
#[derive(Debug, Default)]
pub struct Auditor {
    violations: Vec<String>,
    checks: u64,
}

/// Cap on stored violation messages — a systemic breach would otherwise
/// allocate without bound over a long run. The count keeps incrementing.
const MAX_RECORDED: usize = 64;

impl Auditor {
    /// A fresh auditor with no observations.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Every violation message recorded so far (capped at 64 entries).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Total number of individual invariant checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// True when no invariant has been breached.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Record one check; `msg` is only rendered when the check fails.
    pub(crate) fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok && self.violations.len() < MAX_RECORDED {
            self.violations.push(msg());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_checks_record_nothing() {
        let mut a = Auditor::new();
        a.check(true, || unreachable!("message must not be rendered"));
        assert!(a.is_clean());
        assert_eq!(a.checks(), 1);
    }

    #[test]
    fn failing_checks_are_reported() {
        let mut a = Auditor::new();
        a.check(false, || "boom".to_string());
        assert!(!a.is_clean());
        assert_eq!(a.violations(), ["boom".to_string()]);
    }

    #[test]
    fn recorded_violations_are_capped() {
        let mut a = Auditor::new();
        for k in 0..1000 {
            a.check(false, || format!("v{k}"));
        }
        assert_eq!(a.violations().len(), MAX_RECORDED);
        assert_eq!(a.checks(), 1000);
    }
}
