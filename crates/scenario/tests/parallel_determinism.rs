//! Thread-count independence: `parallel_runs` must produce byte-identical
//! telemetry no matter how many workers execute the runs. Each run's counter
//! snapshot is serialized to compact JSON and compared byte-for-byte between
//! a single-threaded and a multi-threaded execution of the same workload.

use proptest::prelude::*;
use rvs_scenario::experiments::parallel::parallel_runs;
use rvs_scenario::experiments::vote_sampling::fig6_setup;
use rvs_scenario::{ProtocolConfig, System};
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

/// One small full-stack run; returns the compact-JSON counter snapshot
/// (phase timings stripped — they are wall-clock, not deterministic).
fn run_snapshot_json(base_seed: u64, run: usize) -> String {
    let seed = base_seed + run as u64;
    let trace = TraceGenConfig::quick(12, SimDuration::from_hours(8)).generate(seed);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, seed);
    system.run_until(
        SimTime::from_hours(8),
        SimDuration::from_hours(8),
        |_, _| {},
    );
    system
        .telemetry_snapshot()
        .counters_only()
        .to_json_compact()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn snapshots_identical_across_thread_counts(base_seed in 0u64..10_000) {
        let runs = 3;
        let serial = parallel_runs(runs, 1, |r| run_snapshot_json(base_seed, r));
        let threaded = parallel_runs(runs, 4, |r| run_snapshot_json(base_seed, r));
        prop_assert_eq!(&serial, &threaded, "snapshots differ across thread counts");
        // Sanity: the runs actually counted something.
        for json in &serial {
            let snap = rvs_telemetry::Snapshot::from_json(json).unwrap();
            prop_assert!(snap.encounters.attempted > 0);
        }
    }
}
