#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! BallotBox merge/evict and ranking throughput at the paper's operating
//! point (B_max = 100) and above.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rvs_core::{rank_ballot, BallotBox, Vote, VoteEntry};
use rvs_sim::{DetRng, NodeId, SimTime};

fn vote_list(rng: &mut DetRng, moderators: u32, len: usize) -> Vec<VoteEntry> {
    let mut list = Vec::with_capacity(len);
    let mut seen = std::collections::BTreeSet::new();
    while list.len() < len {
        let m = rng.below(moderators as u64) as u32;
        if seen.insert(m) {
            list.push(VoteEntry {
                moderator: NodeId(m),
                vote: if rng.chance(0.8) {
                    Vote::Positive
                } else {
                    Vote::Negative
                },
                made_at: SimTime::from_secs(rng.below(1_000)),
            });
        }
    }
    list
}

fn bench_ballot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ballot");
    for &b_max in &[100usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("merge_churn", b_max),
            &b_max,
            |b, &b_max| {
                let mut rng = DetRng::new(1);
                // Pre-generate voter lists so only merge cost is measured.
                let lists: Vec<(NodeId, Vec<VoteEntry>)> = (0..2_000u32)
                    .map(|v| (NodeId(v), vote_list(&mut rng, 50, 10)))
                    .collect();
                b.iter(|| {
                    let mut bb = BallotBox::new(b_max);
                    for (i, (voter, list)) in lists.iter().enumerate() {
                        bb.merge(*voter, list, SimTime::from_secs(i as u64));
                    }
                    black_box(bb.unique_voters())
                });
            },
        );
    }
    group.bench_function("rank_100_voters_50_moderators", |b| {
        let mut rng = DetRng::new(2);
        let mut bb = BallotBox::new(100);
        for v in 0..100u32 {
            let list = vote_list(&mut rng, 50, 20);
            bb.merge(NodeId(v), &list, SimTime::from_secs(v as u64));
        }
        b.iter(|| black_box(rank_ballot(&bb, 10)));
    });
    group.finish();
}

criterion_group!(benches, bench_ballot);
criterion_main!(benches);
