//! BarterCast contribution queries: 2-hop closed form and general
//! bounded Edmonds–Karp on random subjective graphs of growing size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rvs_bartercast::maxflow::max_flow_bounded;
use rvs_bartercast::SubjectiveGraph;
use rvs_sim::{DetRng, NodeId};

fn random_graph(nodes: u32, edges: usize, seed: u64) -> SubjectiveGraph {
    let mut rng = DetRng::new(seed);
    let mut g = SubjectiveGraph::new();
    while g.edge_count() < edges {
        let f = rng.below(nodes as u64) as u32;
        let t = rng.below(nodes as u64) as u32;
        if f != t {
            g.insert_report(NodeId(f), NodeId(f), NodeId(t), 1 + rng.below(10_000));
        }
    }
    g
}

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow");
    for &(nodes, edges) in &[(50u32, 200usize), (100, 1_000), (200, 4_000)] {
        let g = random_graph(nodes, edges, 7);
        group.bench_with_input(
            BenchmarkId::new("two_hop_closed_form", format!("{nodes}n_{edges}e")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut total = 0u64;
                    for j in 1..20 {
                        total += max_flow_bounded(g, NodeId(j), NodeId(0), 2);
                    }
                    black_box(total)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("three_hop_edmonds_karp", format!("{nodes}n_{edges}e")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut total = 0u64;
                    for j in 1..20 {
                        total += max_flow_bounded(g, NodeId(j), NodeId(0), 3);
                    }
                    black_box(total)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maxflow);
criterion_main!(benches);
