#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! BarterCast contribution queries: 2-hop closed form and general
//! bounded Edmonds–Karp on random subjective graphs of growing size, plus
//! the incremental contribution cache under repeat queries and churn, and
//! a fig6-style end-to-end run with the cache on vs off.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rvs_bartercast::maxflow::max_flow_bounded;
use rvs_bartercast::{BarterCast, BarterCastConfig, Record, SubjectiveGraph};
use rvs_scenario::experiments::vote_sampling::fig6_setup;
use rvs_scenario::{ProtocolConfig, System};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

fn random_graph(nodes: u32, edges: usize, seed: u64) -> SubjectiveGraph {
    let mut rng = DetRng::new(seed);
    let mut g = SubjectiveGraph::new();
    while g.edge_count() < edges {
        let f = rng.below(nodes as u64) as u32;
        let t = rng.below(nodes as u64) as u32;
        if f != t {
            g.insert_report(NodeId(f), NodeId(f), NodeId(t), 1 + rng.below(10_000));
        }
    }
    g
}

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow");
    for &(nodes, edges) in &[(50u32, 200usize), (100, 1_000), (200, 4_000)] {
        let g = random_graph(nodes, edges, 7);
        group.bench_with_input(
            BenchmarkId::new("two_hop_closed_form", format!("{nodes}n_{edges}e")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut total = 0u64;
                    for j in 1..20 {
                        total += max_flow_bounded(g, NodeId(j), NodeId(0), 2);
                    }
                    black_box(total)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("three_hop_edmonds_karp", format!("{nodes}n_{edges}e")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut total = 0u64;
                    for j in 1..20 {
                        total += max_flow_bounded(g, NodeId(j), NodeId(0), 3);
                    }
                    black_box(total)
                });
            },
        );
    }
    group.finish();
}

/// A `BarterCast` whose node-0 subjective graph carries `edges` random
/// reports (reporter = the uploader, so every report is accepted).
fn populated_bartercast(nodes: u32, edges: usize, cfg: BarterCastConfig) -> BarterCast {
    let mut bc = BarterCast::new(nodes as usize, cfg);
    let mut rng = DetRng::new(11);
    let mut installed = 0;
    while installed < edges {
        let f = NodeId(rng.below(nodes as u64) as u32);
        let t = NodeId(rng.below(nodes as u64) as u32);
        let rec = Record {
            from: f,
            to: t,
            kib: 1 + rng.below(10_000),
        };
        if f != t && bc.inject_report(NodeId(0), f, rec) {
            installed += 1;
        }
    }
    bc
}

fn bench_contribution_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("contribution_cache");
    let (nodes, edges) = (100u32, 1_000usize);
    let peers: Vec<NodeId> = (1..20).map(NodeId).collect();

    // Repeat queries against an unchanged graph: after the first pass every
    // lookup is a cache hit.
    let warm = populated_bartercast(nodes, edges, BarterCastConfig::default());
    group.bench_function(BenchmarkId::new("repeat_queries", "cached"), |b| {
        b.iter(|| black_box(warm.contributions_kib(NodeId(0), &peers)));
    });
    let cold = populated_bartercast(nodes, edges, BarterCastConfig::default().without_cache());
    group.bench_function(BenchmarkId::new("repeat_queries", "uncached"), |b| {
        b.iter(|| black_box(cold.contributions_kib(NodeId(0), &peers)));
    });

    // Churn: each iteration installs one fresh report (bumping the epoch)
    // before querying the row, so the cached path pays reconciliation plus
    // the recomputation of whatever the fine-grained rules evicted.
    for cached in [true, false] {
        let cfg = if cached {
            BarterCastConfig::default()
        } else {
            BarterCastConfig::default().without_cache()
        };
        let mut bc = populated_bartercast(nodes, edges, cfg);
        let mut rng = DetRng::new(23);
        let mut kib = 10_001u64;
        group.bench_function(
            BenchmarkId::new("churn", if cached { "cached" } else { "uncached" }),
            |b| {
                b.iter(|| {
                    let f = NodeId(1 + rng.below(nodes as u64 - 1) as u32);
                    kib += 1;
                    let rec = Record {
                        from: f,
                        to: NodeId(0),
                        kib,
                    };
                    bc.inject_report(NodeId(0), f, rec);
                    black_box(bc.contributions_kib(NodeId(0), &peers))
                });
            },
        );
    }
    group.finish();
}

/// Fig6-style full-stack run, cache on vs off: the end-to-end win of
/// memoizing `f_{j→i}` across gossip rounds.
fn bench_endtoend_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("vote_sampling_cache");
    group.sample_size(10);
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(6)).generate(5);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 5);
    for cached in [true, false] {
        let protocol = if cached {
            ProtocolConfig::default()
        } else {
            ProtocolConfig::default().without_contribution_cache()
        };
        group.bench_function(
            BenchmarkId::new(
                "fullstack_16peers_6h",
                if cached { "cached" } else { "uncached" },
            ),
            |b| {
                b.iter(|| {
                    let mut system = System::new(trace.clone(), protocol, setup.clone(), 5);
                    system.run_until(
                        SimTime::from_hours(6),
                        SimDuration::from_hours(6),
                        |_, _| {},
                    );
                    black_box(system.ordering_accuracy(&m))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_maxflow,
    bench_contribution_cache,
    bench_endtoend_caching
);
criterion_main!(benches);
