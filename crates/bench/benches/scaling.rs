#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! Thread-scaling of the sharded round engine on the quick fig6 scenario.
//!
//! Before timing anything, the harness asserts the property that makes
//! the timings comparable at all: every thread count produces the same
//! telemetry bytes and the same bit-level accuracy as the 1-thread
//! baseline, so the sweep measures *only* wall-clock. Numbers are
//! recorded in EXPERIMENTS.md; note that scaling is bounded by the
//! serial apply/merge phase (Amdahl) and by the host's physical cores —
//! on a single-core host the >1-thread legs measure pure overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rvs_scenario::experiments::vote_sampling::fig6_setup;
use rvs_scenario::{ProtocolConfig, System};
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn run(
    trace: &rvs_trace::Trace,
    setup: &rvs_scenario::ScenarioSetup,
    threads: usize,
) -> (String, u64) {
    let mut system = System::new(trace.clone(), ProtocolConfig::default(), setup.clone(), 5);
    system.set_threads(threads);
    system.run_until(
        SimTime::from_hours(6),
        SimDuration::from_hours(6),
        |_, _| {},
    );
    (
        system
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
        system.net().ledger().total_kib(),
    )
}

fn bench_scaling(c: &mut Criterion) {
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(6)).generate(5);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, 5);

    // Determinism gate: the sweep is meaningless (and unsafe to publish)
    // if thread count changed results, so fail loudly before timing.
    let baseline = run(&trace, &setup, 1);
    for t in THREADS {
        assert_eq!(
            run(&trace, &setup, t),
            baseline,
            "{t}-thread run diverged from the serial baseline"
        );
    }

    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for t in THREADS {
        group.bench_function(format!("fig6_16peers_6h_threads{t}"), |b| {
            b.iter(|| black_box(run(&trace, &setup, t).1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
