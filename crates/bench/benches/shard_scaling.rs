#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! Shard-scaling of the cross-shard message bus on the quick fig6
//! scenario.
//!
//! Before timing anything, the harness asserts the property that makes
//! the timings comparable at all: every shard count produces the same
//! telemetry bytes (modulo the `ShardCounters` transport block) and the
//! same ledger total as the monolithic baseline, so the sweep measures
//! *only* wall-clock. Numbers are recorded in EXPERIMENTS.md; note that
//! every planned send — shard-local or not — is serialized through the
//! canonical codec, so small-K speedups are bounded by that per-envelope
//! overhead plus the serial barrier drain (Amdahl), and on a small
//! population the >1-shard legs mostly measure bus overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rvs_scenario::experiments::vote_sampling::fig6_setup;
use rvs_scenario::{ProtocolConfig, System};
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

const SHARDS: [usize; 3] = [1, 2, 4];

fn run(
    trace: &rvs_trace::Trace,
    setup: &rvs_scenario::ScenarioSetup,
    shards: usize,
) -> (String, u64) {
    let mut system = System::new(trace.clone(), ProtocolConfig::default(), setup.clone(), 5);
    system.set_shards(shards);
    system.run_until(
        SimTime::from_hours(6),
        SimDuration::from_hours(6),
        |_, _| {},
    );
    (
        system
            .telemetry_snapshot()
            .counters_only()
            .modulo_shards()
            .to_json_compact(),
        system.net().ledger().total_kib(),
    )
}

fn bench_shard_scaling(c: &mut Criterion) {
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(6)).generate(5);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, 5);

    // Determinism gate: the sweep is meaningless (and unsafe to publish)
    // if shard count changed results, so fail loudly before timing.
    let baseline = run(&trace, &setup, 1);
    for k in SHARDS {
        assert_eq!(
            run(&trace, &setup, k),
            baseline,
            "{k}-shard run diverged from the monolithic baseline"
        );
    }

    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for k in SHARDS {
        group.bench_function(format!("fig6_16peers_6h_shards{k}"), |b| {
            b.iter(|| black_box(run(&trace, &setup, k).1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
