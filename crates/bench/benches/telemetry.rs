#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! Telemetry overhead: the same fig6-style full-stack run with telemetry
//! (phase timers) enabled vs disabled. Counters are always on by design —
//! an unconditional add is cheaper than a branch — so the only measurable
//! delta is the `Instant::now()` pair per timed phase. The acceptance bar
//! is < 5% wall-clock regression with telemetry enabled.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rvs_scenario::experiments::vote_sampling::fig6_setup;
use rvs_scenario::{ProtocolConfig, System};
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

fn fig6_run(enabled: bool) -> f64 {
    rvs_telemetry::set_enabled(enabled);
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(6)).generate(5);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 5);
    let mut system = System::new(trace, ProtocolConfig::default(), setup, 5);
    system.run_until(
        SimTime::from_hours(6),
        SimDuration::from_hours(6),
        |_, _| {},
    );
    let acc = system.ordering_accuracy(&m);
    rvs_telemetry::set_enabled(true);
    acc
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("fig6_16peers_6h_disabled", |b| {
        b.iter(|| black_box(fig6_run(false)));
    });
    group.bench_function("fig6_16peers_6h_enabled", |b| {
        b.iter(|| black_box(fig6_run(true)));
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
