#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! DES engine throughput: schedule/fire cycles through the event queue.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rvs_sim::{Engine, SimDuration, SimTime};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut eng: Engine<u32> = Engine::new();
                for i in 0..n {
                    eng.schedule_at(SimTime::from_millis((i % 977) as u64), i as u32);
                }
                let mut sum = 0u64;
                eng.run_to_completion(|_, _, v| sum += v as u64);
                black_box(sum)
            });
        });
    }
    group.bench_function("periodic_reschedule_100k", |b| {
        b.iter(|| {
            let mut eng: Engine<()> = Engine::new();
            eng.schedule_at(SimTime::ZERO, ());
            let mut fired = 0u64;
            eng.run_until(SimTime::from_secs(100_000), |eng, _, ()| {
                fired += 1;
                eng.schedule_in(SimDuration::from_secs(1), ());
            });
            black_box(fired)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
