#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! End-to-end cost: a scaled-down full-stack vote-sampling run (trace →
//! swarms → BarterCast → ModerationCast → BallotBox/VoxPopuli).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rvs_scenario::experiments::vote_sampling::fig6_setup;
use rvs_scenario::{ProtocolConfig, System};
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

fn bench_endtoend(c: &mut Criterion) {
    let mut group = c.benchmark_group("endtoend");
    group.sample_size(10);
    group.bench_function("fullstack_16peers_6h", |b| {
        let trace_cfg = TraceGenConfig::quick(16, SimDuration::from_hours(6));
        let trace = trace_cfg.generate(5);
        let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 5);
        b.iter(|| {
            let mut system =
                System::new(trace.clone(), ProtocolConfig::default(), setup.clone(), 5);
            system.run_until(
                SimTime::from_hours(6),
                SimDuration::from_hours(6),
                |_, _| {},
            );
            black_box(system.ordering_accuracy(&m))
        });
    });
    group.bench_function("bittorrent_only_16peers_6h", |b| {
        let trace_cfg = TraceGenConfig::quick(16, SimDuration::from_hours(6));
        let trace = trace_cfg.generate(5);
        b.iter(|| {
            let net = rvs_bittorrent::BitTorrentNet::run_trace(
                &trace,
                rvs_bittorrent::NetConfig::default(),
                5,
                SimDuration::from_hours(6),
                |_, _| {},
            );
            black_box(net.ledger().total_kib())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
