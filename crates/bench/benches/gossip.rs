#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! ModerationCast extract/merge throughput: the per-encounter cost of the
//! metadata dissemination protocol.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rvs_modcast::{ContentQuality, KeyRegistry, LocalVote, ModerationCast, ModerationCastConfig};
use rvs_sim::{DetRng, NodeId, SimTime, SwarmId};

fn populated(n: usize, items_per_mod: u32, seed: u64) -> (ModerationCast, KeyRegistry) {
    let mut mc = ModerationCast::new(n, ModerationCastConfig::default());
    let reg = KeyRegistry::new(n, seed);
    // A handful of moderators publish catalogues; everyone approves them
    // so extraction has plenty of eligible items.
    for m in 0..5u32 {
        for _ in 0..items_per_mod {
            mc.publish(
                &reg,
                NodeId(m),
                SwarmId(0),
                ContentQuality::Genuine,
                SimTime::ZERO,
            );
        }
        for i in 5..n {
            mc.set_opinion(
                NodeId::from_index(i),
                NodeId(m),
                LocalVote::Approve,
                SimTime::ZERO,
            );
        }
    }
    (mc, reg)
}

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("modcast");
    for &items in &[20u32, 100] {
        group.bench_with_input(
            BenchmarkId::new("exchange_round", items),
            &items,
            |b, &items| {
                let (mc0, reg) = populated(50, items, 3);
                b.iter(|| {
                    let mut mc = mc0.clone();
                    let mut rng = DetRng::new(9);
                    // Seed the graph: moderators push to a few nodes first.
                    for i in 0..50usize {
                        let j = (i + 1) % 50;
                        mc.exchange(
                            &reg,
                            NodeId::from_index(i),
                            NodeId::from_index(j),
                            SimTime::from_secs(i as u64),
                            &mut rng,
                        );
                    }
                    black_box(mc.coverage(NodeId(0)))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gossip);
criterion_main!(benches);
