#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! Full-workspace `rvs-lint` runtime: how long the whole static-analysis
//! pass (walk + lex + parse + token rules + structural rules +
//! cross-checks) takes over this repository. The lint runs on every
//! `cargo test` via the tier-1 gate and on every CI job, so its runtime
//! is developer-loop latency; this bench keeps it visible before it
//! quietly grows past "instant". A single-file case isolates per-file
//! cost (lex + parse + all rule families) from walk and I/O.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn bench_lint(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint_runtime");
    group.sample_size(10);
    let root = workspace_root();

    // Sanity: a broken root would make the timing meaningless.
    let report = rvs_lint::run(&root);
    assert_eq!(
        report.unjustified_count(),
        0,
        "bench precondition: the workspace must be lint-clean"
    );
    let files = rvs_lint::lintable_files(&root);
    assert!(
        files.len() > 100,
        "walk found too few files: {}",
        files.len()
    );

    group.bench_function("full_workspace", |b| {
        b.iter(|| black_box(rvs_lint::run(&root)).findings.len())
    });

    // Per-file cost on the largest source the walk visits, with I/O and
    // the walk itself excluded.
    let biggest = files
        .iter()
        .filter_map(|rel| {
            std::fs::read_to_string(root.join(rel))
                .ok()
                .map(|src| (rel.clone(), src))
        })
        .max_by_key(|(_, src)| src.len())
        .expect("at least one readable source file");
    group.bench_function("largest_single_file", |b| {
        b.iter(|| black_box(rvs_lint::check_source(&biggest.0, &biggest.1)).len())
    });

    group.finish();
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
