#![allow(missing_docs)] // criterion_group! generates undocumented public items

//! Fault-plane overhead: the same full-stack run with (a) no fault plane,
//! (b) an inert plane (every delivery consults `FaultPlane::decide`, zero
//! faults fire), and (c) a latency-jitter schedule that routes every
//! delivery through the event engine. (a) vs (b) is the zero-fault
//! overhead claim: the two must be within noise of each other.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rvs_faults::{FaultConfig, FaultSchedule};
use rvs_scenario::experiments::vote_sampling::fig6_setup;
use rvs_scenario::{ProtocolConfig, System};
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults");
    group.sample_size(10);
    let trace_cfg = TraceGenConfig::quick(16, SimDuration::from_hours(6));
    let trace = trace_cfg.generate(5);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 5);
    let protocol = ProtocolConfig::default();
    let jittery = FaultSchedule {
        config: FaultConfig {
            base_latency_ms: 5_000,
            jitter_spread: 1.0,
            ..FaultConfig::default()
        },
        ..FaultSchedule::default()
    };

    group.bench_function("no_plane_16peers_6h", |b| {
        b.iter(|| {
            let mut system = System::new(trace.clone(), protocol, setup.clone(), 5);
            system.run_until(
                SimTime::from_hours(6),
                SimDuration::from_hours(6),
                |_, _| {},
            );
            black_box(system.ordering_accuracy(&m))
        });
    });
    group.bench_function("inert_plane_16peers_6h", |b| {
        b.iter(|| {
            let mut system = System::with_faults(
                trace.clone(),
                protocol,
                setup.clone(),
                5,
                FaultSchedule::inert(),
            );
            system.run_until(
                SimTime::from_hours(6),
                SimDuration::from_hours(6),
                |_, _| {},
            );
            black_box(system.ordering_accuracy(&m))
        });
    });
    group.bench_function("latency_jitter_16peers_6h", |b| {
        b.iter(|| {
            let mut system =
                System::with_faults(trace.clone(), protocol, setup.clone(), 5, jittery.clone());
            system.run_until(
                SimTime::from_hours(6),
                SimDuration::from_hours(6),
                |_, _| {},
            );
            black_box(system.ordering_accuracy(&m))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
