//! Shared plumbing for the figure/table regeneration binaries.
// rvs-lint: allow-file(ambient-env, wall-clock) -- bench harness: CLI flag parsing and human-facing wall-clock reporting; never part of simulated protocol state
//!
//! Every binary accepts `--quick` to run a scaled-down configuration
//! (minutes → seconds) and prints the same rows/series the paper reports,
//! as aligned text tables. Paper-vs-measured comparisons are recorded in
//! `EXPERIMENTS.md`.

use std::time::Instant;

/// Did the user pass `--quick`?
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The value following `--json`, if present: a path to dump the
/// experiment's raw series/rows as JSON for external plotting.
pub fn json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(Into::into);
        }
    }
    None
}

/// Write `value` as pretty JSON to the `--json` path when given.
pub fn maybe_write_json<T: serde::Serialize>(value: &T) {
    if let Some(path) = json_path() {
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {}: {e}", path.display());
                } else {
                    eprintln!("[raw results written to {}]", path.display());
                }
            }
            Err(e) => eprintln!("failed to serialize results: {e}"),
        }
    }
}

/// The `usize` value following `--<name>`, if present (e.g. `--peers
/// 10000`). Exits with a usage error on a malformed value rather than
/// silently running the wrong experiment.
pub fn flag_usize(name: &str) -> Option<usize> {
    let flag = format!("--{name}");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            let raw = args.next().unwrap_or_default();
            match raw.parse() {
                Ok(v) => return Some(v),
                Err(_) => {
                    eprintln!("{flag} expects an unsigned integer, got {raw:?}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Print a standard experiment header.
pub fn header(id: &str, title: &str, quick: bool) {
    println!("================================================================");
    println!("{id} — {title}");
    if quick {
        println!("mode: --quick (scaled-down; see EXPERIMENTS.md for paper-scale)");
    } else {
        println!("mode: paper-scale");
    }
    println!("================================================================");
}

/// Run `f`, timing it, and report the wall-clock at the end.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("t", || 41 + 1), 42);
    }
}
