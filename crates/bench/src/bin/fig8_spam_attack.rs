//! F8 — Figure 8: flash-crowd spam attack.
//!
//! A fixed experienced core of 30 nodes has converged on honest moderator
//! M1; flash crowds of 30 (1× core) and 60 (2× core) colluding fresh
//! identities promote spam moderator M0 via votes (rejected by the
//! experience function) and fabricated VoxPopuli lists (which reach
//! bootstrapping newcomers). Paper shape: the 2× crowd defeats most new
//! nodes for ≈24 h before they integrate and recover; the 1× crowd only
//! ever poisons a minority; below 1× pollution is ~zero within the first
//! hour.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin fig8_spam_attack [--quick]
//! ```

use rvs_bench::{header, maybe_write_json, quick_mode, timed};
use rvs_metrics::TimeSeries;
use rvs_scenario::{run_spam_attack, SpamAttackConfig};

fn main() {
    let quick = quick_mode();
    header("F8", "flash-crowd spam attack: new-node pollution", quick);
    let mut cfg = if quick {
        SpamAttackConfig::quick(500)
    } else {
        SpamAttackConfig::paper()
    };
    if !quick {
        // Also probe the paper's "below 1x core: zero pollution" claim.
        cfg.crowd_sizes = vec![15, 30, 60];
    }
    println!(
        "core: {}  crowds: {:?}  runs per size: {}\n",
        cfg.core_size, cfg.crowd_sizes, cfg.runs
    );
    let curves = timed("simulate", || run_spam_attack(&cfg));
    maybe_write_json(&curves);
    let refs: Vec<&TimeSeries> = curves.iter().collect();
    print!("{}", TimeSeries::render_table(&refs));

    println!();
    for c in &curves {
        let peak = c.samples.iter().map(|s| s.value).fold(0.0_f64, f64::max);
        let final_v = c.last().map(|s| s.value).unwrap_or(0.0);
        let recovered = c
            .samples
            .iter()
            .skip_while(|s| s.value < peak)
            .find(|s| s.value < peak / 2.0)
            .map(|s| s.time.as_hours_f64());
        print!("{:<24} peak {:.3}  final {:.3}", c.label, peak, final_v);
        if let Some(h) = recovered {
            print!("  half-recovered by ~{h:.0} h");
        }
        println!();
    }
    println!(
        "\npaper reference: crowd=2x core defeats most new nodes for ~24 h,\n\
         crowd=1x poisons only a minority, smaller crowds ~zero pollution;\n\
         the experienced core itself is never polluted."
    );
}
