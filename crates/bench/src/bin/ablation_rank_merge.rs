//! A7 — rank-merge and score-method variants.
//!
//! The paper fixes neither the VoxPopuli merge ("any rank merging method
//! could be used") nor the ballot scoring ("simple summation or more
//! complex proportional approaches"). This harness compares:
//!
//! * merge methods (mean rank / Borda / median rank) under a minority of
//!   fabricated lists — the Figure 8 threat applied directly to the merge;
//! * score methods (summation / proportional) on skewed vote profiles.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_rank_merge [--quick]
//! ```

use rvs_bench::{header, quick_mode};
use rvs_core::{
    rank_ballot_scored, BallotBox, MergeMethod, ScoreMethod, TopKList, VoteEntry, VoxCache,
};
use rvs_sim::{DetRng, NodeId, SimTime};

fn fabricated_list_resilience(fake_fraction: f64, lists: usize, seed: u64) -> [bool; 3] {
    // Honest lists rank M1 first but are heterogeneous (real responders'
    // ballots differ: sometimes short, sometimes with M2/M3 swapped, and
    // occasionally a confused node lists M2 first). Fabricated lists put
    // spam M0 top, padded with M1 as a decoy to look plausible.
    let mut rng = DetRng::new(seed);
    let mut cache = VoxCache::new(lists, 3);
    for _ in 0..lists {
        if rng.chance(fake_fraction) {
            cache.push(TopKList {
                ranked: vec![NodeId(0), NodeId(1)],
            });
        } else {
            let ranked = match rng.below(10) {
                0 => vec![NodeId(2), NodeId(1), NodeId(3)], // confused node
                1 | 2 => vec![NodeId(1)],                   // sparse ballot
                3 | 4 => vec![NodeId(1), NodeId(3), NodeId(2)],
                5 | 6 => vec![NodeId(1), NodeId(2)],
                _ => vec![NodeId(1), NodeId(2), NodeId(3)],
            };
            cache.push(TopKList { ranked });
        }
    }
    let clean = |m: MergeMethod| cache.merged_with(m).top() != Some(NodeId(0));
    [
        clean(MergeMethod::MeanRank),
        clean(MergeMethod::Borda),
        clean(MergeMethod::MedianRank),
    ]
}

fn main() {
    let quick = quick_mode();
    header("A7", "rank-merge and score-method variants", quick);
    let trials = if quick { 200 } else { 2_000 };

    println!("\n-- VoxPopuli merge under fabricated lists (cache V_max = 10) --");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "fake frac", "mean-rank", "borda", "median"
    );
    for &f in &[0.1, 0.3, 0.45, 0.55, 0.7] {
        let mut survived = [0usize; 3];
        for t in 0..trials {
            let ok = fabricated_list_resilience(f, 10, t as u64);
            for (k, &b) in ok.iter().enumerate() {
                if b {
                    survived[k] += 1;
                }
            }
        }
        println!(
            "{:>12.2} {:>12.3} {:>12.3} {:>12.3}",
            f,
            survived[0] as f64 / trials as f64,
            survived[1] as f64 / trials as f64,
            survived[2] as f64 / trials as f64
        );
    }

    println!("\n-- ballot scoring on a skewed profile --");
    // M0: heavily voted but contested (60+/35-); M1: lightly voted and
    // unanimous (8+/0-).
    let mut bb = BallotBox::new(200);
    let e = |m: u32, vote| VoteEntry {
        moderator: NodeId(m),
        vote,
        made_at: SimTime::ZERO,
    };
    let mut voter = 10u32;
    for _ in 0..60 {
        bb.merge(
            NodeId(voter),
            &[e(0, rvs_core::Vote::Positive)],
            SimTime::from_secs(voter as u64),
        );
        voter += 1;
    }
    for _ in 0..35 {
        bb.merge(
            NodeId(voter),
            &[e(0, rvs_core::Vote::Negative)],
            SimTime::from_secs(voter as u64),
        );
        voter += 1;
    }
    for _ in 0..8 {
        bb.merge(
            NodeId(voter),
            &[e(1, rvs_core::Vote::Positive)],
            SimTime::from_secs(voter as u64),
        );
        voter += 1;
    }
    let summation = rank_ballot_scored(&bb, ScoreMethod::Summation, 2);
    let proportional = rank_ballot_scored(&bb, ScoreMethod::Proportional, 2);
    println!("profile: M0 = 60+/35-, M1 = 8+/0-");
    println!("summation ranks:    {:?}", summation.ranked);
    println!("proportional ranks: {:?}", proportional.ranked);
    println!(
        "\ntakeaways: (1) Borda with absent = 0 points is order-isomorphic to\n\
         mean rank with absent = K+1 (score = n(K+1) − Σrank), so the two\n\
         columns are always identical — the paper's 'any rank merging\n\
         method' freedom is narrower than it looks; (2) against decoy-padded\n\
         fabricated lists, mean rank degrades gracefully past a fake\n\
         majority while median rank collapses sharply near 0.5 — median's\n\
         outlier robustness does not help against a *coordinated* near-\n\
         majority; (3) proportional scoring favours consistent small\n\
         moderators where summation favours voluminous contested ones."
    );
}
