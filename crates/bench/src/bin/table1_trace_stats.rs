//! T1 — regenerate the §VI dataset statistics ("Table 1"):
//! 10 traces × 7 days × 100 unique peers, ≈23,000 events per trace,
//! ~50% of the population online on average, ~25% of peers uploading
//! little.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin table1_trace_stats [--quick]
//! ```

use rvs_bench::{header, quick_mode, timed};
use rvs_scenario::experiments::experience::dataset_statistics;
use rvs_sim::SimDuration;
use rvs_trace::TraceGenConfig;

fn main() {
    let quick = quick_mode();
    header("T1", "filelist.org dataset statistics (§VI)", quick);
    let (cfg, n_traces) = if quick {
        (TraceGenConfig::quick(30, SimDuration::from_days(1)), 3)
    } else {
        (TraceGenConfig::filelist_like(), 10)
    };
    let (per_trace, mean) = timed("generate+stats", || dataset_statistics(&cfg, n_traces, 1));

    println!(
        "\n{:>6} {:>8} {:>10} {:>9} {:>11} {:>13}",
        "trace", "peers", "events", "online", "free-riders", "rare-online"
    );
    for (i, st) in per_trace.iter().enumerate() {
        println!(
            "{:>6} {:>8} {:>10} {:>9.3} {:>11.3} {:>13}",
            i,
            st.unique_peers,
            st.event_count,
            st.avg_online_fraction,
            st.free_rider_fraction,
            st.rarely_online_peers
        );
    }
    println!("\nmean over {n_traces} traces:");
    println!("{mean}");
    println!("\npaper reference: 100 peers/trace, ~23,000 events/trace,");
    println!("~50% online on average, ~25% of peers uploaded little.");
}
