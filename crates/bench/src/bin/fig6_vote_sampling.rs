//! F6 — Figure 6: effectiveness of the vote sampling system over time.
//!
//! Three moderators M1/M2/M3 (first three arrivals); 10% of the population
//! votes `+M1`, 10% votes `−M3`; the plot shows the fraction of nodes whose
//! ranking orders M1 > M2 > M3 — three typical runs plus the 10-run
//! average. Paper shape: flat early, a sharp rise once the first nodes
//! pass `B_min` and VoxPopuli spreads their rankings (≈12 h), then a climb
//! towards 1.0 by day 7.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin fig6_vote_sampling \
//!     [--quick] [--no-cache] [--peers N] [--shards K] [--runs N] \
//!     [--hours H] [--audit]
//! ```
//!
//! `--no-cache` disables the incremental contribution cache (every
//! experience check recomputes its maxflow), for before/after comparisons
//! of the `maxflow_evaluations` counter. `--peers`/`--runs`/`--hours`
//! rescale the experiment; `--shards K` partitions each run across the
//! scale-out engine of DESIGN.md §14 (results are identical for every K —
//! only wall-clock changes); `--audit` runs the invariant auditor and
//! fails loudly on any violation. The CI scale smoke is
//! `--quick --peers 10000 --shards 4 --runs 1 --hours 8 --audit`.

use rvs_bench::{flag_usize, header, maybe_write_json, quick_mode, timed};
use rvs_metrics::TimeSeries;
use rvs_scenario::{run_vote_sampling, VoteSamplingConfig};
use rvs_sim::SimDuration;
use rvs_trace::TraceGenConfig;

fn main() {
    let quick = quick_mode();
    header("F6", "vote-sampling effectiveness over time", quick);
    let mut cfg = if quick {
        VoteSamplingConfig::quick_demo(100)
    } else {
        VoteSamplingConfig::paper()
    };
    // rvs-lint: allow(ambient-env) -- CLI flag parsing at the binary entry point
    if std::env::args().any(|a| a == "--no-cache") {
        cfg.protocol = cfg.protocol.without_contribution_cache();
        println!("contribution cache DISABLED (--no-cache)");
    }
    if let Some(hours) = flag_usize("hours") {
        cfg.trace.duration = SimDuration::from_hours(hours as u64);
        cfg.duration = SimDuration::from_hours(hours as u64);
        cfg.sample_every = SimDuration::from_hours((hours as u64 / 9).max(1));
    }
    if let Some(peers) = flag_usize("peers") {
        // Rebuild the preset so founder count and download pacing rescale
        // with the population instead of keeping the default-size values.
        cfg.trace = if quick {
            TraceGenConfig::quick(peers, cfg.trace.duration)
        } else {
            TraceGenConfig {
                n_peers: peers,
                duration: cfg.trace.duration,
                ..TraceGenConfig::filelist_like()
            }
        };
    }
    if let Some(runs) = flag_usize("runs") {
        cfg.runs = runs.max(1);
    }
    if let Some(shards) = flag_usize("shards") {
        cfg.shards = shards;
    }
    // rvs-lint: allow(ambient-env) -- CLI flag parsing at the binary entry point
    if std::env::args().any(|a| a == "--audit") {
        cfg.audit = true;
        println!("invariant auditor ENABLED (--audit)");
    }
    if cfg.shards > 1 {
        println!("scale-out: {} shards over the cross-shard bus", cfg.shards);
    }
    println!(
        "trace: {} peers × {} runs; B_min={}, B_max={}, V_max={}, K={}, T={} MiB\n",
        cfg.trace.n_peers,
        cfg.runs,
        cfg.protocol.votes.b_min,
        cfg.protocol.votes.b_max,
        cfg.protocol.votes.v_max,
        cfg.protocol.votes.k,
        cfg.protocol.experience_t_mib
    );
    let outcome = timed("simulate", || run_vote_sampling(&cfg));
    maybe_write_json(&(&outcome.typical, &outcome.accuracy, &outcome.telemetry));

    // Three typical runs + the average, like the paper's plot.
    let mut cols: Vec<&TimeSeries> = outcome.typical.iter().take(3).collect();
    cols.push(&outcome.accuracy);
    print!("{}", TimeSeries::render_table(&cols));

    let last = outcome.accuracy.last().map(|s| s.value).unwrap_or(0.0);
    let half = outcome
        .accuracy
        .samples
        .iter()
        .find(|s| s.value > 0.5)
        .map(|s| s.time.as_hours_f64());
    println!("\nfinal average accuracy: {last:.3}");
    match half {
        Some(h) => println!("average first exceeds 0.5 at ~{h:.0} h"),
        None => println!("average never exceeded 0.5"),
    }
    println!(
        "\npaper reference: sharp rise near 12 h (VoxPopuli bootstrap once the\n\
         first nodes pass B_min), climbing towards ~1.0 over the 7 days."
    );
    println!(
        "\nprotocol counters (merged over {} runs):\n{}",
        cfg.runs,
        outcome.telemetry.to_json()
    );
}
