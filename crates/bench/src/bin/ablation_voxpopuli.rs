//! A6 — VoxPopuli on/off: what the bootstrap protocol buys (and risks).
//!
//! With VoxPopuli disabled, nodes show no ranking until their own ballot
//! box reaches `B_min` unique experienced voters — secure but slow. With
//! it enabled, the sharp Figure 6 rise appears as soon as the first nodes
//! graduate and start answering.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_voxpopuli [--quick]
//! ```

use rvs_bench::{header, quick_mode, timed};
use rvs_metrics::TimeSeries;
use rvs_scenario::experiments::ablations::run_voxpopuli_ablation;
use rvs_scenario::VoteSamplingConfig;

fn main() {
    let quick = quick_mode();
    header("A6", "VoxPopuli on/off: bootstrap speed", quick);
    let cfg = if quick {
        VoteSamplingConfig::quick_demo(600)
    } else {
        VoteSamplingConfig::paper()
    };
    let (on, off) = timed("simulate", || run_voxpopuli_ablation(&cfg));
    print!("{}", TimeSeries::render_table(&[&on, &off]));
    let area =
        |s: &TimeSeries| s.samples.iter().map(|p| p.value).sum::<f64>() / s.len().max(1) as f64;
    println!(
        "\nmean accuracy over the run — VoxPopuli on: {:.3}, off: {:.3}",
        area(&on),
        area(&off)
    );
    println!(
        "\nVoxPopuli accelerates early convergence (hearsay from graduated\n\
         nodes) at the price of the Figure 8 bootstrap vulnerability; both\n\
         curves meet once most nodes hold B_min ballot samples."
    );
}
