//! A5 — the BarterCast mole / front-peer attack (paper §VII).
//!
//! Colluders claim enormous uploads to a mole that genuinely uploaded a
//! little to the victim; the 2-hop maxflow caps each colluder's apparent
//! contribution at the mole's *paid-for* edge.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_mole [--quick]
//! ```

use rvs_bench::{header, quick_mode, timed};
use rvs_scenario::experiments::ablations::run_mole_leverage;

fn main() {
    let quick = quick_mode();
    header("A5", "mole attack leverage vs genuine payment", quick);
    let colluders = if quick { 3 } else { 10 };
    let real: &[u64] = &[0, 1024, 5 * 1024, 20 * 1024, 100 * 1024];
    let claimed = 1u64 << 30; // each colluder claims 1 TiB-ish of uploads
    let rows = timed("compute", || run_mole_leverage(real, claimed, colluders));
    println!("\ncolluders: {colluders}, claimed per colluder: {claimed} KiB\n");
    println!(
        "{:>14} {:>16} {:>20} {:>16}",
        "mole paid KiB", "claimed KiB", "per-colluder KiB", "total KiB"
    );
    for r in &rows {
        println!(
            "{:>14} {:>16} {:>20} {:>16}",
            r.real_kib, r.claimed_kib, r.per_colluder_kib, r.total_kib
        );
    }
    println!(
        "\nper-colluder leverage equals the mole's genuine upload regardless\n\
         of the claimed volume — faking experience costs real bandwidth,\n\
         which is the paper's cost argument. (Queries are independent\n\
         maxflows, so total leverage is colluders × the mole's edge.)"
    );
}
