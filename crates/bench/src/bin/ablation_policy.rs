//! A3 — vote-list selection policy: recency vs random vs the deployed
//! hybrid (paper §V-A cites [6]: "combining these policies produced
//! acceptable performance").
//!
//! Two parts:
//!
//! 1. the Figure 6 scenario — which turns out *not* to discriminate: each
//!    voter holds a single vote, so lists never exceed the budget (an
//!    honest negative result worth keeping);
//! 2. a many-moderator poll: 40 voters hold votes on 30 moderators cast
//!    over time, a pollster samples them with a budget of 5 votes per
//!    message — here the policies separate exactly as [6] predicts.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_policy [--quick]
//! ```

use rvs_bench::{header, quick_mode, timed};
use rvs_core::{select_votes, BallotBox, Vote, VoteEntry, VoteListPolicy};
use rvs_scenario::experiments::ablations::run_policy_sweep;
use rvs_scenario::VoteSamplingConfig;
use rvs_sim::{DetRng, NodeId, SimTime};

/// Part 2: one pollster polling 40 voters who each hold votes on all 30
/// moderators (moderator `m` was voted on at hour `m`, so high ids are the
/// "fresh" ones). Returns (rounds to 90% moderator coverage, coverage of
/// the 5 newest moderators after 10 rounds).
fn poll_coverage(policy: VoteListPolicy, seed: u64) -> (usize, f64) {
    const MODERATORS: u32 = 30;
    const VOTERS: u32 = 40;
    const BUDGET: usize = 5;
    let mut rng = DetRng::new(seed);
    let full_list: Vec<VoteEntry> = (0..MODERATORS)
        .map(|m| VoteEntry {
            moderator: NodeId(1_000 + m),
            vote: Vote::Positive,
            made_at: SimTime::from_hours(m as u64),
        })
        .collect();
    let mut ballot = BallotBox::new(200);
    let mut rounds_to_cover = usize::MAX;
    let mut fresh_at_10 = 0.0;
    for round in 1..=120 {
        let voter = NodeId(rng.below(VOTERS as u64) as u32);
        let msg = select_votes(full_list.clone(), BUDGET, policy, &mut rng);
        ballot.merge(voter, &msg, SimTime::from_hours(100 + round as u64));
        let covered = ballot.moderators().len();
        if rounds_to_cover == usize::MAX && covered * 10 >= MODERATORS as usize * 9 {
            rounds_to_cover = round;
        }
        if round == 10 {
            let fresh = ballot
                .moderators()
                .into_iter()
                .filter(|m| m.0 >= 1_000 + MODERATORS - 5)
                .count();
            fresh_at_10 = fresh as f64 / 5.0;
        }
    }
    (rounds_to_cover, fresh_at_10)
}

fn main() {
    let quick = quick_mode();
    header("A3", "vote-list selection policy comparison", quick);

    println!("\n-- part 1: Figure 6 scenario (single-vote lists) --");
    let mut cfg = if quick {
        VoteSamplingConfig::quick_demo(700)
    } else {
        VoteSamplingConfig::paper()
    };
    cfg.protocol.votes.max_votes_per_msg = 2;
    let rows = timed("simulate", || run_policy_sweep(&cfg));
    println!(
        "{:>20} {:>16} {:>16}",
        "policy", "mean accuracy", "final accuracy"
    );
    for r in &rows {
        println!(
            "{:>20} {:>16.3} {:>16.3}",
            format!("{:?}", r.policy),
            r.mean_accuracy,
            r.final_accuracy
        );
    }
    println!(
        "(identical — with one vote per voter the budget never binds; the\n\
         policy is irrelevant to this paper scenario, which is itself a\n\
         result)"
    );

    println!("\n-- part 2: many-moderator poll (30 moderators, budget 5) --");
    let trials = if quick { 20 } else { 200 };
    println!(
        "{:>20} {:>22} {:>24}",
        "policy", "rounds to 90% coverage", "fresh-5 coverage @10 rounds"
    );
    for policy in [
        VoteListPolicy::Recency,
        VoteListPolicy::Random,
        VoteListPolicy::RecencyAndRandom,
    ] {
        let mut cover_sum = 0.0;
        let mut fresh_sum = 0.0;
        let mut never = 0usize;
        for t in 0..trials {
            let (rounds, fresh) = poll_coverage(policy, t as u64);
            if rounds == usize::MAX {
                never += 1;
            } else {
                cover_sum += rounds as f64;
            }
            fresh_sum += fresh;
        }
        let covered_trials = trials - never;
        let cover = if covered_trials == 0 {
            "never".to_string()
        } else {
            format!("{:.1}", cover_sum / covered_trials as f64)
        };
        let suffix = if never > 0 {
            format!(" ({never}/{trials} never)")
        } else {
            String::new()
        };
        println!(
            "{:>20} {:>22} {:>24.2}{}",
            format!("{policy:?}"),
            cover,
            fresh_sum / trials as f64,
            suffix
        );
    }
    println!(
        "\npure recency never covers the catalogue (it reships the same\n\
         newest votes forever); pure random converges fastest in aggregate\n\
         but delivers any *specific* fresh vote only in expectation; the\n\
         hybrid pays ~2x random's coverage time for a hard guarantee that\n\
         every message carries the newest votes — the freshness/coverage\n\
         compromise [6] selected."
    );
}
