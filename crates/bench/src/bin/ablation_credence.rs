//! A8 — Credence-style correlation rating vs vote sampling (paper §VIII).
//!
//! Credence relates peers through the correlation of their voting
//! histories over co-voted objects; "users who don't vote, or do so only
//! minimally, have no way of distinguishing between honest and malicious
//! voters" — the paper cites ~50% isolated clients. BallotBox, in
//! contrast, serves every peer: a never-voting node still samples other
//! peers' votes. This harness sweeps voting participation and measures
//! the isolated fraction and malicious-voter detection of the correlation
//! scheme.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_credence [--quick]
//! ```

use rvs_attacks::simulate_credence;
use rvs_bench::{header, quick_mode, timed};
use rvs_sim::DetRng;

fn main() {
    let quick = quick_mode();
    header(
        "A8",
        "Credence correlation baseline: isolation vs participation",
        quick,
    );
    let (n, objects, votes_per_voter, trials) = if quick {
        (100usize, 60u32, 8usize, 3u64)
    } else {
        (500, 200, 12, 10)
    };
    println!(
        "\npopulation {n}, {objects} objects (30% spam), {votes_per_voter} votes per voter,\n\
         20% of voters malicious (inverse voting), 15% honest error,\n         min overlap 2, {trials} trials\n"
    );
    println!(
        "{:>15} {:>18} {:>22}",
        "participation", "isolated fraction", "malicious detection"
    );
    let rows = timed("simulate", || {
        [0.05, 0.10, 0.25, 0.50, 0.75, 1.00]
            .iter()
            .map(|&p| {
                let mut iso = 0.0;
                let mut det = 0.0;
                for t in 0..trials {
                    let mut rng = DetRng::new(1_000 + t).fork((p * 100.0) as u64);
                    let (_, out) = simulate_credence(
                        n,
                        objects,
                        0.3,
                        p,
                        votes_per_voter,
                        0.2,
                        0.15, // honest voters misjudge 15% of the time
                        2,
                        &mut rng,
                    );
                    iso += out.isolated_fraction;
                    det += out.malicious_detection;
                }
                (p, iso / trials as f64, det / trials as f64)
            })
            .collect::<Vec<_>>()
    });
    for (p, iso, det) in &rows {
        println!("{:>15.2} {:>18.3} {:>22.3}", p, iso, det);
    }
    println!(
        "\npaper context: with the ~0.5% voting rates observed in real file\n\
         sharing communities (≤5 votes per 1000 downloads), a correlation\n\
         scheme leaves essentially everyone isolated; binding votes to\n\
         moderators and polling them directly serves non-voters too, which\n\
         is exactly the paper's §II design argument."
    );
}
