//! A4 — why sample instead of aggregating (paper §II / §V-A).
//!
//! "Faster and more accurate epidemic-style aggregation protocols have
//! been proposed but they are highly vulnerable to lying behaviour." This
//! harness quantifies that: epidemic push–pull averaging vs a BallotBox
//! uniform sample, for growing liar minorities.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_aggregation [--quick]
//! ```

use rvs_bench::{header, quick_mode, timed};
use rvs_scenario::experiments::ablations::run_aggregation_comparison;

fn main() {
    let quick = quick_mode();
    header(
        "A4",
        "epidemic aggregation vs BallotBox sampling under lying",
        quick,
    );
    let (n, rounds, b_max) = if quick {
        (60, 100, 30)
    } else {
        (500, 400, 100)
    };
    let liar_fractions = [0.0, 0.02, 0.05, 0.10, 0.20];
    let rows = timed("simulate", || {
        run_aggregation_comparison(n, 0.2, &liar_fractions, rounds, b_max, 42)
    });
    println!("\npopulation {n}, true support 0.20, {rounds} gossip rounds, B_max={b_max}\n");
    println!(
        "{:>8} {:>8} {:>20} {:>18}",
        "liars", "truth", "epidemic estimate", "ballot estimate"
    );
    for r in &rows {
        println!(
            "{:>8.2} {:>8.2} {:>20.3} {:>18.3}",
            r.liar_fraction, r.truth, r.epidemic_estimate, r.ballot_estimate
        );
    }
    println!(
        "\na fixed-point liar drags the epidemic average towards its lie\n\
         without bound; in the ballot sample a liar is one voter among\n\
         B_max, so the error stays proportional to the liar share."
    );
}
