//! F5 — Figure 5: Collective Experience Value vs time for several
//! experience thresholds `T`, on one typical trace.
//!
//! Paper shape: lower `T` grows faster; at `T = 5 MB` roughly 20% of
//! ordered node pairs are experienced within 12 hours; curves flatten well
//! below 1.0 by day 7 (free-riders and rarely-online peers never join the
//! core).
//!
//! ```text
//! cargo run --release -p rvs-bench --bin fig5_experience [--quick]
//! ```

use rvs_bench::{header, maybe_write_json, quick_mode, timed};
use rvs_metrics::TimeSeries;
use rvs_scenario::{run_experience_formation, ExperienceConfig};
use rvs_sim::SimTime;

fn main() {
    let quick = quick_mode();
    header(
        "F5",
        "experience formation: CEV vs time per threshold T",
        quick,
    );
    let cfg = if quick {
        ExperienceConfig::quick(1)
    } else {
        ExperienceConfig::paper()
    };
    println!(
        "trace: {} peers, {:.0} h; thresholds {:?} MiB\n",
        cfg.trace.n_peers,
        cfg.duration.as_secs() as f64 / 3600.0,
        cfg.thresholds_mib
    );
    let series = timed("simulate", || run_experience_formation(&cfg));
    maybe_write_json(&series);
    let refs: Vec<&TimeSeries> = series.iter().collect();
    print!("{}", TimeSeries::render_table(&refs));

    // Headline checks against the paper's description.
    println!();
    for s in &series {
        let at12 = s.value_at(SimTime::from_hours(12)).unwrap_or(0.0);
        let last = s.last().map(|p| p.value).unwrap_or(0.0);
        println!("{:<10} CEV@12h = {at12:.3}   final = {last:.3}", s.label);
    }
    println!(
        "\npaper reference: T=5MB reaches ~0.20 within 12 h; all curves stay\n\
         below 1.0 after 7 days; lower T strictly dominates higher T."
    );
}
