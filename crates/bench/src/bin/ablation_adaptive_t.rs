//! A1 — adaptive experience threshold (paper §VII future work).
//!
//! Under a demoting flash crowd, compares the fixed `T = 5 MB` threshold
//! against the paper's symmetric adaptive sketch and an asymmetric
//! (fast-raise, slow-decay) refinement. Also documents the sketch's blind
//! spot: a *pure promotion* attack creates no vote dispersion at all.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_adaptive_t [--quick]
//! ```

use rvs_bench::{header, quick_mode, timed};
use rvs_metrics::TimeSeries;
use rvs_scenario::experiments::ablations::run_adaptive_threshold;
use rvs_scenario::SpamAttackConfig;

fn main() {
    let quick = quick_mode();
    header("A1", "adaptive threshold T vs fixed T under attack", quick);
    let cfg = if quick {
        SpamAttackConfig::quick(900)
    } else {
        SpamAttackConfig::paper()
    };
    let outcome = timed("simulate", || run_adaptive_threshold(&cfg));
    let refs: Vec<&TimeSeries> = vec![&outcome.fixed, &outcome.symmetric, &outcome.adaptive];
    print!("{}", TimeSeries::render_table(&refs));
    println!(
        "\nmean asymmetric-adaptive T at end: {:.2} MiB",
        outcome.final_t_mean_mib
    );
    let mean =
        |s: &TimeSeries| s.samples.iter().map(|p| p.value).sum::<f64>() / s.len().max(1) as f64;
    println!(
        "mean pollution — fixed: {:.3}  symmetric: {:.3}  asymmetric: {:.3}",
        mean(&outcome.fixed),
        mean(&outcome.symmetric),
        mean(&outcome.adaptive)
    );
    println!(
        "\nfindings: (1) a pure promotion attack is invisible to the\n\
         dispersion signal (unanimous votes have zero dispersion) — the\n\
         crowd here must demote M1 to be detectable; (2) the symmetric rule\n\
         oscillates: purge -> dispersion falls -> T decays -> re-flood;\n\
         (3) asymmetric decay dampens the cycle but T=0 remains an open\n\
         gate; the fixed pre-paid threshold dominates."
    );
}
