//! A2 — `B_min` / `B_max` sensitivity on the Figure 6 scenario.
//!
//! `B_min` trades bootstrap safety against speed (below it a node trusts
//! VoxPopuli hearsay); `B_max` bounds the sample a pollster keeps.
//!
//! ```text
//! cargo run --release -p rvs-bench --bin ablation_ballot_params [--quick]
//! ```

use rvs_bench::{header, quick_mode, timed};
use rvs_scenario::experiments::ablations::run_ballot_param_sweep;
use rvs_scenario::VoteSamplingConfig;

fn main() {
    let quick = quick_mode();
    header("A2", "ballot parameter sweep (B_min × B_max)", quick);
    let (cfg, b_mins, b_maxes): (_, &[usize], &[usize]) = if quick {
        (VoteSamplingConfig::quick_demo(800), &[2, 5, 10], &[25, 100])
    } else {
        (VoteSamplingConfig::paper(), &[2, 5, 10, 20], &[25, 100])
    };
    let rows = timed("simulate", || run_ballot_param_sweep(&cfg, b_mins, b_maxes));
    println!(
        "\n{:>7} {:>7} {:>16} {:>14}",
        "B_min", "B_max", "final accuracy", "hours>0.5"
    );
    for r in &rows {
        let h = r
            .hours_to_half
            .map(|h| format!("{h:.0}"))
            .unwrap_or_else(|| "never".into());
        println!(
            "{:>7} {:>7} {:>16.3} {:>14}",
            r.b_min, r.b_max, r.final_accuracy, h
        );
    }
    println!(
        "\nexpectation: the paper's B_min=5 / B_max=100 sits on the knee —\n\
         tiny B_min converges a touch faster but trusts near-empty samples;\n\
         large B_min delays the VoxPopuli hand-off."
    );
}
