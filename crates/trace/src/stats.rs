//! Trace statistics — regenerates the dataset summary the paper quotes in
//! §VI (our experiment index calls it "Table 1").

use crate::model::{Trace, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a [`Trace`], matching the quantities reported for
/// the filelist.org dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of unique peers observed (paper: 100).
    pub unique_peers: usize,
    /// Number of swarms.
    pub swarm_count: usize,
    /// Total trace events (paper: ≈23,000 per trace).
    pub event_count: usize,
    /// Time-averaged fraction of the total population online
    /// (paper: ≈50%).
    pub avg_online_fraction: f64,
    /// Fraction of peers flagged as free-riders (paper: ≈25% "uploaded
    /// little to others").
    pub free_rider_fraction: f64,
    /// Fraction of freely connectable peers.
    pub connectable_fraction: f64,
    /// Mean online-session length in minutes.
    pub mean_session_mins: f64,
    /// Mean number of sessions per peer.
    pub mean_sessions_per_peer: f64,
    /// Peers online for less than 10% of the trace ("rarely present").
    pub rarely_online_peers: usize,
    /// Mean number of downloads started per peer.
    pub mean_downloads_per_peer: f64,
    /// Trace duration in hours.
    pub duration_hours: f64,
}

impl TraceStats {
    /// Compute statistics for a trace.
    pub fn compute(trace: &Trace) -> TraceStats {
        let n = trace.peer_count().max(1);
        let duration_ms = trace.duration.as_millis().max(1);

        let online = trace.online_time_per_peer();
        let total_online_ms: u64 = online.iter().map(|d| d.as_millis()).sum();
        let avg_online_fraction = total_online_ms as f64 / (n as u64 * duration_ms) as f64;
        let rarely_online_peers = online
            .iter()
            .filter(|d| (d.as_millis() as f64 / duration_ms as f64) < 0.10)
            .count();

        let mut sessions = 0usize;
        let mut downloads = 0usize;
        for ev in &trace.events {
            match ev.kind {
                TraceEventKind::Online => sessions += 1,
                TraceEventKind::StartDownload { .. } => downloads += 1,
                TraceEventKind::Offline => {}
            }
        }
        let mean_session_mins = if sessions > 0 {
            (total_online_ms as f64 / sessions as f64) / 60_000.0
        } else {
            0.0
        };

        let free_riders = trace.peers.iter().filter(|p| p.free_rider).count();
        let connectable = trace.peers.iter().filter(|p| p.connectable).count();

        TraceStats {
            unique_peers: trace.peer_count(),
            swarm_count: trace.swarms.len(),
            event_count: trace.events.len(),
            avg_online_fraction,
            free_rider_fraction: free_riders as f64 / n as f64,
            connectable_fraction: connectable as f64 / n as f64,
            mean_session_mins,
            mean_sessions_per_peer: sessions as f64 / n as f64,
            rarely_online_peers,
            mean_downloads_per_peer: downloads as f64 / n as f64,
            duration_hours: duration_ms as f64 / 3_600_000.0,
        }
    }

    /// Aggregate (mean) statistics over several traces, e.g. the 10-trace
    /// dataset.
    pub fn mean_over(stats: &[TraceStats]) -> TraceStats {
        assert!(!stats.is_empty(), "mean_over needs at least one trace");
        let k = stats.len() as f64;
        let sum_usize = |f: fn(&TraceStats) -> usize| -> usize {
            (stats.iter().map(|s| f(s) as f64).sum::<f64>() / k).round() as usize
        };
        let sum_f64 = |f: fn(&TraceStats) -> f64| -> f64 { stats.iter().map(f).sum::<f64>() / k };
        TraceStats {
            unique_peers: sum_usize(|s| s.unique_peers),
            swarm_count: sum_usize(|s| s.swarm_count),
            event_count: sum_usize(|s| s.event_count),
            avg_online_fraction: sum_f64(|s| s.avg_online_fraction),
            free_rider_fraction: sum_f64(|s| s.free_rider_fraction),
            connectable_fraction: sum_f64(|s| s.connectable_fraction),
            mean_session_mins: sum_f64(|s| s.mean_session_mins),
            mean_sessions_per_peer: sum_f64(|s| s.mean_sessions_per_peer),
            rarely_online_peers: sum_usize(|s| s.rarely_online_peers),
            mean_downloads_per_peer: sum_f64(|s| s.mean_downloads_per_peer),
            duration_hours: sum_f64(|s| s.duration_hours),
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unique peers            {:>10}", self.unique_peers)?;
        writeln!(f, "swarms                  {:>10}", self.swarm_count)?;
        writeln!(f, "events                  {:>10}", self.event_count)?;
        writeln!(f, "duration (h)            {:>10.1}", self.duration_hours)?;
        writeln!(
            f,
            "avg online fraction     {:>10.3}",
            self.avg_online_fraction
        )?;
        writeln!(
            f,
            "free-rider fraction     {:>10.3}",
            self.free_rider_fraction
        )?;
        writeln!(
            f,
            "connectable fraction    {:>10.3}",
            self.connectable_fraction
        )?;
        writeln!(
            f,
            "mean session (min)      {:>10.1}",
            self.mean_session_mins
        )?;
        writeln!(
            f,
            "sessions per peer       {:>10.1}",
            self.mean_sessions_per_peer
        )?;
        writeln!(
            f,
            "rarely-online peers     {:>10}",
            self.rarely_online_peers
        )?;
        write!(
            f,
            "downloads per peer      {:>10.2}",
            self.mean_downloads_per_peer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenConfig;
    use rvs_sim::SimDuration;

    #[test]
    fn stats_reflect_generated_trace() {
        let cfg = TraceGenConfig::quick(25, SimDuration::from_days(1));
        let t = cfg.generate(8);
        let st = TraceStats::compute(&t);
        assert_eq!(st.unique_peers, 25);
        assert_eq!(st.swarm_count, 3);
        assert_eq!(st.event_count, t.events.len());
        assert!(st.avg_online_fraction > 0.0 && st.avg_online_fraction < 1.0);
        assert!((st.duration_hours - 24.0).abs() < 1e-9);
    }

    #[test]
    fn mean_over_averages() {
        let cfg = TraceGenConfig::quick(10, SimDuration::from_hours(12));
        let stats: Vec<TraceStats> = (0..4)
            .map(|s| TraceStats::compute(&cfg.generate(s)))
            .collect();
        let mean = TraceStats::mean_over(&stats);
        assert_eq!(mean.unique_peers, 10);
        let lo = stats.iter().map(|s| s.event_count).min().unwrap();
        let hi = stats.iter().map(|s| s.event_count).max().unwrap();
        assert!(mean.event_count >= lo && mean.event_count <= hi);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn mean_over_empty_panics() {
        TraceStats::mean_over(&[]);
    }

    #[test]
    fn display_prints_all_rows() {
        let cfg = TraceGenConfig::quick(5, SimDuration::from_hours(6));
        let st = TraceStats::compute(&cfg.generate(0));
        let s = st.to_string();
        for key in [
            "unique peers",
            "events",
            "avg online fraction",
            "free-rider fraction",
            "rarely-online peers",
        ] {
            assert!(s.contains(key), "missing row {key}");
        }
    }
}
