//! Synthetic trace generation calibrated to the filelist.org dataset.
//!
//! The generator reproduces the dataset statistics the paper reports in §VI:
//!
//! * 100 unique peers monitored for 7 days, ≈23,000 events per trace;
//! * on average ~50% of the total population online at any given time
//!   (heavy churn, heavy-tailed session/gap lengths);
//! * ≈25% of peers upload little (modelled as free-riders with small
//!   uplinks that quit swarms on completion);
//! * some peers "rarely present … enter and quickly leave the system";
//! * per-peer connectability flags (firewalled vs freely connectable);
//! * per-swarm file sizes.
//!
//! All draws flow through a forked [`DetRng`], so a `(config, seed)` pair
//! fully determines the trace.

use crate::model::{PeerProfile, SwarmSpec, Trace, TraceEvent, TraceEventKind};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime, SwarmId};
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic trace generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGenConfig {
    /// Number of unique peers (paper: 100).
    pub n_peers: usize,
    /// Monitored span (paper: 7 days).
    pub duration: SimDuration,
    /// Peers present from (nearly) the start of the trace — the community
    /// founders from whom the experienced core grows.
    pub founder_count: usize,
    /// Mean online session length (heavy-tailed around this mean).
    pub mean_session: SimDuration,
    /// Mean offline gap between sessions for regular peers.
    pub mean_gap: SimDuration,
    /// Pareto shape for sessions and gaps (must be > 1 so the mean exists).
    pub churn_alpha: f64,
    /// Fraction of peers that are rarely online (their gaps are multiplied
    /// by [`TraceGenConfig::rare_gap_factor`]).
    pub rarely_online_fraction: f64,
    /// Gap multiplier for rarely-online peers.
    pub rare_gap_factor: f64,
    /// Fraction of free-riding peers (paper: ≈25% upload little).
    pub free_rider_fraction: f64,
    /// Fraction of freely connectable (non-firewalled) peers.
    pub connectable_fraction: f64,
    /// Number of swarms active during the trace.
    pub n_swarms: usize,
    /// Inclusive range of file sizes in MiB.
    pub file_size_mib: (u32, u32),
    /// BitTorrent piece size in KiB.
    pub piece_size_kib: u32,
    /// Mean number of swarms each peer downloads (min 1).
    pub mean_downloads_per_peer: f64,
    /// Mean delay between a peer becoming eligible (arrived & swarm exists)
    /// and starting a download.
    pub mean_download_delay: SimDuration,
    /// Mean seeding time for altruistic peers after completing a download.
    pub mean_seed_time: SimDuration,
    /// Uplink capacity range for altruistic peers, KiB/s.
    pub uplink_kibps: (u32, u32),
    /// Uplink capacity range for free-riders, KiB/s.
    pub free_rider_uplink_kibps: (u32, u32),
    /// Downlink = uplink × this factor (asymmetric consumer lines).
    pub downlink_factor: u32,
}

impl TraceGenConfig {
    /// The paper-calibrated preset: reproduces the §VI dataset statistics.
    pub fn filelist_like() -> Self {
        TraceGenConfig {
            n_peers: 100,
            duration: SimDuration::from_days(7),
            founder_count: 20,
            mean_session: SimDuration::from_mins(45),
            mean_gap: SimDuration::from_mins(26),
            churn_alpha: 1.8,
            rarely_online_fraction: 0.12,
            rare_gap_factor: 18.0,
            free_rider_fraction: 0.25,
            connectable_fraction: 0.6,
            n_swarms: 12,
            file_size_mib: (150, 1400),
            piece_size_kib: 256,
            mean_downloads_per_peer: 3.0,
            mean_download_delay: SimDuration::from_hours(8),
            mean_seed_time: SimDuration::from_hours(12),
            uplink_kibps: (96, 768),
            free_rider_uplink_kibps: (16, 64),
            downlink_factor: 4,
        }
    }

    /// A small, fast preset for unit/integration tests: `n` peers over the
    /// given duration, otherwise filelist-like behaviour.
    pub fn quick(n_peers: usize, duration: SimDuration) -> Self {
        TraceGenConfig {
            n_peers,
            duration,
            founder_count: (n_peers / 4).max(1),
            n_swarms: 3,
            mean_downloads_per_peer: 1.5,
            // Tests run hours, not days: start downloads promptly.
            mean_download_delay: SimDuration::from_hours(2),
            ..Self::filelist_like()
        }
    }

    /// Generate a trace from this configuration and a seed. Deterministic:
    /// the same `(self, seed)` always yields the identical trace.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.n_peers > 0, "trace needs at least one peer");
        assert!(self.n_swarms > 0, "trace needs at least one swarm");
        assert!(self.churn_alpha > 1.0, "Pareto mean requires alpha > 1");
        let root = DetRng::new(seed);
        let mut rng_profiles = root.fork(1);
        let mut rng_churn = root.fork(2);
        let mut rng_swarms = root.fork(3);
        let mut rng_downloads = root.fork(4);

        let peers = self.gen_profiles(&mut rng_profiles);
        let swarms = self.gen_swarms(&peers, &mut rng_swarms);
        let mut events = Vec::with_capacity(self.n_peers * 64);
        let rare_cutoff = (self.n_peers as f64 * self.rarely_online_fraction).round() as usize;
        for (idx, p) in peers.iter().enumerate() {
            // Peers are assigned "rarely online" by index after profile
            // shuffling, so the set is random but reproducible.
            let rare = idx < rare_cutoff;
            self.gen_churn(p, rare, &mut rng_churn, &mut events);
        }
        self.gen_downloads(&peers, &swarms, &mut rng_downloads, &mut events);

        // Total order: (time, peer, kind-rank) so equal-time events sort
        // deterministically regardless of generation order.
        events.sort_by_key(|e| (e.time, e.peer, kind_rank(&e.kind)));

        let trace = Trace {
            seed,
            duration: self.duration,
            peers,
            swarms,
            events,
        };
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }

    fn gen_profiles(&self, rng: &mut DetRng) -> Vec<PeerProfile> {
        let n = self.n_peers;
        let founder_count = self.founder_count.min(n);
        // Decide roles by sampling index sets, then assign arrivals.
        let n_free = (n as f64 * self.free_rider_fraction).round() as usize;
        let free_set = rng.sample_indices(n, n_free);
        let mut is_free = vec![false; n];
        for i in free_set {
            is_free[i] = true;
        }
        let end_ms = self.duration.as_millis();
        (0..n)
            .map(|i| {
                let arrival = if i < founder_count {
                    // Founders trickle in over the first half hour.
                    SimTime::from_millis(rng.below(30 * 60_000))
                } else {
                    // Everyone else arrives over the first 80% of the trace,
                    // strongly biased towards the beginning (u⁴ density):
                    // filelist.org monitored peers were largely active from
                    // the first day, with a tail of late joiners.
                    let u = rng.next_f64();
                    SimTime::from_millis((u.powi(4) * 0.8 * end_ms as f64) as u64)
                };
                let free_rider = is_free[i];
                let (ulo, uhi) = if free_rider {
                    self.free_rider_uplink_kibps
                } else {
                    self.uplink_kibps
                };
                let uplink = rng.range_u64(ulo as u64, uhi as u64 + 1) as u32;
                let seed_ms = rng.exp(self.mean_seed_time.as_millis() as f64) as u64;
                PeerProfile {
                    id: NodeId::from_index(i),
                    arrival,
                    connectable: rng.chance(self.connectable_fraction),
                    free_rider,
                    seed_duration: SimDuration::from_millis(seed_ms),
                    uplink_kibps: uplink,
                    downlink_kibps: uplink * self.downlink_factor,
                }
            })
            .collect()
    }

    fn gen_swarms(&self, peers: &[PeerProfile], rng: &mut DetRng) -> Vec<SwarmSpec> {
        // Initial seeders come from the founders so every swarm has content
        // available early (the tracker would not list a dead torrent).
        let founders: Vec<NodeId> = {
            let mut ids: Vec<NodeId> = peers.iter().map(|p| p.id).collect();
            ids.sort_by_key(|id| (peers[id.index()].arrival, *id));
            ids.truncate(self.founder_count.min(peers.len()).max(1));
            ids
        };
        let (lo, hi) = self.file_size_mib;
        (0..self.n_swarms)
            .map(|i| {
                // Swarms exist early: the tracker listed them before the
                // monitoring window started (creation within the first ~2%
                // of the trace, i.e. a few hours of a 7-day span).
                let created = SimTime::from_millis(rng.below(self.duration.as_millis() / 48 + 1));
                SwarmSpec {
                    id: SwarmId::from_index(i),
                    created,
                    file_size_mib: rng.range_u64(lo as u64, hi as u64 + 1) as u32,
                    piece_size_kib: self.piece_size_kib,
                    initial_seeder: *rng.pick(&founders),
                }
            })
            .collect()
    }

    fn gen_churn(
        &self,
        p: &PeerProfile,
        rarely_online: bool,
        rng: &mut DetRng,
        events: &mut Vec<TraceEvent>,
    ) {
        let end = SimTime::ZERO + self.duration;
        let alpha = self.churn_alpha;
        // Pareto scale such that the distribution mean equals the configured
        // mean: mean = x_min * alpha / (alpha - 1).
        let scale = |mean_ms: f64| mean_ms * (alpha - 1.0) / alpha;
        let sess_scale = scale(self.mean_session.as_millis() as f64);
        let gap_factor = if rarely_online {
            self.rare_gap_factor
        } else {
            1.0
        };
        let gap_scale = scale(self.mean_gap.as_millis() as f64 * gap_factor);

        let mut t = p.arrival;
        // Rarely-online peers may also start with a long initial delay.
        if rarely_online {
            t = t.saturating_add(SimDuration::from_millis(rng.pareto(gap_scale, alpha) as u64));
        }
        let mut online = false;
        while t < end {
            if online {
                events.push(TraceEvent {
                    time: t,
                    peer: p.id,
                    kind: TraceEventKind::Offline,
                });
                let gap = rng.pareto(gap_scale, alpha) as u64;
                t = t.saturating_add(SimDuration::from_millis(gap.max(1)));
            } else {
                events.push(TraceEvent {
                    time: t,
                    peer: p.id,
                    kind: TraceEventKind::Online,
                });
                let sess = rng.pareto(sess_scale, alpha) as u64;
                t = t.saturating_add(SimDuration::from_millis(sess.max(1)));
            }
            online = !online;
        }
    }

    fn gen_downloads(
        &self,
        peers: &[PeerProfile],
        swarms: &[SwarmSpec],
        rng: &mut DetRng,
        events: &mut Vec<TraceEvent>,
    ) {
        let end = SimTime::ZERO + self.duration;
        // Zipf-like swarm popularity: weight 1/(rank+1).
        let weights: Vec<f64> = (0..swarms.len()).map(|r| 1.0 / (r + 1) as f64).collect();
        let total_w: f64 = weights.iter().sum();
        for p in peers {
            // Number of downloads: 1 + geometric-ish around the mean.
            let extra = (self.mean_downloads_per_peer - 1.0).max(0.0);
            let mut k = 1;
            while rng.chance(extra / (extra + 1.0)) && k < swarms.len() {
                k += 1;
            }
            // Weighted sample without replacement.
            let mut available: Vec<usize> = (0..swarms.len()).collect();
            let mut chosen = Vec::with_capacity(k);
            let mut remaining_w = total_w;
            for _ in 0..k.min(available.len()) {
                let mut x = rng.next_f64() * remaining_w;
                let mut pick = 0;
                for (slot, &s) in available.iter().enumerate() {
                    x -= weights[s];
                    if x <= 0.0 {
                        pick = slot;
                        break;
                    }
                    pick = slot;
                }
                let s = available.swap_remove(pick);
                remaining_w -= weights[s];
                chosen.push(s);
            }
            for s in chosen {
                let spec = &swarms[s];
                if spec.initial_seeder == p.id {
                    continue; // the seeder already has the file
                }
                let eligible = p.arrival.max(spec.created);
                let delay = rng.exp(self.mean_download_delay.as_millis() as f64) as u64;
                let t = eligible.saturating_add(SimDuration::from_millis(delay));
                if t < end {
                    events.push(TraceEvent {
                        time: t,
                        peer: p.id,
                        kind: TraceEventKind::StartDownload { swarm: spec.id },
                    });
                }
            }
        }
    }
}

fn kind_rank(kind: &TraceEventKind) -> u8 {
    match kind {
        TraceEventKind::Online => 0,
        TraceEventKind::StartDownload { .. } => 1,
        TraceEventKind::Offline => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceGenConfig::quick(20, SimDuration::from_days(1));
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TraceGenConfig::quick(20, SimDuration::from_days(1));
        assert_ne!(cfg.generate(1).events, cfg.generate(2).events);
    }

    #[test]
    fn generated_trace_validates() {
        let cfg = TraceGenConfig::filelist_like();
        let t = cfg.generate(42);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn filelist_calibration_matches_paper_stats() {
        // The §VI dataset: 100 peers, ≈23k events, ~50% online, ~25%
        // free-riders. Allow the tolerances a synthetic match needs.
        let cfg = TraceGenConfig::filelist_like();
        let mut events = 0usize;
        let mut online = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let t = cfg.generate(seed);
            let st = TraceStats::compute(&t);
            assert_eq!(st.unique_peers, 100);
            events += st.event_count;
            online += st.avg_online_fraction;
            assert!(
                (st.free_rider_fraction - 0.25).abs() < 0.03,
                "free rider fraction {}",
                st.free_rider_fraction
            );
        }
        let mean_events = events as f64 / runs as f64;
        let mean_online = online / runs as f64;
        assert!(
            (18_000.0..=28_000.0).contains(&mean_events),
            "mean events {mean_events} should approximate 23k"
        );
        assert!(
            (0.40..=0.60).contains(&mean_online),
            "mean online fraction {mean_online} should approximate 0.5"
        );
    }

    #[test]
    fn founders_arrive_first() {
        let cfg = TraceGenConfig::filelist_like();
        let t = cfg.generate(3);
        let order = t.arrival_order();
        // The first founder_count arrivals should all be within 30 minutes.
        for id in order.iter().take(cfg.founder_count) {
            assert!(t.peers[id.index()].arrival <= SimTime::from_mins(30));
        }
    }

    #[test]
    fn rarely_online_peers_exist() {
        let cfg = TraceGenConfig::filelist_like();
        let t = cfg.generate(11);
        let online = t.online_time_per_peer();
        let dur = t.duration.as_millis() as f64;
        let rare = online
            .iter()
            .filter(|d| (d.as_millis() as f64 / dur) < 0.10)
            .count();
        assert!(rare >= 3, "expected rarely-online stragglers, found {rare}");
    }

    #[test]
    fn free_riders_have_small_uplinks() {
        let cfg = TraceGenConfig::filelist_like();
        let t = cfg.generate(5);
        let max_fr = cfg.free_rider_uplink_kibps.1;
        let min_alt = cfg.uplink_kibps.0;
        for p in &t.peers {
            if p.free_rider {
                assert!(p.uplink_kibps <= max_fr);
            } else {
                assert!(p.uplink_kibps >= min_alt);
            }
        }
    }

    #[test]
    fn every_swarm_has_a_founder_seeder() {
        let cfg = TraceGenConfig::filelist_like();
        let t = cfg.generate(9);
        let order = t.arrival_order();
        let founders: std::collections::BTreeSet<_> =
            order.iter().take(cfg.founder_count).collect();
        for s in &t.swarms {
            assert!(
                founders.contains(&s.initial_seeder),
                "swarm {} seeded by non-founder {}",
                s.id,
                s.initial_seeder
            );
        }
    }

    #[test]
    fn downloads_reference_valid_swarms_and_skip_seeder() {
        let cfg = TraceGenConfig::quick(30, SimDuration::from_days(2));
        let t = cfg.generate(21);
        for ev in &t.events {
            if let TraceEventKind::StartDownload { swarm } = ev.kind {
                let spec = &t.swarms[swarm.index()];
                assert_ne!(
                    spec.initial_seeder, ev.peer,
                    "initial seeder must not re-download"
                );
            }
        }
    }

    #[test]
    fn quick_preset_scales_down() {
        let cfg = TraceGenConfig::quick(10, SimDuration::from_hours(6));
        let t = cfg.generate(1);
        assert_eq!(t.peer_count(), 10);
        assert_eq!(t.swarms.len(), 3);
        assert!(t.events.len() > 10);
        assert_eq!(t.validate(), Ok(()));
    }
}
