//! The trace data model: peers, swarms, and the time-ordered event stream.

use rvs_sim::{NodeId, SimDuration, SimTime, SwarmId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happened at a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The peer came online (its client started).
    Online,
    /// The peer went offline (client stopped / network lost).
    Offline,
    /// The peer began downloading the given swarm's file. The BitTorrent
    /// simulator takes over from here: the peer leeches while online and, on
    /// completion, seeds according to its [`PeerProfile`].
    StartDownload {
        /// The swarm being joined as a leecher.
        swarm: SwarmId,
    },
}

/// One timestamped event in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event occurred.
    pub time: SimTime,
    /// The peer it concerns.
    pub peer: NodeId,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Static, per-peer attributes recorded by (or derived from) the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerProfile {
    /// Dense peer identifier; index into [`Trace::peers`].
    pub id: NodeId,
    /// First moment the peer enters the system. The paper designates the
    /// first three arrivals as moderators M1, M2, M3.
    pub arrival: SimTime,
    /// Whether the peer is freely connectable or firewalled. Two firewalled
    /// peers cannot open a BitTorrent connection to each other.
    pub connectable: bool,
    /// Free-riders leave each swarm as soon as their download completes and
    /// have modest uplinks; the paper found ≈25% of traced peers "uploaded
    /// little to others".
    pub free_rider: bool,
    /// How long an altruistic peer keeps seeding a completed file while
    /// online (ignored for free-riders, who leave immediately).
    pub seed_duration: SimDuration,
    /// Upload capacity in KiB/s.
    pub uplink_kibps: u32,
    /// Download capacity in KiB/s.
    pub downlink_kibps: u32,
}

/// A swarm: one shared file behind one .torrent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwarmSpec {
    /// Dense swarm identifier; index into [`Trace::swarms`].
    pub id: SwarmId,
    /// When the swarm (and its initial seeder) appears.
    pub created: SimTime,
    /// Size of the shared file in MiB. filelist.org traces record file size
    /// per swarm; typical media files run hundreds of MiB.
    pub file_size_mib: u32,
    /// Piece size in KiB (BitTorrent default region: 256 KiB – 1 MiB).
    pub piece_size_kib: u32,
    /// The peer acting as the swarm's initial seeder.
    pub initial_seeder: NodeId,
}

impl SwarmSpec {
    /// Number of pieces in the file (ceiling division).
    pub fn piece_count(&self) -> u32 {
        let file_kib = self.file_size_mib as u64 * 1024;
        (file_kib.div_ceil(self.piece_size_kib as u64)) as u32
    }
}

/// Stable binary encoding: a `u8` discriminant (0 = Online, 1 = Offline,
/// 2 = StartDownload followed by the swarm id).
impl rvs_checkpoint::Persist for TraceEventKind {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        match self {
            TraceEventKind::Online => enc.u8(0),
            TraceEventKind::Offline => enc.u8(1),
            TraceEventKind::StartDownload { swarm } => {
                enc.u8(2);
                swarm.persist(enc);
            }
        }
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(TraceEventKind::Online),
            1 => Ok(TraceEventKind::Offline),
            2 => Ok(TraceEventKind::StartDownload {
                swarm: SwarmId::restore(dec)?,
            }),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid TraceEventKind discriminant {d}"
            ))),
        }
    }
}

/// Stable binary encoding: time, peer, kind.
impl rvs_checkpoint::Persist for TraceEvent {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.time.persist(enc);
        self.peer.persist(enc);
        self.kind.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(TraceEvent {
            time: SimTime::restore(dec)?,
            peer: NodeId::restore(dec)?,
            kind: TraceEventKind::restore(dec)?,
        })
    }
}

/// Stable binary encoding: fields in declaration order.
impl rvs_checkpoint::Persist for PeerProfile {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.id.persist(enc);
        self.arrival.persist(enc);
        enc.bool(self.connectable);
        enc.bool(self.free_rider);
        self.seed_duration.persist(enc);
        enc.u32(self.uplink_kibps);
        enc.u32(self.downlink_kibps);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(PeerProfile {
            id: NodeId::restore(dec)?,
            arrival: SimTime::restore(dec)?,
            connectable: dec.bool()?,
            free_rider: dec.bool()?,
            seed_duration: SimDuration::restore(dec)?,
            uplink_kibps: dec.u32()?,
            downlink_kibps: dec.u32()?,
        })
    }
}

/// Stable binary encoding: fields in declaration order.
impl rvs_checkpoint::Persist for SwarmSpec {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.id.persist(enc);
        self.created.persist(enc);
        enc.u32(self.file_size_mib);
        enc.u32(self.piece_size_kib);
        self.initial_seeder.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SwarmSpec {
            id: SwarmId::restore(dec)?,
            created: SimTime::restore(dec)?,
            file_size_mib: dec.u32()?,
            piece_size_kib: dec.u32()?,
            initial_seeder: NodeId::restore(dec)?,
        })
    }
}

/// Validation failures for a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Events are not sorted by time.
    UnsortedEvents {
        /// Index of the first out-of-order event.
        index: usize,
    },
    /// An event references a peer outside `peers`.
    UnknownPeer {
        /// Index of the offending event.
        index: usize,
        /// The unknown peer id.
        peer: NodeId,
    },
    /// An event references a swarm outside `swarms`.
    UnknownSwarm {
        /// Index of the offending event.
        index: usize,
        /// The unknown swarm id.
        swarm: SwarmId,
    },
    /// A peer's Online/Offline events do not alternate correctly.
    ChurnMismatch {
        /// The peer with inconsistent churn.
        peer: NodeId,
    },
    /// A peer profile's id does not match its position.
    MisindexedPeer {
        /// Position in `peers`.
        index: usize,
    },
    /// A swarm spec's id does not match its position.
    MisindexedSwarm {
        /// Position in `swarms`.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnsortedEvents { index } => {
                write!(f, "event {index} is earlier than its predecessor")
            }
            TraceError::UnknownPeer { index, peer } => {
                write!(f, "event {index} references unknown peer {peer}")
            }
            TraceError::UnknownSwarm { index, swarm } => {
                write!(f, "event {index} references unknown swarm {swarm}")
            }
            TraceError::ChurnMismatch { peer } => {
                write!(f, "peer {peer} has non-alternating online/offline events")
            }
            TraceError::MisindexedPeer { index } => {
                write!(f, "peer profile at index {index} has mismatched id")
            }
            TraceError::MisindexedSwarm { index } => {
                write!(f, "swarm spec at index {index} has mismatched id")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A complete trace: the population, the swarms, and the event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Seed the trace was generated from (0 for imported real traces).
    pub seed: u64,
    /// Total monitored span (the paper's traces cover 7 days).
    pub duration: SimDuration,
    /// All peers ever observed, indexed by [`NodeId`].
    pub peers: Vec<PeerProfile>,
    /// All swarms, indexed by [`SwarmId`].
    pub swarms: Vec<SwarmSpec>,
    /// Time-ordered event stream.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of unique peers in the trace.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Peers in order of first arrival. The first three are the paper's
    /// moderators M1, M2, M3 in the Figure-6 experiment.
    pub fn arrival_order(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.peers.iter().map(|p| p.id).collect();
        ids.sort_by_key(|id| (self.peers[id.index()].arrival, *id));
        ids
    }

    /// Check structural invariants: sorted events, known ids, alternating
    /// churn per peer, dense indexing.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (i, p) in self.peers.iter().enumerate() {
            if p.id.index() != i {
                return Err(TraceError::MisindexedPeer { index: i });
            }
        }
        for (i, s) in self.swarms.iter().enumerate() {
            if s.id.index() != i {
                return Err(TraceError::MisindexedSwarm { index: i });
            }
        }
        let mut online = vec![false; self.peers.len()];
        let mut last = SimTime::ZERO;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.time < last {
                return Err(TraceError::UnsortedEvents { index: i });
            }
            last = ev.time;
            if ev.peer.index() >= self.peers.len() {
                return Err(TraceError::UnknownPeer {
                    index: i,
                    peer: ev.peer,
                });
            }
            match ev.kind {
                TraceEventKind::Online => {
                    if online[ev.peer.index()] {
                        return Err(TraceError::ChurnMismatch { peer: ev.peer });
                    }
                    online[ev.peer.index()] = true;
                }
                TraceEventKind::Offline => {
                    if !online[ev.peer.index()] {
                        return Err(TraceError::ChurnMismatch { peer: ev.peer });
                    }
                    online[ev.peer.index()] = false;
                }
                TraceEventKind::StartDownload { swarm } => {
                    if swarm.index() >= self.swarms.len() {
                        return Err(TraceError::UnknownSwarm { index: i, swarm });
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-peer total online time over the trace (peers still online at the
    /// end are credited up to `duration`).
    pub fn online_time_per_peer(&self) -> Vec<SimDuration> {
        let end = SimTime::ZERO + self.duration;
        let mut total = vec![SimDuration::ZERO; self.peers.len()];
        let mut since: Vec<Option<SimTime>> = vec![None; self.peers.len()];
        for ev in &self.events {
            match ev.kind {
                TraceEventKind::Online => since[ev.peer.index()] = Some(ev.time),
                TraceEventKind::Offline => {
                    if let Some(s) = since[ev.peer.index()].take() {
                        total[ev.peer.index()] += ev.time - s;
                    }
                }
                TraceEventKind::StartDownload { .. } => {}
            }
        }
        for (i, s) in since.iter().enumerate() {
            if let Some(s) = *s {
                total[i] += end - s;
            }
        }
        total
    }
}

/// Stable binary encoding: seed, duration, peers, swarms, events.
impl rvs_checkpoint::Persist for Trace {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.seed);
        self.duration.persist(enc);
        self.peers.persist(enc);
        self.swarms.persist(enc);
        self.events.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Trace {
            seed: dec.u64()?,
            duration: SimDuration::restore(dec)?,
            peers: Vec::restore(dec)?,
            swarms: Vec::restore(dec)?,
            events: Vec::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(i: u32, arrival_h: u64) -> PeerProfile {
        PeerProfile {
            id: NodeId(i),
            arrival: SimTime::from_hours(arrival_h),
            connectable: true,
            free_rider: false,
            seed_duration: SimDuration::from_hours(10),
            uplink_kibps: 512,
            downlink_kibps: 2048,
        }
    }

    fn tiny_trace() -> Trace {
        Trace {
            seed: 1,
            duration: SimDuration::from_days(7),
            peers: vec![peer(0, 0), peer(1, 2)],
            swarms: vec![SwarmSpec {
                id: SwarmId(0),
                created: SimTime::ZERO,
                file_size_mib: 700,
                piece_size_kib: 256,
                initial_seeder: NodeId(0),
            }],
            events: vec![
                TraceEvent {
                    time: SimTime::ZERO,
                    peer: NodeId(0),
                    kind: TraceEventKind::Online,
                },
                TraceEvent {
                    time: SimTime::from_hours(2),
                    peer: NodeId(1),
                    kind: TraceEventKind::Online,
                },
                TraceEvent {
                    time: SimTime::from_hours(2),
                    peer: NodeId(1),
                    kind: TraceEventKind::StartDownload { swarm: SwarmId(0) },
                },
                TraceEvent {
                    time: SimTime::from_hours(5),
                    peer: NodeId(1),
                    kind: TraceEventKind::Offline,
                },
            ],
        }
    }

    #[test]
    fn valid_trace_passes() {
        assert_eq!(tiny_trace().validate(), Ok(()));
    }

    #[test]
    fn unsorted_events_rejected() {
        let mut t = tiny_trace();
        // Two Online events for different peers, out of time order: the
        // churn invariant stays intact so the sort check fires.
        t.events.swap(0, 1);
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnsortedEvents { .. })
        ));
    }

    #[test]
    fn unknown_peer_rejected() {
        let mut t = tiny_trace();
        t.events[0].peer = NodeId(99);
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnknownPeer {
                peer: NodeId(99),
                ..
            })
        ));
    }

    #[test]
    fn unknown_swarm_rejected() {
        let mut t = tiny_trace();
        t.events[2].kind = TraceEventKind::StartDownload { swarm: SwarmId(7) };
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnknownSwarm {
                swarm: SwarmId(7),
                ..
            })
        ));
    }

    #[test]
    fn double_online_rejected() {
        let mut t = tiny_trace();
        t.events[1] = TraceEvent {
            time: SimTime::from_hours(1),
            peer: NodeId(0),
            kind: TraceEventKind::Online,
        };
        assert!(matches!(
            t.validate(),
            Err(TraceError::ChurnMismatch { peer: NodeId(0) })
        ));
    }

    #[test]
    fn offline_without_online_rejected() {
        let mut t = tiny_trace();
        t.events = vec![TraceEvent {
            time: SimTime::ZERO,
            peer: NodeId(1),
            kind: TraceEventKind::Offline,
        }];
        assert!(matches!(
            t.validate(),
            Err(TraceError::ChurnMismatch { peer: NodeId(1) })
        ));
    }

    #[test]
    fn misindexed_peer_rejected() {
        let mut t = tiny_trace();
        t.peers[1].id = NodeId(5);
        assert_eq!(t.validate(), Err(TraceError::MisindexedPeer { index: 1 }));
    }

    #[test]
    fn arrival_order_sorts_by_time() {
        let t = tiny_trace();
        assert_eq!(t.arrival_order(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn online_time_credits_open_sessions_to_end() {
        let t = tiny_trace();
        let online = t.online_time_per_peer();
        // Peer 0 never goes offline: credited the full 7 days.
        assert_eq!(online[0], SimDuration::from_days(7));
        // Peer 1 online 2h..5h.
        assert_eq!(online[1], SimDuration::from_hours(3));
    }

    #[test]
    fn piece_count_rounds_up() {
        let s = SwarmSpec {
            id: SwarmId(0),
            created: SimTime::ZERO,
            file_size_mib: 1,
            piece_size_kib: 1000,
            initial_seeder: NodeId(0),
        };
        // 1024 KiB / 1000 KiB -> 2 pieces.
        assert_eq!(s.piece_count(), 2);
        let s2 = SwarmSpec {
            piece_size_kib: 256,
            ..s
        };
        assert_eq!(s2.piece_count(), 4);
    }

    #[test]
    fn trace_error_display_is_informative() {
        let e = TraceError::UnknownPeer {
            index: 3,
            peer: NodeId(9),
        };
        assert!(e.to_string().contains("n9"));
    }
}
