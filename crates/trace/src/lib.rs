//! Peer churn traces for driving the BitTorrent / gossip simulations.
//!
//! The paper's evaluation replays real traces from the private tracker
//! *filelist.org*: 10 traces, each monitoring **100 unique peers over 7
//! days** with **≈23,000 events**, average online fraction **≈50%**, and
//! **≈25% of peers uploading little** (free-riders). The original dataset
//! (`tom-data.zip`) is no longer retrievable, so this crate provides:
//!
//! * a faithful **trace model** ([`Trace`], [`TraceEvent`], [`PeerProfile`],
//!   [`SwarmSpec`]) able to represent the original data,
//! * a **synthetic generator** ([`gen::TraceGenConfig`]) calibrated to every
//!   statistic the paper reports (heavy-tailed sessions, ~50% online, ~25%
//!   free-riders, rarely-online stragglers, mixed connectability),
//! * **statistics** ([`stats::TraceStats`]) to verify the calibration — this
//!   regenerates the dataset summary quoted in §VI ("Table 1" in our
//!   experiment index), and
//! * **serde JSON I/O** ([`io`]) so real traces can be dropped in later.

pub mod gen;
pub mod io;
pub mod model;
pub mod stats;

pub use gen::TraceGenConfig;
pub use model::{PeerProfile, SwarmSpec, Trace, TraceError, TraceEvent, TraceEventKind};
pub use stats::TraceStats;
