//! JSON (de)serialization for traces.
//!
//! Real filelist.org-style traces can be converted to this schema and
//! dropped into any experiment in place of the synthetic generator.

use crate::model::{Trace, TraceError};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors arising while loading a trace from disk.
#[derive(Debug)]
pub enum TraceIoError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// The file parsed but violates trace invariants.
    Invalid(TraceError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceIoError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
            TraceIoError::Invalid(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}
impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Serialize a trace to pretty JSON.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string_pretty(trace).expect("trace serialization is infallible")
}

/// Parse and validate a trace from JSON.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    let trace: Trace = serde_json::from_str(json)?;
    trace.validate().map_err(TraceIoError::Invalid)?;
    Ok(trace)
}

/// Write a trace to a JSON file.
pub fn save(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    fs::write(path, to_json(trace))?;
    Ok(())
}

/// Load and validate a trace from a JSON file.
pub fn load(path: &Path) -> Result<Trace, TraceIoError> {
    let json = fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenConfig;
    use rvs_sim::SimDuration;

    #[test]
    fn json_roundtrip_preserves_trace() {
        let cfg = TraceGenConfig::quick(8, SimDuration::from_hours(8));
        let t = cfg.generate(4);
        let json = to_json(&t);
        let back = from_json(&json).expect("roundtrip");
        assert_eq!(t, back);
    }

    #[test]
    fn invalid_trace_rejected_on_load() {
        let cfg = TraceGenConfig::quick(4, SimDuration::from_hours(4));
        let mut t = cfg.generate(1);
        // Corrupt: point an event at a peer that doesn't exist.
        t.events[0].peer = rvs_sim::NodeId(99);
        let json = serde_json::to_string(&t).unwrap();
        assert!(matches!(
            from_json(&json),
            Err(TraceIoError::Invalid(TraceError::UnknownPeer { .. }))
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(from_json("{not json"), Err(TraceIoError::Json(_))));
    }

    #[test]
    fn file_roundtrip() {
        // rvs-lint: allow(ambient-env) -- test needs a scratch directory; only file contents are asserted
        let dir = std::env::temp_dir().join("rvs_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let cfg = TraceGenConfig::quick(6, SimDuration::from_hours(6));
        let t = cfg.generate(2);
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/rvs-trace.json")).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
