//! Property-based tests: every generated trace satisfies the structural
//! invariants, for arbitrary (sane) generator configurations.

use proptest::prelude::*;
use rvs_sim::SimDuration;
use rvs_trace::{TraceGenConfig, TraceStats};

fn arb_config() -> impl Strategy<Value = TraceGenConfig> {
    (
        2usize..40,  // n_peers
        1u64..72,    // duration hours
        0usize..10,  // founder_count (may exceed peers; clamped)
        5u64..120,   // mean session minutes
        5u64..120,   // mean gap minutes
        1usize..6,   // swarms
        0.0f64..0.9, // free rider fraction
        0.0f64..1.0, // connectable fraction
    )
        .prop_map(
            |(n, hours, founders, sess, gap, swarms, fr, conn)| TraceGenConfig {
                n_peers: n,
                duration: SimDuration::from_hours(hours),
                founder_count: founders,
                mean_session: SimDuration::from_mins(sess),
                mean_gap: SimDuration::from_mins(gap),
                n_swarms: swarms,
                free_rider_fraction: fr,
                connectable_fraction: conn,
                ..TraceGenConfig::filelist_like()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated traces always validate, and regeneration is bit-identical.
    #[test]
    fn generated_traces_validate_and_repeat(cfg in arb_config(), seed: u64) {
        let t = cfg.generate(seed);
        prop_assert_eq!(t.validate(), Ok(()));
        prop_assert_eq!(&t, &cfg.generate(seed));
        prop_assert_eq!(t.peers.len(), cfg.n_peers);
        prop_assert_eq!(t.swarms.len(), cfg.n_swarms);
    }

    /// Statistics are internally consistent with the trace.
    #[test]
    fn stats_are_consistent(cfg in arb_config(), seed: u64) {
        let t = cfg.generate(seed);
        let st = TraceStats::compute(&t);
        prop_assert_eq!(st.unique_peers, t.peer_count());
        prop_assert_eq!(st.event_count, t.events.len());
        prop_assert!((0.0..=1.0).contains(&st.avg_online_fraction));
        prop_assert!((0.0..=1.0).contains(&st.free_rider_fraction));
        prop_assert!((0.0..=1.0).contains(&st.connectable_fraction));
        prop_assert!(st.rarely_online_peers <= st.unique_peers);
        // Online time cannot exceed the trace span for any peer.
        for d in t.online_time_per_peer() {
            prop_assert!(d.as_millis() <= t.duration.as_millis());
        }
    }

    /// JSON roundtrips preserve every generated trace.
    #[test]
    fn json_roundtrip(cfg in arb_config(), seed: u64) {
        let t = cfg.generate(seed);
        let json = rvs_trace::io::to_json(&t);
        let back = rvs_trace::io::from_json(&json).expect("valid JSON of a valid trace");
        prop_assert_eq!(t, back);
    }

    /// Arrival order is consistent with profile arrival times.
    #[test]
    fn arrival_order_sorted(cfg in arb_config(), seed: u64) {
        let t = cfg.generate(seed);
        let order = t.arrival_order();
        for w in order.windows(2) {
            prop_assert!(
                t.peers[w[0].index()].arrival <= t.peers[w[1].index()].arrival
            );
        }
    }
}
