//! Property tests for the shard partition function and the bus it feeds.
//!
//! `route` is the load-bearing pure function of the scale-out engine: if
//! it double-assigned, dropped, or renumber-shifted a peer, the barrier
//! order (and hence byte-identity) would silently break. These tests pin
//! its contract over arbitrary `(population, K)` and prove the bus's own
//! bookkeeping agrees with it.

use proptest::prelude::*;
use rvs_shard::{members, route, Envelope, ShardBus, ShardConfig};
use rvs_sim::NodeId;

proptest! {
    /// Every peer lands in exactly one shard, and that shard is in range.
    #[test]
    fn route_is_total_and_in_range(id in 0usize..100_000, k in 1usize..64) {
        let s = route(NodeId::from_index(id), k);
        prop_assert!(s < k);
        // Pure function: the same inputs always give the same shard.
        prop_assert_eq!(s, route(NodeId::from_index(id), k));
    }

    /// `members(n, k)` is a partition: each of the `n` peers appears in
    /// exactly one shard, in the shard `route` names, ascending.
    #[test]
    fn members_is_a_partition(n in 0usize..2_000, k in 1usize..16) {
        let m = members(n, k);
        prop_assert_eq!(m.len(), k);
        let mut seen = vec![false; n];
        for (shard, list) in m.iter().enumerate() {
            let mut prev = None;
            for &node in list {
                prop_assert_eq!(route(node, k), shard);
                prop_assert!(node.index() < n);
                prop_assert!(!seen[node.index()], "peer listed twice");
                seen[node.index()] = true;
                if let Some(p) = prev {
                    prop_assert!(p < node, "member list not ascending");
                }
                prev = Some(node);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "peer missing from every shard");
    }

    /// Churn stability: a peer's shard depends only on its own id and K —
    /// never on which other peers exist. Deleting or adding arbitrary
    /// peers (renumbering the *population*, not the ids) moves nobody.
    #[test]
    fn route_is_stable_under_churn(
        ids in prop::collection::vec(0usize..10_000, 1..200),
        k in 1usize..16,
    ) {
        let survivors: std::collections::BTreeSet<usize> = ids.into_iter().collect();
        // Assignments computed in the full population...
        let full: Vec<(usize, usize)> = survivors
            .iter()
            .map(|&id| (id, route(NodeId::from_index(id), k)))
            .collect();
        // ...must match assignments computed as if the survivors were the
        // whole world: route never looks at population size or position.
        for (id, shard) in full {
            prop_assert_eq!(route(NodeId::from_index(id), k), shard);
        }
    }

    /// The SplitMix64 mix keeps shards statistically balanced: no shard
    /// hogs more than ~2x its fair share once the population is large
    /// enough to average out.
    #[test]
    fn route_balances_large_populations(k in 2usize..9) {
        let n = 8_192;
        let m = members(n, k);
        let fair = n / k;
        for (shard, list) in m.iter().enumerate() {
            prop_assert!(
                list.len() > fair / 2 && list.len() < fair * 2,
                "shard {} holds {} of {} (fair share {})",
                shard, list.len(), n, fair
            );
        }
    }

    /// Bus bookkeeping agrees with `route`: posting one envelope per peer
    /// classifies exactly the cross-shard pairs as routed, delivers all of
    /// them at the barrier in canonical order, and rejects nothing.
    #[test]
    fn bus_bookkeeping_agrees_with_route(
        n in 1usize..200,
        k in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let mut bus = ShardBus::new(ShardConfig { shards: k, admission: true });
        bus.begin_round(1);
        let mut expect_routed = 0u64;
        let mut expect_local = 0u64;
        for i in 0..n {
            let sender = NodeId::from_index(i);
            // A deterministic pseudo-target derived from the case seed.
            let target = NodeId::from_index(((i as u64 + seed) % n as u64) as usize);
            if route(sender, k) == route(target, k) {
                expect_local += 1;
            } else {
                expect_routed += 1;
            }
            bus.post(sender, target, vec![i as u8]);
        }
        prop_assert_eq!(bus.counters().envelopes_local, expect_local);
        prop_assert_eq!(bus.counters().envelopes_routed, expect_routed);
        prop_assert_eq!(bus.in_flight(), n as u64);

        let delivered: Vec<Envelope> = bus.drain_barrier();
        prop_assert_eq!(delivered.len(), n, "admission must pass every honest envelope");
        prop_assert_eq!(bus.counters().envelopes_rejected, 0);
        prop_assert_eq!(bus.in_flight(), 0);
        // Canonical order: ascending (round, sender, seq).
        for pair in delivered.windows(2) {
            prop_assert!(pair[0].key() < pair[1].key(), "barrier order not canonical");
        }
        // Exactly the posted senders, ascending — the same order the
        // monolithic apply loop would have used.
        for (i, env) in delivered.iter().enumerate() {
            prop_assert_eq!(env.sender.index(), i);
            prop_assert_eq!(env.round, 1);
        }
    }

    /// Envelope codec: encode → decode → encode is byte-identical for
    /// arbitrary payload bytes, and the decoded envelope matches.
    #[test]
    fn envelope_roundtrips_canonically(
        round in 0u64..u64::MAX,
        sender in 0usize..1_000_000,
        seq in 0u32..u32::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let env = Envelope {
            round,
            sender: NodeId::from_index(sender),
            seq,
            payload,
        };
        let bytes = rvs_checkpoint::to_bytes(&env);
        let back: Envelope = rvs_checkpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &env);
        prop_assert_eq!(rvs_checkpoint::to_bytes(&back), bytes);
    }

    /// Hostile bytes never panic the envelope decoder: arbitrary input is
    /// either a valid envelope or a typed `DecodeError`.
    #[test]
    fn envelope_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = rvs_checkpoint::from_bytes::<Envelope>(&bytes);
    }
}
