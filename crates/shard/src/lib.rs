//! Deterministic shard partitioning and the cross-shard envelope bus.
//!
//! This crate is the comms plane of the sharded scale-out engine. The peer
//! population is partitioned into K deterministic shards by [`route`] — a
//! pure function of `(peer id, K)`, so the assignment is stable under peer
//! churn and independent of arrival order, thread count, or any runtime
//! state. Each shard plans its members' sends locally; every planned send
//! is serialized with the canonical `Persist` codec (the PR 6 checkpoint
//! wire format doubles as the inter-shard wire format) into an
//! [`Envelope`] and posted to the [`ShardBus`].
//!
//! The bus is the only channel between shards. Envelopes accumulate during
//! the planning phase and are released at the round barrier by
//! [`ShardBus::drain_barrier`], sorted by the canonical delivery key
//! `(round, sender, seq)`. Because senders are planned in ascending-id
//! order inside each shard and every sender posts with a per-round
//! monotone sequence number, the drained order is exactly the ascending
//! sender order of the K=1 monolithic engine — which is what makes a
//! K-shard run byte-identical to the monolithic run (proven end-to-end by
//! `tests/shard_differential.rs`).
//!
//! Hostile input is handled like everywhere else in the workspace: the
//! drain admission gate refuses structurally invalid envelopes (wrong
//! source shard, future round, duplicate delivery key) with typed
//! [`ShardCounters`] attribution and never panics. Envelopes restored from
//! a checkpoint with an earlier round are delivered at the next barrier
//! and counted as deferred.

use std::collections::BTreeMap;

use rvs_checkpoint::{DecodeError, Decoder, Encoder, Persist};
use rvs_sim::NodeId;
use rvs_telemetry::ShardCounters;

/// Configuration of the shard plane. With the default (`shards == 1`)
/// every peer lands on shard 0 and all bus traffic is intra-shard; the
/// engine still runs the full envelope path so K=1 and K>1 share one code
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards K (clamped to at least 1 by [`ShardBus`]).
    pub shards: usize,
    /// Run the structural admission gate on every drained envelope.
    /// Honest traffic never trips it; disabling skips the checks for
    /// benchmarking the gate's overhead.
    pub admission: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            admission: true,
        }
    }
}

/// Stable binary encoding: shard count then the admission flag, in
/// declaration order. Changing this layout bumps
/// `rvs_checkpoint::FORMAT_VERSION`.
impl Persist for ShardConfig {
    fn persist(&self, enc: &mut Encoder) {
        enc.usize(self.shards);
        enc.bool(self.admission);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ShardConfig {
            shards: dec.usize()?,
            admission: dec.bool()?,
        })
    }
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard owning `peer` under a K-shard partition. A pure function of
/// `(peer id, K)`: stable under churn and renumbering of *other* peers,
/// independent of any runtime state. The id is avalanche-mixed before the
/// modulo so contiguous id ranges (the trace population head, the flash
/// crowd tail) spread evenly instead of landing on consecutive shards.
pub fn route(peer: NodeId, shards: usize) -> usize {
    let k = shards.max(1);
    (mix64(peer.index() as u64) % k as u64) as usize
}

/// Shard membership lists for a population of `n` peers: `members[s]`
/// holds every peer with `route(peer, K) == s`, in ascending id order.
/// A pure projection of `(n, K)` — rebuilt, never persisted.
pub fn members(n: usize, shards: usize) -> Vec<Vec<NodeId>> {
    let k = shards.max(1);
    let mut out = vec![Vec::new(); k];
    for i in 0..n {
        let peer = NodeId::from_index(i);
        out[route(peer, k)].push(peer);
    }
    out
}

/// One serialized cross-shard message. The payload is opaque to the bus
/// (the scenario layer encodes `(target, SendOutcome)` through the
/// canonical codec); the envelope header carries exactly the fields the
/// canonical delivery order needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The gossip round the envelope was posted in.
    pub round: u64,
    /// The planning peer. Envelopes drain in ascending sender order
    /// within a round.
    pub sender: NodeId,
    /// Per-(round, sender) monotone sequence number, assigned by the bus
    /// at post time.
    pub seq: u32,
    /// Canonical-codec payload bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// The canonical delivery key: `(round, sender, seq)`.
    pub fn key(&self) -> (u64, u64, u32) {
        (self.round, self.sender.index() as u64, self.seq)
    }
}

/// Stable binary encoding: round, sender, seq, then the length-prefixed
/// payload, in declaration order. This is the inter-shard wire format;
/// changing it bumps `rvs_checkpoint::FORMAT_VERSION`.
impl Persist for Envelope {
    fn persist(&self, enc: &mut Encoder) {
        enc.u64(self.round);
        self.sender.persist(enc);
        enc.u32(self.seq);
        self.payload.persist(enc);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Envelope {
            round: dec.u64()?,
            sender: NodeId::restore(dec)?,
            seq: dec.u32()?,
            payload: Vec::restore(dec)?,
        })
    }
}

/// A queued envelope with its routing record: the source and destination
/// shard computed at post time (kept for admission checks and counters;
/// delivery itself is a global canonical drain, so stale shard ids after a
/// `set_shards` re-partition are harmless bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    src: u32,
    dst: u32,
    env: Envelope,
}

/// Stable binary encoding: source shard, destination shard, envelope.
impl Persist for InFlight {
    fn persist(&self, enc: &mut Encoder) {
        enc.u32(self.src);
        enc.u32(self.dst);
        self.env.persist(enc);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(InFlight {
            src: dec.u32()?,
            dst: dec.u32()?,
            env: Envelope::restore(dec)?,
        })
    }
}

/// The cross-shard message bus: envelopes posted during the planning
/// phase, released in canonical `(round, sender, seq)` order at the round
/// barrier. Single-owner and strictly deterministic — the bus never
/// consumes randomness and never reorders beyond the canonical sort.
#[derive(Debug, Clone)]
pub struct ShardBus {
    cfg: ShardConfig,
    /// The round currently being planned (monotone; advanced by
    /// [`ShardBus::begin_round`]).
    round: u64,
    /// Envelopes posted but not yet drained.
    queued: Vec<InFlight>,
    /// Next sequence number per sender for the current round. Cleared at
    /// every `begin_round`; rounds never straddle a checkpoint, so this
    /// is volatile by design.
    next_seq: BTreeMap<u64, u32>,
    counters: ShardCounters,
}

impl ShardBus {
    /// An empty bus under `cfg` (shard count clamped to at least 1).
    pub fn new(cfg: ShardConfig) -> ShardBus {
        let mut cfg = cfg;
        cfg.shards = cfg.shards.max(1);
        ShardBus {
            cfg,
            round: 0,
            queued: Vec::new(),
            next_seq: BTreeMap::new(),
            counters: ShardCounters::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The shard count K.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// Re-partition to `shards` shards (clamped to at least 1). Queued
    /// envelopes keep their recorded routing — delivery is a global
    /// canonical drain, so re-partitioning between rounds never loses or
    /// reorders messages.
    pub fn set_shards(&mut self, shards: usize) {
        self.cfg.shards = shards.max(1);
    }

    /// Open a new planning round: all envelopes posted until the next
    /// [`ShardBus::drain_barrier`] carry `round`, with per-sender
    /// sequence numbers restarting at 0.
    pub fn begin_round(&mut self, round: u64) {
        self.round = round;
        self.next_seq.clear();
    }

    /// The round most recently opened.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Post one serialized send from `sender` (addressed to `target`,
    /// already encoded inside `payload`) onto the bus. Assigns the
    /// envelope's sequence number and records the source/destination
    /// shards under the current partition.
    pub fn post(&mut self, sender: NodeId, target: NodeId, payload: Vec<u8>) {
        let src = route(sender, self.cfg.shards) as u32;
        let dst = route(target, self.cfg.shards) as u32;
        let seq_slot = self.next_seq.entry(sender.index() as u64).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        if src == dst {
            self.counters.envelopes_local += 1;
        } else {
            self.counters.envelopes_routed += 1;
        }
        self.counters.bus_bytes += payload.len() as u64;
        self.queued.push(InFlight {
            src,
            dst,
            env: Envelope {
                round: self.round,
                sender,
                seq,
                payload,
            },
        });
        let depth = self.queued.len() as u64;
        if depth > self.counters.queue_high_watermark {
            self.counters.queue_high_watermark = depth;
        }
    }

    /// Envelopes queued and not yet drained — the `bus_in_flight` term of
    /// the encounter conservation identity.
    pub fn in_flight(&self) -> u64 {
        self.queued.len() as u64
    }

    /// The queued envelopes in posting order. Delivery goes through
    /// [`ShardBus::drain_barrier`]; this read-only view exists for tests
    /// and for cross-field checkpoint validation.
    pub fn queued_envelopes(&self) -> impl Iterator<Item = &Envelope> {
        self.queued.iter().map(|q| &q.env)
    }

    /// Release every queued envelope in canonical `(round, sender, seq)`
    /// order. When admission is on, structurally invalid envelopes are
    /// refused with counter attribution instead of delivered: an envelope
    /// from a round later than the current one, a current-round envelope
    /// whose recorded source shard contradicts `route(sender, K)`, or a
    /// duplicate delivery key. Envelopes from earlier rounds (restored
    /// from a checkpoint) are delivered first and counted as deferred.
    pub fn drain_barrier(&mut self) -> Vec<Envelope> {
        let mut queued = std::mem::take(&mut self.queued);
        // Stable sort: canonical keys are unique for honest traffic, and
        // hostile duplicates keep posting order so the gate below refuses
        // a deterministic copy.
        queued.sort_by_key(|q| q.env.key());
        let mut out = Vec::with_capacity(queued.len());
        let mut last_key: Option<(u64, u64, u32)> = None;
        for q in queued {
            if self.cfg.admission {
                if q.env.round > self.round {
                    self.counters.envelopes_rejected += 1;
                    continue;
                }
                if q.env.round == self.round
                    && q.src as usize != route(q.env.sender, self.cfg.shards)
                {
                    self.counters.envelopes_rejected += 1;
                    continue;
                }
                if last_key == Some(q.env.key()) {
                    self.counters.envelopes_rejected += 1;
                    continue;
                }
            }
            if q.env.round < self.round {
                self.counters.envelopes_deferred += 1;
            }
            last_key = Some(q.env.key());
            out.push(q.env);
        }
        out
    }

    /// Bus counters.
    pub fn counters(&self) -> &ShardCounters {
        &self.counters
    }

    /// Mutable bus counters (the scenario layer attributes bus-adjacent
    /// events here).
    pub fn counters_mut(&mut self) -> &mut ShardCounters {
        &mut self.counters
    }
}

/// Stable binary encoding: config, round, queued envelopes, counters.
/// The per-round sequence map is volatile by design — rounds never
/// straddle a checkpoint, and `begin_round` clears it before any post.
// rvs-lint: allow(persist-coverage) -- `next_seq` is per-round transient state, cleared by begin_round before any post; a checkpoint is only ever cut between rounds
impl Persist for ShardBus {
    fn persist(&self, enc: &mut Encoder) {
        self.cfg.persist(enc);
        enc.u64(self.round);
        self.queued.persist(enc);
        self.counters.persist(enc);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let cfg = ShardConfig::restore(dec)?;
        if cfg.shards == 0 {
            return Err(DecodeError::Corrupt(
                "shard config claims zero shards".to_string(),
            ));
        }
        Ok(ShardBus {
            cfg,
            round: dec.u64()?,
            queued: Vec::restore(dec)?,
            next_seq: BTreeMap::new(),
            counters: ShardCounters::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_total_and_stable() {
        for k in 1..9 {
            for i in 0..500 {
                let s = route(NodeId::from_index(i), k);
                assert!(s < k);
                assert_eq!(s, route(NodeId::from_index(i), k), "route must be pure");
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(route(NodeId::from_index(7), 0), 0);
        let bus = ShardBus::new(ShardConfig {
            shards: 0,
            admission: true,
        });
        assert_eq!(bus.shards(), 1);
    }

    #[test]
    fn members_partition_the_population() {
        let n = 301;
        let k = 7;
        let lists = members(n, k);
        assert_eq!(lists.len(), k);
        let mut seen = vec![false; n];
        for (s, list) in lists.iter().enumerate() {
            let mut prev = None;
            for &p in list {
                assert_eq!(route(p, k), s);
                assert!(prev < Some(p), "members must ascend");
                prev = Some(p);
                assert!(!seen[p.index()], "peer in two shards");
                seen[p.index()] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b), "peer in no shard");
    }

    #[test]
    fn partition_is_reasonably_balanced() {
        let lists = members(10_000, 4);
        for list in &lists {
            let n = list.len();
            assert!((2200..=2800).contains(&n), "unbalanced shard: {n} peers");
        }
    }

    fn post_all(bus: &mut ShardBus, sends: &[(usize, usize)]) {
        for &(s, t) in sends {
            bus.post(NodeId::from_index(s), NodeId::from_index(t), vec![s as u8]);
        }
    }

    #[test]
    fn drain_is_canonical_and_counts_routing() {
        let mut bus = ShardBus::new(ShardConfig {
            shards: 3,
            admission: true,
        });
        bus.begin_round(5);
        // Post out of sender order, as sharded planning does.
        post_all(&mut bus, &[(9, 2), (1, 4), (5, 1), (3, 3)]);
        assert_eq!(bus.in_flight(), 4);
        let drained = bus.drain_barrier();
        assert_eq!(bus.in_flight(), 0);
        let senders: Vec<usize> = drained.iter().map(|e| e.sender.index()).collect();
        assert_eq!(senders, vec![1, 3, 5, 9], "must drain in ascending sender");
        let c = bus.counters();
        assert_eq!(c.envelopes_local + c.envelopes_routed, 4);
        assert_eq!(c.bus_bytes, 4);
        assert_eq!(c.envelopes_rejected, 0);
        assert_eq!(c.envelopes_deferred, 0);
        assert_eq!(c.queue_high_watermark, 4);
    }

    #[test]
    fn seq_numbers_are_per_sender_monotone_and_reset_each_round() {
        let mut bus = ShardBus::new(ShardConfig::default());
        bus.begin_round(1);
        post_all(&mut bus, &[(2, 3), (2, 4), (1, 5)]);
        let drained = bus.drain_barrier();
        let keys: Vec<_> = drained.iter().map(Envelope::key).collect();
        assert_eq!(keys, vec![(1, 1, 0), (1, 2, 0), (1, 2, 1)]);
        bus.begin_round(2);
        post_all(&mut bus, &[(2, 3)]);
        assert_eq!(bus.drain_barrier()[0].key(), (2, 2, 0));
    }

    #[test]
    fn admission_refuses_future_rounds_wrong_shards_and_duplicates() {
        let mut bus = ShardBus::new(ShardConfig {
            shards: 4,
            admission: true,
        });
        bus.begin_round(3);
        let sender = NodeId::from_index(11);
        // Hostile: an envelope claiming a future round.
        bus.queued.push(InFlight {
            src: route(sender, 4) as u32,
            dst: 0,
            env: Envelope {
                round: 9,
                sender,
                seq: 0,
                payload: vec![],
            },
        });
        // Hostile: a current-round envelope recorded on the wrong shard.
        bus.queued.push(InFlight {
            src: (route(sender, 4) as u32 + 1) % 4,
            dst: 0,
            env: Envelope {
                round: 3,
                sender,
                seq: 1,
                payload: vec![],
            },
        });
        // Honest, plus a hostile byte-level duplicate of it.
        bus.post(sender, NodeId::from_index(2), vec![7]);
        let dup = bus.queued.last().unwrap().clone();
        bus.queued.push(dup);
        let drained = bus.drain_barrier();
        assert_eq!(drained.len(), 1, "only the honest envelope survives");
        assert_eq!(bus.counters().envelopes_rejected, 3);
    }

    #[test]
    fn checkpoint_carried_envelopes_defer_and_survive_resharding() {
        let mut bus = ShardBus::new(ShardConfig {
            shards: 4,
            admission: true,
        });
        bus.begin_round(1);
        post_all(&mut bus, &[(6, 2), (3, 9)]);
        // Simulate a checkpoint cut with envelopes still queued, restored
        // into a different partition.
        let blob = rvs_checkpoint::to_bytes(&bus);
        let mut back: ShardBus = rvs_checkpoint::from_bytes(&blob).expect("roundtrip");
        back.set_shards(2);
        back.begin_round(2);
        let drained = back.drain_barrier();
        assert_eq!(drained.len(), 2, "carried envelopes must deliver");
        assert_eq!(back.counters().envelopes_deferred, 2);
        assert_eq!(back.counters().envelopes_rejected, 0);
    }

    #[test]
    fn bus_roundtrips_through_the_codec() {
        let mut bus = ShardBus::new(ShardConfig {
            shards: 5,
            admission: false,
        });
        bus.begin_round(7);
        post_all(&mut bus, &[(1, 2), (8, 0)]);
        let blob = rvs_checkpoint::to_bytes(&bus);
        let back: ShardBus = rvs_checkpoint::from_bytes(&blob).expect("roundtrip");
        assert_eq!(back.cfg, bus.cfg);
        assert_eq!(back.round, bus.round);
        assert_eq!(back.queued, bus.queued);
        assert_eq!(back.counters, bus.counters);
        assert_eq!(rvs_checkpoint::to_bytes(&back), blob);
    }

    #[test]
    fn hostile_bus_bytes_never_panic() {
        let mut bus = ShardBus::new(ShardConfig::default());
        bus.begin_round(1);
        post_all(&mut bus, &[(0, 1)]);
        let blob = rvs_checkpoint::to_bytes(&bus);
        // Truncations.
        for cut in 0..blob.len() {
            let _ = rvs_checkpoint::from_bytes::<ShardBus>(&blob[..cut]);
        }
        // Single-byte corruptions.
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0xFF;
            let _ = rvs_checkpoint::from_bytes::<ShardBus>(&bad);
        }
    }
}
