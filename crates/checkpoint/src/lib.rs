//! Versioned binary checkpoint encoding for the robust-vote-sampling
//! workspace.
//!
//! Long chaos and experiment runs (and the ROADMAP's production-scale
//! ambitions) need to survive process restarts: run to round R, write a
//! checkpoint, and later resume **byte-identically** to a run that never
//! stopped. That bar rules out `derive`-based serialization — a reordered
//! field or a silently-skipped member would still compile — so persistence
//! here is explicit:
//!
//! * [`Persist`] — a trait each stateful type implements by hand, writing
//!   every field in a fixed, documented order and reading it back the same
//!   way. Implementations live *in the owning crate*, next to the private
//!   fields they serialize, so a field added without a matching `persist`
//!   line is caught by the roundtrip property tests rather than by luck.
//! * [`Encoder`] / [`Decoder`] — little-endian primitive codecs with
//!   length-prefixed collections, `f64::to_bits` floats (bit-exact, no
//!   text roundtrip), and section [tags](Encoder::tag) that turn a
//!   misaligned decode into a diagnosable [`DecodeError::Corrupt`] instead
//!   of garbage state.
//! * [`DecodeError`] — decoding adversarial or damaged bytes must *never*
//!   panic (this crate is covered by rvs-lint's panic-surface rule); every
//!   failure mode is a typed error.
//!
//! The file-level container is [`write_header`] / [`read_header`]: a magic
//! number plus [`FORMAT_VERSION`]. Any change to any `Persist`
//! implementation's field order or meaning MUST bump [`FORMAT_VERSION`]
//! and document the bump in DESIGN.md §12 (a CI cross-check enforces the
//! documentation half).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Current checkpoint format version. Bump on ANY encoding change and
/// document the new layout in DESIGN.md §12.
pub const FORMAT_VERSION: u32 = 3;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 8] = *b"RVSCKPT\0";

/// A typed decoding failure. Decoding never panics: damaged, truncated,
/// or version-skewed input always surfaces as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a value could be read in full.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The bytes decoded but violate the format (bad magic, bad section
    /// tag, out-of-range discriminant, impossible length, ...).
    Corrupt(String),
    /// The checkpoint was written by a different format version.
    WrongVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// Decoding finished but unread bytes remain — the payload is from a
    /// richer (or misframed) encoding.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, remaining } => write!(
                f,
                "checkpoint truncated: needed {needed} bytes, {remaining} remaining"
            ),
            DecodeError::Corrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
            DecodeError::WrongVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} not supported (this build reads version \
                 {supported}); regenerate with `rvs ckpt regen` or use a matching build"
            ),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "checkpoint has {remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Stable, versioned binary persistence with explicit field order.
///
/// Contract (checked by the workspace roundtrip property tests):
/// `restore(persist(x)) == x` and re-encoding the restored value yields
/// byte-identical output. `restore` must never panic on arbitrary input.
pub trait Persist: Sized {
    /// Append this value's canonical encoding to `enc`.
    fn persist(&self, enc: &mut Encoder);
    /// Read one value back, consuming exactly the bytes `persist` wrote.
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

/// Appends little-endian primitives and [`Persist`] values to a byte
/// buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append raw bytes with no length prefix (caller frames them).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.raw(s.as_bytes());
    }

    /// Append a short section tag marking the start of a named region.
    /// [`Decoder::tag`] verifies it, turning any framing drift into a
    /// [`DecodeError::Corrupt`] naming the expected section.
    pub fn tag(&mut self, name: &str) {
        debug_assert!(name.len() <= u8::MAX as usize, "section tag too long");
        self.u8(name.len() as u8);
        self.raw(name.as_bytes());
    }

    /// Append any [`Persist`] value.
    pub fn put<T: Persist>(&mut self, v: &T) {
        v.persist(self);
    }
}

/// Reads values back out of a byte slice, tracking position and surfacing
/// every failure as a [`DecodeError`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a `usize` (stored as `u64`), rejecting values that cannot fit.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Corrupt(format!("usize {v} overflows")))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::Corrupt(format!("bool byte {other}"))),
        }
    }

    /// Read a collection length, rejecting lengths that exceed the bytes
    /// remaining (every element costs at least one byte, so a larger claim
    /// is either corruption or a denial-of-service attempt).
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(DecodeError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.seq_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::Corrupt("invalid UTF-8 in string".to_string()))
    }

    /// Verify a section tag written by [`Encoder::tag`].
    pub fn tag(&mut self, expected: &str) -> Result<(), DecodeError> {
        let len = self.u8()? as usize;
        let bytes = self.take(len)?;
        if bytes != expected.as_bytes() {
            let found = String::from_utf8_lossy(bytes).into_owned();
            return Err(DecodeError::Corrupt(format!(
                "expected section `{expected}`, found `{found}`"
            )));
        }
        Ok(())
    }

    /// Read any [`Persist`] value.
    pub fn get<T: Persist>(&mut self) -> Result<T, DecodeError> {
        T::restore(self)
    }

    /// Assert the input is fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Write the checkpoint file header: magic bytes plus [`FORMAT_VERSION`].
pub fn write_header(enc: &mut Encoder) {
    enc.raw(&MAGIC);
    enc.u32(FORMAT_VERSION);
}

/// Read and validate the checkpoint file header, returning the version
/// (always [`FORMAT_VERSION`] on success).
pub fn read_header(dec: &mut Decoder<'_>) -> Result<u32, DecodeError> {
    let magic = dec.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(DecodeError::Corrupt("bad magic bytes".to_string()));
    }
    let version = dec.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::WrongVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(version)
}

/// Peek a checkpoint header's version without requiring it to match
/// [`FORMAT_VERSION`] (for `rvs ckpt inspect` on foreign files).
pub fn peek_version(bytes: &[u8]) -> Result<u32, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(DecodeError::Corrupt("bad magic bytes".to_string()));
    }
    dec.u32()
}

// ---------------------------------------------------------------------------
// Persist implementations for primitives and std containers
// ---------------------------------------------------------------------------

macro_rules! persist_prim {
    ($t:ty, $put:ident, $get:ident) => {
        impl Persist for $t {
            fn persist(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
            fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                dec.$get()
            }
        }
    };
}

persist_prim!(u8, u8, u8);
persist_prim!(u32, u32, u32);
persist_prim!(u64, u64, u64);
persist_prim!(usize, usize, usize);
persist_prim!(bool, bool, bool);
persist_prim!(f64, f64, f64);

impl Persist for String {
    fn persist(&self, enc: &mut Encoder) {
        enc.str(self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.str()
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, enc: &mut Encoder) {
        self.0.persist(enc);
        self.1.persist(enc);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::restore(dec)?, B::restore(dec)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn persist(&self, enc: &mut Encoder) {
        self.0.persist(enc);
        self.1.persist(enc);
        self.2.persist(enc);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::restore(dec)?, B::restore(dec)?, C::restore(dec)?))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, enc: &mut Encoder) {
        match self {
            None => enc.u8(0),
            Some(v) => {
                enc.u8(1);
                v.persist(enc);
            }
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(dec)?)),
            other => Err(DecodeError::Corrupt(format!("Option discriminant {other}"))),
        }
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn persist(&self, enc: &mut Encoder) {
        for v in self {
            v.persist(enc);
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::restore(dec)?);
        }
        items
            .try_into()
            .map_err(|_| DecodeError::Corrupt("array length".to_string()))
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for v in self {
            v.persist(enc);
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.seq_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(dec)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn persist(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        // Front-to-back: insertion order is semantic for bounded caches.
        for v in self {
            v.persist(enc);
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.seq_len()?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::restore(dec)?);
        }
        Ok(out)
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn persist(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        // BTreeMap iterates in ascending key order: canonical by nature.
        for (k, v) in self {
            k.persist(enc);
            v.persist(enc);
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.seq_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::restore(dec)?;
            let v = V::restore(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn persist(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for v in self {
            v.persist(enc);
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.seq_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::restore(dec)?);
        }
        Ok(out)
    }
}

/// Encode `value` as a standalone byte vector (no file header).
pub fn to_bytes<T: Persist>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.persist(&mut enc);
    enc.into_bytes()
}

/// Decode a standalone value written by [`to_bytes`], requiring the input
/// to be consumed exactly.
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let v = T::restore(&mut dec)?;
    dec.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(&back, v);
        assert_eq!(to_bytes(&back), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u8::MAX);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&1.5f64);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&-0.0f64);
        roundtrip(&"héllo".to_string());
        roundtrip(&String::new());
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = to_bytes(&v);
        let back: f64 = from_bytes(&bytes).expect("decode");
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&Some(7u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&(1u32, "x".to_string()));
        roundtrip(&(1u32, 2u64, false));
        roundtrip(&[1u64, 2, 3, 4]);
        let map: BTreeMap<u32, String> = [(1, "a".into()), (9, "b".into())].into();
        roundtrip(&map);
        let set: BTreeSet<u64> = [3, 1, 4].into();
        roundtrip(&set);
        let dq: VecDeque<u32> = [5, 6, 7].into_iter().collect();
        roundtrip(&dq);
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let mut enc = Encoder::new();
        write_header(&mut enc);
        enc.tag("demo");
        enc.put(&vec![(1u64, "abc".to_string()), (2, "def".to_string())]);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let result = read_header(&mut dec)
                .and_then(|_| dec.tag("demo"))
                .and_then(|()| Vec::<(u64, String)>::restore(&mut dec));
            assert!(result.is_err(), "prefix of {cut} bytes decoded cleanly");
        }
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut enc = Encoder::new();
        enc.raw(&MAGIC);
        enc.u32(FORMAT_VERSION + 41);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            read_header(&mut dec),
            Err(DecodeError::WrongVersion {
                found: FORMAT_VERSION + 41,
                supported: FORMAT_VERSION,
            })
        );
        assert_eq!(peek_version(&bytes), Ok(FORMAT_VERSION + 41));
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let bytes = b"NOTCKPT\0\x01\0\0\0".to_vec();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            read_header(&mut dec),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = to_bytes(&42u64);
        bytes.push(0);
        assert_eq!(
            from_bytes::<u64>(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        // Claims 2^60 elements with 0 bytes of backing data.
        let mut enc = Encoder::new();
        enc.u64(1 << 60);
        let bytes = enc.into_bytes();
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn tag_mismatch_names_sections() {
        let mut enc = Encoder::new();
        enc.tag("net");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let err = dec.tag("pss").expect_err("tag mismatch");
        assert!(matches!(&err, DecodeError::Corrupt(m) if m.contains("pss") && m.contains("net")));
    }

    #[test]
    fn invalid_discriminants_are_corrupt() {
        assert!(matches!(
            from_bytes::<bool>(&[2]),
            Err(DecodeError::Corrupt(_))
        ));
        assert!(matches!(
            from_bytes::<Option<u8>>(&[9, 0]),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_errors_render() {
        for e in [
            DecodeError::Truncated {
                needed: 8,
                remaining: 3,
            },
            DecodeError::Corrupt("x".into()),
            DecodeError::WrongVersion {
                found: 2,
                supported: 1,
            },
            DecodeError::TrailingBytes { remaining: 5 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
