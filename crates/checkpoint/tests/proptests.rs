//! Property-based proofs of the encoding contract:
//!
//! * encode → decode → encode is byte-identical (canonical encoding);
//! * decoding arbitrary, truncated, or bit-flipped bytes never panics —
//!   every failure is a typed [`DecodeError`];
//! * any blob that decodes cleanly re-encodes to a canonical fixed point
//!   (one normalization step, then byte-stable forever).

use proptest::prelude::*;
use rvs_checkpoint::{
    from_bytes, peek_version, read_header, to_bytes, DecodeError, Decoder, Encoder, Persist,
    FORMAT_VERSION, MAGIC,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

fn assert_canonical<T: Persist + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = to_bytes(v);
    let back: T = from_bytes(&bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
    prop_assert_eq!(&back, v);
    prop_assert_eq!(to_bytes(&back), bytes);
    Ok(())
}

/// A composite value exercising every primitive and container codec.
type Composite = (
    Vec<(u64, String)>,
    (BTreeMap<u32, Vec<u8>>, BTreeSet<u64>, VecDeque<bool>),
    (Option<f64>, [u32; 3], usize),
);

/// Strings over the non-surrogate BMP: covers 1-, 2-, and 3-byte UTF-8.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(1u32..0xD800, 0..12)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

fn arb_composite() -> impl Strategy<Value = Composite> {
    let pairs = prop::collection::vec((0u64..u64::MAX, arb_string()), 0..8);
    let map = prop::collection::btree_map(0u32..1000, prop::collection::vec(0u8..255, 0..6), 0..6);
    let set = prop::collection::vec(0u64..u64::MAX, 0..8).prop_map(|v| v.into_iter().collect());
    let dq = prop::collection::vec(prop::bool::ANY, 0..8).prop_map(VecDeque::from);
    let opt = prop_oneof![
        Just(None),
        (0u64..u64::MAX).prop_map(|b| Some(f64::from_bits(b))),
    ];
    let arr = (0u32..99, 0u32..99, 0u32..99).prop_map(|(a, b, c)| [a, b, c]);
    (pairs, (map, set, dq), (opt, arr, 0usize..1_000_000))
}

/// Compare composites by f64 *bit pattern* (NaN-safe), everything else by Eq.
fn composite_key(c: &Composite) -> impl PartialEq + std::fmt::Debug {
    (
        c.0.clone(),
        c.1.clone(),
        (c.2 .0.map(f64::to_bits), c.2 .1, c.2 .2),
    )
}

/// Decode a framed blob (header + one tagged payload) exactly.
fn decode_framed(bytes: &[u8]) -> Result<Composite, DecodeError> {
    let mut dec = Decoder::new(bytes);
    read_header(&mut dec)?;
    dec.tag("payload")?;
    let v = Composite::restore(&mut dec)?;
    dec.finish()?;
    Ok(v)
}

fn encode_framed(v: &Composite) -> Vec<u8> {
    let mut enc = Encoder::new();
    rvs_checkpoint::write_header(&mut enc);
    enc.tag("payload");
    enc.put(v);
    enc.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every composite value round-trips with byte-identical re-encoding.
    #[test]
    fn composite_roundtrip_is_canonical(v in arb_composite()) {
        let bytes = to_bytes(&v);
        let back: Composite = from_bytes(&bytes)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(composite_key(&back), composite_key(&v));
        prop_assert_eq!(to_bytes(&back), bytes);
    }

    /// Simple values (no NaN subtleties) use the generic canonical check.
    #[test]
    fn container_roundtrip_is_canonical(
        v in prop::collection::vec((0u64..u64::MAX, arb_string()), 0..10),
        set in prop::collection::vec(0u32..u32::MAX, 0..10),
    ) {
        assert_canonical(&v)?;
        let set: BTreeSet<u32> = set.into_iter().collect();
        assert_canonical(&set)?;
    }

    /// Decoding a *truncated* valid encoding yields a typed error, never a
    /// panic and never a silently short value.
    #[test]
    fn truncation_always_errors(v in arb_composite(), frac in 0.0f64..1.0) {
        let bytes = to_bytes(&v);
        prop_assume!(!bytes.is_empty());
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        let result = from_bytes::<Composite>(&bytes[..cut]);
        prop_assert!(result.is_err(), "prefix of {} bytes decoded cleanly", cut);
    }

    /// Decoding arbitrary bytes never panics; on success the decoded value
    /// is canonical: re-encoding it reaches a byte-stable fixed point in
    /// one step. (The input itself may differ — e.g. a map encoded with
    /// unsorted keys decodes fine but re-encodes sorted.)
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        match from_bytes::<Composite>(&bytes) {
            Ok(v) => {
                let canon = to_bytes(&v);
                let v2: Composite = from_bytes(&canon)
                    .map_err(|e| TestCaseError::fail(format!("canonical re-decode failed: {e}")))?;
                prop_assert_eq!(composite_key(&v2), composite_key(&v));
                prop_assert_eq!(to_bytes(&v2), canon);
            }
            Err(
                DecodeError::Truncated { .. }
                | DecodeError::Corrupt(_)
                | DecodeError::TrailingBytes { .. },
            ) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// A bit-flip anywhere in a framed blob (header + tag + payload)
    /// either surfaces as a typed error or still decodes to a value whose
    /// canonical re-encoding is stable; it never panics.
    #[test]
    fn bit_flips_never_panic(v in arb_composite(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = encode_framed(&v);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Ok(back) = decode_framed(&bytes) {
            let canon = encode_framed(&back);
            let again = decode_framed(&canon)
                .map_err(|e| TestCaseError::fail(format!("canonical re-decode failed: {e}")))?;
            prop_assert_eq!(composite_key(&again), composite_key(&back));
            prop_assert_eq!(encode_framed(&again), canon);
        }
    }

    /// Header checks: any version other than the supported one is a typed
    /// `WrongVersion` (strict read) while `peek_version` still reports it.
    #[test]
    fn version_skew_is_typed(version in 0u32..u32::MAX) {
        prop_assume!(version != FORMAT_VERSION);
        let mut enc = Encoder::new();
        enc.raw(&MAGIC);
        enc.u32(version);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(
            read_header(&mut dec),
            Err(DecodeError::WrongVersion { found: version, supported: FORMAT_VERSION })
        );
        prop_assert_eq!(peek_version(&bytes), Ok(version));
    }
}
