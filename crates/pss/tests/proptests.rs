//! Property-based tests for the peer samplers under randomized churn.

use proptest::prelude::*;
use rvs_pss::{NewscastConfig, NewscastPss, OraclePss, PeerSampler};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime};

#[derive(Debug, Clone, Copy)]
enum Churn {
    Online(u32),
    Offline(u32),
    Sample(u32),
}

fn arb_churn(n: u32) -> impl Strategy<Value = Churn> {
    prop_oneof![
        (0..n).prop_map(Churn::Online),
        (0..n).prop_map(Churn::Offline),
        (0..n).prop_map(Churn::Sample),
    ]
}

proptest! {
    /// The oracle's sample is always a *currently online* peer and never
    /// the requester, no matter the churn interleaving.
    #[test]
    fn oracle_sample_is_online_non_self(
        ops in prop::collection::vec(arb_churn(16), 0..200),
        seed: u64,
    ) {
        let mut pss = OraclePss::new(16);
        let mut online = std::collections::BTreeSet::new();
        let mut rng = DetRng::new(seed);
        for op in ops {
            match op {
                Churn::Online(p) => {
                    pss.set_online(NodeId(p));
                    online.insert(p);
                }
                Churn::Offline(p) => {
                    pss.set_offline(NodeId(p));
                    online.remove(&p);
                }
                Churn::Sample(p) => {
                    let picked = pss.sample(NodeId(p), &mut rng);
                    match picked {
                        Some(q) => {
                            prop_assert!(online.contains(&q.0), "sampled offline {q}");
                            prop_assert_ne!(q, NodeId(p));
                        }
                        None => {
                            // Only legal when nobody else is online.
                            let others = online.iter().filter(|&&x| x != p).count();
                            prop_assert_eq!(others, 0);
                        }
                    }
                    prop_assert_eq!(pss.online_count(), online.len());
                }
            }
        }
    }

    /// Newscast never returns the requester, never exceeds its view bound,
    /// and view entries always refer to population members.
    #[test]
    fn newscast_view_invariants(
        ops in prop::collection::vec(arb_churn(12), 0..150),
        seed: u64,
    ) {
        let cfg = NewscastConfig { view_size: 6 };
        let mut pss = NewscastPss::new(12, cfg);
        let mut rng = DetRng::new(seed);
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimDuration::from_secs(5);
            match op {
                Churn::Online(p) => {
                    let intro = (p != 0).then_some(NodeId(0));
                    pss.set_online(NodeId(p), intro, now);
                }
                Churn::Offline(p) => pss.set_offline(NodeId(p)),
                Churn::Sample(p) => {
                    if let Some(q) = pss.sample(NodeId(p), &mut rng) {
                        prop_assert_ne!(q, NodeId(p));
                        prop_assert!(q.index() < 12);
                    }
                }
            }
            pss.gossip_round(now, &mut rng);
            for i in 0..12 {
                let view = pss.view_of(NodeId(i));
                prop_assert!(view.len() <= cfg.view_size);
                prop_assert!(!view.contains(&NodeId(i)), "self entry in view");
            }
        }
    }
}
