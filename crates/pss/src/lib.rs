//! Peer Sampling Service (PSS).
//!
//! All three of the paper's protocols (ModerationCast, BallotBox,
//! VoxPopuli) assume "a peer sampling service which periodically returns a
//! random peer from the entire population of online peers" (§III). Tribler
//! implements this with BuddyCast, a variant of Newscast.
//!
//! This crate provides:
//!
//! * [`PeerSampler`] — the service trait;
//! * [`OraclePss`] — an idealised sampler drawing uniformly from the online
//!   population (the abstraction the paper's analysis assumes);
//! * [`NewscastPss`] — a Newscast-style gossip implementation with bounded
//!   views and age-based eviction, demonstrating that the service is
//!   realisable fully decentralised. Its samples approximate uniformity and
//!   may occasionally return peers that have just gone offline, exactly as
//!   in a deployed system.

pub mod newscast;
pub mod oracle;
pub mod validate;

pub use newscast::{NewscastConfig, NewscastPss};
pub use oracle::OraclePss;
pub use validate::validate_view;

use rvs_sim::{DetRng, NodeId};

/// A source of (approximately) uniformly random online peers.
pub trait PeerSampler {
    /// Draw a random peer for `requester`, never returning `requester`
    /// itself. Returns `None` when the sampler knows of no other peer.
    ///
    /// Implementations may return peers that have recently gone offline
    /// (gossip views lag churn); callers must tolerate contact failure.
    fn sample(&mut self, requester: NodeId, rng: &mut DetRng) -> Option<NodeId>;
}
