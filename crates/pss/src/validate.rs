//! Hostile-input gate for peer-sampling views.
//!
//! A Newscast view is the wire message of a PSS exchange: a bounded list
//! of peer descriptors. This gate checks the structural invariants every
//! honest view satisfies — length within the view bound, peer ids inside
//! the population, no duplicate peers — and is also applied when views
//! are restored from checkpoint bytes, so a damaged or adversarial
//! checkpoint surfaces as a typed error instead of corrupt overlay
//! state. Total and pure: never panics, first violation wins.

use rvs_guard::RejectReason;
use rvs_sim::NodeId;
use std::collections::BTreeSet;

/// Validate a view's peer list: at most `cap` entries, every peer id
/// under `population` (exclusive), each peer at most once.
pub fn validate_view(peers: &[NodeId], population: usize, cap: usize) -> Result<(), RejectReason> {
    if peers.len() > cap {
        return Err(RejectReason::ListTooLong);
    }
    let mut seen = BTreeSet::new();
    for &p in peers {
        if p.index() >= population {
            return Err(RejectReason::InvalidNode);
        }
        if !seen.insert(p) {
            return Err(RejectReason::DuplicateEntry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_view_is_accepted() {
        let v = [NodeId(0), NodeId(4), NodeId(2)];
        assert_eq!(validate_view(&v, 5, 20), Ok(()));
        assert_eq!(validate_view(&[], 5, 20), Ok(()));
    }

    #[test]
    fn overlong_view_is_rejected() {
        let v: Vec<NodeId> = (0..21).map(NodeId).collect();
        assert_eq!(validate_view(&v, 100, 20), Err(RejectReason::ListTooLong));
    }

    #[test]
    fn out_of_population_peer_is_rejected() {
        let v = [NodeId(5)];
        assert_eq!(validate_view(&v, 5, 20), Err(RejectReason::InvalidNode));
    }

    #[test]
    fn duplicate_peer_is_rejected() {
        let v = [NodeId(1), NodeId(1)];
        assert_eq!(validate_view(&v, 5, 20), Err(RejectReason::DuplicateEntry));
    }
}
