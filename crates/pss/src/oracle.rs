//! The idealised PSS: uniform sampling over the exact online population.
//!
//! The paper's protocol analysis assumes the PSS "periodically returns a
//! random peer from the entire population of online peers". [`OraclePss`]
//! implements that assumption directly using global knowledge; it is the
//! default sampler for the reproduction experiments, while
//! [`crate::NewscastPss`] shows the decentralised realisation.

use crate::PeerSampler;
use rvs_sim::{DetRng, NodeId};

/// Uniform sampler over a maintained online set.
///
/// Internally keeps a dense membership vector plus an index list so that
/// sampling is O(1) and updates are O(1) (swap-remove), with deterministic
/// behaviour for a given update/draw sequence.
#[derive(Debug, Clone, Default)]
pub struct OraclePss {
    /// position[i] = Some(index into `online`) when node i is online.
    position: Vec<Option<u32>>,
    online: Vec<NodeId>,
}

impl OraclePss {
    /// An oracle over a population of `n` nodes, all initially offline.
    pub fn new(n: usize) -> Self {
        OraclePss {
            position: vec![None; n],
            online: Vec::with_capacity(n),
        }
    }

    fn ensure_capacity(&mut self, peer: NodeId) {
        if peer.index() >= self.position.len() {
            self.position.resize(peer.index() + 1, None);
        }
    }

    /// Mark `peer` online. Idempotent.
    pub fn set_online(&mut self, peer: NodeId) {
        self.ensure_capacity(peer);
        if self.position[peer.index()].is_none() {
            self.position[peer.index()] = Some(self.online.len() as u32);
            self.online.push(peer);
        }
    }

    /// Mark `peer` offline. Idempotent.
    pub fn set_offline(&mut self, peer: NodeId) {
        self.ensure_capacity(peer);
        if let Some(pos) = self.position[peer.index()].take() {
            let pos = pos as usize;
            let last = self.online.len() - 1;
            self.online.swap(pos, last);
            self.online.pop();
            if pos <= last && pos < self.online.len() {
                let moved = self.online[pos];
                self.position[moved.index()] = Some(pos as u32);
            }
        }
    }

    /// Is `peer` currently online?
    pub fn is_online(&self, peer: NodeId) -> bool {
        peer.index() < self.position.len() && self.position[peer.index()].is_some()
    }

    /// Number of online peers.
    pub fn online_count(&self) -> usize {
        self.online.len()
    }
}

impl OraclePss {
    /// Sample without mutating the sampler: the oracle's state only
    /// changes on churn, never on sampling, so the parallel send phase can
    /// share one view across per-peer jobs (each drawing from its own RNG
    /// lane) and match the `&mut` trait path draw for draw.
    pub fn sample_from(&self, requester: NodeId, rng: &mut DetRng) -> Option<NodeId> {
        match self.online.len() {
            0 => None,
            1 => {
                let only = self.online[0];
                (only != requester).then_some(only)
            }
            n => {
                // Rejection sampling over the requester: at most one extra
                // draw in expectation for any realistic population.
                loop {
                    let pick = self.online[rng.index(n)];
                    if pick != requester {
                        return Some(pick);
                    }
                }
            }
        }
    }
}

impl PeerSampler for OraclePss {
    fn sample(&mut self, requester: NodeId, rng: &mut DetRng) -> Option<NodeId> {
        self.sample_from(requester, rng)
    }
}

/// Stable binary encoding: the dense position vector, then the online list
/// in its exact swap-remove order (the order feeds sampling draws, so it
/// must survive verbatim). Restore cross-checks the two against each other
/// — an inconsistent pair would make later churn updates index out of
/// bounds, so it is rejected as corrupt instead.
impl rvs_checkpoint::Persist for OraclePss {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.position.len());
        for slot in &self.position {
            match slot {
                None => enc.u8(0),
                Some(pos) => {
                    enc.u8(1);
                    enc.u32(*pos);
                }
            }
        }
        self.online.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let n = dec.seq_len()?;
        let mut position = Vec::with_capacity(n);
        for _ in 0..n {
            position.push(match dec.u8()? {
                0 => None,
                1 => Some(dec.u32()?),
                d => {
                    return Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                        "invalid OraclePss position discriminant {d}"
                    )))
                }
            });
        }
        let online: Vec<NodeId> = Vec::restore(dec)?;
        let occupied = position.iter().filter(|p| p.is_some()).count();
        if occupied != online.len() {
            return Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "OraclePss occupancy mismatch: {} positions vs {} online",
                occupied,
                online.len()
            )));
        }
        for (pos, peer) in online.iter().enumerate() {
            if position.get(peer.index()).copied().flatten() != Some(pos as u32) {
                return Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                    "OraclePss position table disagrees with online list at {peer}"
                )));
            }
        }
        Ok(OraclePss { position, online })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_population_yields_none() {
        let mut pss = OraclePss::new(5);
        let mut rng = DetRng::new(1);
        assert_eq!(pss.sample(NodeId(0), &mut rng), None);
    }

    #[test]
    fn never_returns_requester() {
        let mut pss = OraclePss::new(3);
        pss.set_online(NodeId(0));
        let mut rng = DetRng::new(2);
        assert_eq!(pss.sample(NodeId(0), &mut rng), None);
        pss.set_online(NodeId(1));
        for _ in 0..100 {
            assert_eq!(pss.sample(NodeId(0), &mut rng), Some(NodeId(1)));
        }
    }

    #[test]
    fn online_offline_roundtrip() {
        let mut pss = OraclePss::new(4);
        pss.set_online(NodeId(2));
        pss.set_online(NodeId(3));
        assert!(pss.is_online(NodeId(2)));
        assert_eq!(pss.online_count(), 2);
        pss.set_offline(NodeId(2));
        assert!(!pss.is_online(NodeId(2)));
        assert_eq!(pss.online_count(), 1);
        let mut rng = DetRng::new(3);
        for _ in 0..50 {
            assert_eq!(pss.sample(NodeId(0), &mut rng), Some(NodeId(3)));
        }
    }

    #[test]
    fn set_operations_are_idempotent() {
        let mut pss = OraclePss::new(2);
        pss.set_online(NodeId(1));
        pss.set_online(NodeId(1));
        assert_eq!(pss.online_count(), 1);
        pss.set_offline(NodeId(1));
        pss.set_offline(NodeId(1));
        assert_eq!(pss.online_count(), 0);
    }

    #[test]
    fn grows_for_out_of_range_ids() {
        let mut pss = OraclePss::new(1);
        pss.set_online(NodeId(10));
        assert!(pss.is_online(NodeId(10)));
        assert!(!pss.is_online(NodeId(5)));
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut pss = OraclePss::new(11);
        for i in 1..=10 {
            pss.set_online(NodeId(i));
        }
        let mut rng = DetRng::new(7);
        let n = 100_000;
        let mut counts = [0usize; 11];
        for _ in 0..n {
            let p = pss.sample(NodeId(0), &mut rng).unwrap();
            counts[p.index()] += 1;
        }
        let expected = n as f64 / 10.0;
        for c in &counts[1..] {
            assert!(
                (*c as f64 - expected).abs() < expected * 0.1,
                "count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let mut pss = OraclePss::new(6);
        for i in 0..6 {
            pss.set_online(NodeId(i));
        }
        // Remove from the middle, then verify each remaining node is
        // still sampleable.
        pss.set_offline(NodeId(2));
        pss.set_offline(NodeId(0));
        let mut rng = DetRng::new(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1_000 {
            seen.insert(pss.sample(NodeId(5), &mut rng).unwrap());
        }
        let expect: std::collections::BTreeSet<NodeId> =
            [NodeId(1), NodeId(3), NodeId(4)].into_iter().collect();
        assert_eq!(seen, expect);
    }
}
