//! Newscast-style gossip peer sampling.
//!
//! Each node keeps a bounded *view* of `(peer, heartbeat)` entries. Every
//! gossip period an online node picks a random entry from its view,
//! exchanges views with that peer, and both keep the `view_size` freshest
//! entries of the union (plus a fresh self-entry). This is the classic
//! Newscast construction \[Jelasity et al. 2003\] that BuddyCast — the PSS
//! deployed in Tribler — derives from. It maintains a random-like overlay
//! that is self-repairing under churn and whose view samples approximate
//! uniform draws from the online population.

use crate::PeerSampler;
use rvs_sim::{DetRng, NodeId, SimTime};
use rvs_telemetry::PssCounters;
use serde::{Deserialize, Serialize};

/// Tuning for the Newscast PSS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NewscastConfig {
    /// Entries kept per view (classic Newscast uses 20–30). Departed peers
    /// age out once `view_size` fresher descriptors circulate — the classic
    /// crowding-out mechanism; there is deliberately no hard age purge,
    /// which would fragment the overlay after quiet periods.
    pub view_size: usize,
}

impl Default for NewscastConfig {
    fn default() -> Self {
        NewscastConfig { view_size: 20 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    peer: NodeId,
    heartbeat: SimTime,
}

/// Gossip-based PSS over a fixed-size population.
#[derive(Debug, Clone)]
pub struct NewscastPss {
    cfg: NewscastConfig,
    views: Vec<Vec<Entry>>,
    online: Vec<bool>,
    counters: PssCounters,
}

impl NewscastPss {
    /// A PSS over `n` nodes with empty views.
    pub fn new(n: usize, cfg: NewscastConfig) -> Self {
        NewscastPss {
            cfg,
            views: vec![Vec::new(); n],
            online: vec![false; n],
            counters: PssCounters::default(),
        }
    }

    /// Population-wide view-exchange counters.
    pub fn counters(&self) -> &PssCounters {
        &self.counters
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Mark a peer online. A joining peer needs at least one contact to
    /// bootstrap its view; `introducer` models the tracker/superpeer list
    /// every deployed client ships with.
    pub fn set_online(&mut self, peer: NodeId, introducer: Option<NodeId>, now: SimTime) {
        self.online[peer.index()] = true;
        if let Some(intro) = introducer {
            if intro != peer {
                let view = &mut self.views[peer.index()];
                // Refresh rather than duplicate, and keep the view bounded:
                // evict the stalest entry when the introducer would overflow
                // it (repeated joins must not grow the view).
                view.retain(|e| e.peer != intro);
                if view.len() >= self.cfg.view_size {
                    if let Some(stalest) = view
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| (e.heartbeat, e.peer))
                        .map(|(i, _)| i)
                    {
                        view.swap_remove(stalest);
                    }
                }
                view.push(Entry {
                    peer: intro,
                    heartbeat: now,
                });
            }
        }
    }

    /// Mark a peer offline. Its view survives (state is kept across
    /// sessions, as in Tribler) but it stops gossiping.
    pub fn set_offline(&mut self, peer: NodeId) {
        self.online[peer.index()] = false;
    }

    /// Is the peer online?
    pub fn is_online(&self, peer: NodeId) -> bool {
        self.online[peer.index()]
    }

    /// Current view of `peer` (peers only, freshest first).
    pub fn view_of(&self, peer: NodeId) -> Vec<NodeId> {
        let mut v = self.views[peer.index()].clone();
        v.sort_by_key(|e| (std::cmp::Reverse(e.heartbeat), e.peer));
        v.into_iter().map(|e| e.peer).collect()
    }

    /// Run one gossip round at time `now`: every online node initiates one
    /// exchange with a random view entry (if that entry is online).
    pub fn gossip_round(&mut self, now: SimTime, rng: &mut DetRng) {
        for i in 0..self.views.len() {
            if !self.online[i] {
                continue;
            }
            let initiator = NodeId::from_index(i);
            let partner = {
                let view = &self.views[i];
                if view.is_empty() {
                    continue;
                }
                view[rng.index(view.len())].peer
            };
            // Contacting an offline peer fails silently (timeout); the stale
            // entry ages out via max_age.
            if partner.index() >= self.online.len() || !self.online[partner.index()] {
                self.counters.failed_contacts += 1;
                continue;
            }
            self.exchange(initiator, partner, now, rng);
            self.counters.exchanges += 1;
        }
    }

    /// Symmetric view exchange between two online peers.
    fn exchange(&mut self, a: NodeId, b: NodeId, now: SimTime, rng: &mut DetRng) {
        let mut union: Vec<Entry> =
            Vec::with_capacity(self.views[a.index()].len() + self.views[b.index()].len() + 2);
        union.extend(self.views[a.index()].iter().copied());
        union.extend(self.views[b.index()].iter().copied());
        union.push(Entry {
            peer: a,
            heartbeat: now,
        });
        union.push(Entry {
            peer: b,
            heartbeat: now,
        });
        // Deduplicate keeping the freshest heartbeat per peer, then age out.
        union.sort_by_key(|e| (e.peer, std::cmp::Reverse(e.heartbeat)));
        union.dedup_by_key(|e| e.peer);
        // Freshest-first truncation to view_size (classic Newscast): stale
        // descriptors are never purged outright — they fall off only when
        // crowded out by fresher ones. A hard age purge would fragment the
        // overlay into small always-fresh cliques after any quiet period.
        // Ties (entries refreshed in the same round) are broken *randomly*:
        // a deterministic tie-break would make every view converge onto the
        // same subset of peers and destroy the sampler's uniformity.
        rng.shuffle(&mut union);
        union.sort_by_key(|e| std::cmp::Reverse(e.heartbeat));

        let make_view = |exclude: NodeId| -> Vec<Entry> {
            union
                .iter()
                .copied()
                .filter(|e| e.peer != exclude)
                .take(self.cfg.view_size)
                .collect()
        };
        self.views[a.index()] = make_view(a);
        self.views[b.index()] = make_view(b);
    }
}

impl NewscastPss {
    /// Sample without mutating the sampler: views only change during
    /// [`NewscastPss::gossip_round`] and churn, never on sampling, so the
    /// parallel send phase can share one view set across per-peer jobs
    /// (each drawing from its own RNG lane) and match the `&mut` trait
    /// path draw for draw.
    pub fn sample_from(&self, requester: NodeId, rng: &mut DetRng) -> Option<NodeId> {
        let view = &self.views[requester.index()];
        let candidates: Vec<NodeId> = view
            .iter()
            .map(|e| e.peer)
            .filter(|&p| p != requester)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.index(candidates.len())])
        }
    }
}

impl PeerSampler for NewscastPss {
    fn sample(&mut self, requester: NodeId, rng: &mut DetRng) -> Option<NodeId> {
        self.sample_from(requester, rng)
    }
}

/// Stable binary encoding: peer then heartbeat.
impl rvs_checkpoint::Persist for Entry {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.peer.persist(enc);
        self.heartbeat.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Entry {
            peer: NodeId::restore(dec)?,
            heartbeat: SimTime::restore(dec)?,
        })
    }
}

/// Stable binary encoding: view size, per-node views in their exact
/// in-memory entry order (order feeds partner-selection draws), online
/// flags, counters.
impl rvs_checkpoint::Persist for NewscastPss {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.cfg.view_size);
        self.views.persist(enc);
        self.online.persist(enc);
        self.counters.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let cfg = NewscastConfig {
            view_size: dec.usize()?,
        };
        let views: Vec<Vec<Entry>> = Vec::restore(dec)?;
        let online: Vec<bool> = Vec::restore(dec)?;
        let counters = PssCounters::restore(dec)?;
        // Views are wire state: run each through the same structural gate
        // inbound views pass, so a damaged or adversarial checkpoint
        // surfaces as a typed error instead of a corrupt overlay.
        let population = views.len();
        for (i, view) in views.iter().enumerate() {
            let peers: Vec<NodeId> = view.iter().map(|e| e.peer).collect();
            if let Err(reason) = crate::validate::validate_view(&peers, population, cfg.view_size) {
                return Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                    "newscast view of node {i} invalid: {}",
                    reason.as_str()
                )));
            }
        }
        Ok(NewscastPss {
            cfg,
            views,
            online,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::SimDuration;

    /// Bring `n` nodes online chained to node 0 and gossip `rounds` times.
    fn converged(n: usize, rounds: usize, seed: u64) -> (NewscastPss, DetRng) {
        let mut pss = NewscastPss::new(n, NewscastConfig::default());
        let mut rng = DetRng::new(seed);
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let intro = if i == 0 { None } else { Some(NodeId(0)) };
            pss.set_online(NodeId::from_index(i), intro, now);
        }
        for _ in 0..rounds {
            now += SimDuration::from_secs(5);
            pss.gossip_round(now, &mut rng);
        }
        (pss, rng)
    }

    #[test]
    fn views_fill_after_gossip() {
        let (pss, _) = converged(50, 30, 1);
        for i in 0..50 {
            let v = pss.view_of(NodeId(i));
            assert!(
                v.len() >= 10,
                "node {i} view only has {} entries after convergence",
                v.len()
            );
            assert!(!v.contains(&NodeId(i)), "self entries must be excluded");
        }
    }

    #[test]
    fn samples_cover_most_of_population() {
        let (mut pss, mut rng) = converged(40, 40, 2);
        let mut seen = std::collections::BTreeSet::new();
        let mut now = SimTime::from_hours(1);
        // Keep gossiping while sampling so views keep rotating.
        for _ in 0..200 {
            now += SimDuration::from_secs(5);
            pss.gossip_round(now, &mut rng);
            if let Some(p) = pss.sample(NodeId(7), &mut rng) {
                seen.insert(p);
            }
        }
        assert!(
            seen.len() > 20,
            "samples should sweep the population; saw {}",
            seen.len()
        );
    }

    #[test]
    fn isolated_node_samples_none() {
        let mut pss = NewscastPss::new(3, NewscastConfig::default());
        pss.set_online(NodeId(1), None, SimTime::ZERO);
        let mut rng = DetRng::new(3);
        assert_eq!(pss.sample(NodeId(1), &mut rng), None);
    }

    #[test]
    fn offline_peers_age_out_of_views() {
        // Small views: a departed peer's descriptor is crowded out once
        // view_size fresher descriptors circulate.
        let cfg = NewscastConfig { view_size: 5 };
        let mut pss = NewscastPss::new(10, cfg);
        let mut rng = DetRng::new(4);
        let mut now = SimTime::ZERO;
        for i in 0..10 {
            let intro = if i == 0 { None } else { Some(NodeId(0)) };
            pss.set_online(NodeId(i), intro, now);
        }
        for _ in 0..20 {
            now += SimDuration::from_secs(5);
            pss.gossip_round(now, &mut rng);
        }
        // Node 9 departs; keep gossiping past max_age.
        pss.set_offline(NodeId(9));
        for _ in 0..30 {
            now += SimDuration::from_secs(5);
            pss.gossip_round(now, &mut rng);
        }
        for i in 0..9 {
            assert!(
                !pss.view_of(NodeId(i)).contains(&NodeId(9)),
                "node {i} still references departed node 9"
            );
        }
    }

    #[test]
    fn view_size_is_bounded() {
        let (pss, _) = converged(100, 40, 5);
        for i in 0..100 {
            assert!(pss.view_of(NodeId(i)).len() <= NewscastConfig::default().view_size);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (pss, _) = converged(30, 20, seed);
            (0..30).map(|i| pss.view_of(NodeId(i))).collect::<Vec<_>>()
        };
        assert_eq!(run(8), run(8));
        assert_ne!(run(8), run(9));
    }

    #[test]
    fn rejoining_peer_reintegrates() {
        let (mut pss, mut rng) = converged(20, 20, 6);
        let mut now = SimTime::from_hours(1);
        pss.set_offline(NodeId(5));
        for _ in 0..10 {
            now += SimDuration::from_secs(5);
            pss.gossip_round(now, &mut rng);
        }
        pss.set_online(NodeId(5), Some(NodeId(0)), now);
        for _ in 0..10 {
            now += SimDuration::from_secs(5);
            pss.gossip_round(now, &mut rng);
        }
        assert!(!pss.view_of(NodeId(5)).is_empty());
    }
}
