//! Recursive-descent item-model parser over the lexer's token stream.
//!
//! The token rules in [`crate::rules`] only need flat sequences, but the
//! structural rules ([`crate::structural`]) must know *what* a token
//! belongs to: which struct declares which fields, which `impl Persist`
//! block covers which type, where a method body starts and ends, and
//! which spans are `if` conditions or `match` guards. This module builds
//! exactly that item model — no expression parsing, no type resolution,
//! just the item skeleton Rust's grammar makes cheap to recover:
//!
//! * `struct Name { field: Type, ... }` with field names, type tokens,
//!   and the preceding `#[derive(...)]` list (tuple/unit structs and
//!   `macro_rules!` fragments like `struct $name` are skipped);
//! * `enum Name { Variant, ... }` with variant names;
//! * `impl [<G>] [Trait for] Type { fn m(...) { ... } ... }` with the
//!   trait's last path segment, the self type's head identifier, and
//!   each method's body as a token range;
//! * every `fn` with its signature and body ranges;
//! * conditional regions: `if` conditions and `match` guards, the spans
//!   where the RNG-discipline rules look for short-circuited draws.
//!
//! Bodies are represented as `Range<usize>` indices into the caller's
//! token slice, so rule code can scan them without copying.

use crate::lexer::Tok;
use std::ops::Range;

/// A `struct` item with named fields.
#[derive(Debug)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// `(field name, type tokens)` in declaration order. Type tokens are
    /// empty for the field-name-only shape used inside the telemetry
    /// `counter_block!` macro.
    pub fields: Vec<(String, Vec<String>)>,
    /// Identifiers from the immediately preceding `#[derive(...)]`.
    pub derives: Vec<String>,
}

/// An `enum` item.
#[derive(Debug)]
pub struct EnumItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// A `fn` item (free function or impl method).
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` token.
    pub line: u32,
    /// Token range of the signature: from the `fn` token up to (not
    /// including) the body's `{`.
    pub sig: Range<usize>,
    /// Token range of the body, including both braces. Empty for
    /// body-less declarations (trait method signatures).
    pub body: Range<usize>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplItem {
    /// 1-based line of the `impl` token.
    pub line: u32,
    /// Last path segment of the implemented trait (`Persist` for both
    /// `impl Persist for T` and `impl rvs_checkpoint::Persist for T`);
    /// `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Head identifier of the self type (`Engine` for `Engine<E>`,
    /// `SwarmSpec` for `rvs_trace::SwarmSpec`). `None` when the type is
    /// not a plain path — tuples, references, or `macro_rules!` fragments
    /// like `$name`.
    pub type_name: Option<String>,
    /// Methods declared in the impl body.
    pub methods: Vec<FnItem>,
    /// Token range of the impl body, including both braces.
    pub body: Range<usize>,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct ItemModel {
    /// Named-field structs (tuple/unit structs are skipped).
    pub structs: Vec<StructItem>,
    /// Enums with their variant names.
    pub enums: Vec<EnumItem>,
    /// Impl blocks with their methods.
    pub impls: Vec<ImplItem>,
}

impl ItemModel {
    /// The named-field struct called `name`, if declared in this file.
    pub fn struct_named(&self, name: &str) -> Option<&StructItem> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// The enum called `name`, if declared in this file.
    pub fn enum_named(&self, name: &str) -> Option<&EnumItem> {
        self.enums.iter().find(|e| e.name == name)
    }
}

/// Why a conditional region exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// The condition of an `if` (scanning stopped at the body `{`).
    IfCond,
    /// A `match` arm guard (scanning stopped at `=>`).
    MatchGuard,
}

/// A span of tokens evaluated conditionally-or-short-circuited: an `if`
/// condition or a `match` guard.
#[derive(Debug)]
pub struct CondRegion {
    /// Token range of the condition expression (excludes the `if` itself
    /// and the terminating `{` / `=>`).
    pub tokens: Range<usize>,
    /// Which construct produced the region.
    pub kind: CondKind,
}

/// Parse the item model out of a token stream.
pub fn parse_items(toks: &[Tok]) -> ItemModel {
    let mut model = ItemModel::default();
    let mut i = 0;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "struct" => {
                if let Some((item, end)) = parse_struct(toks, i) {
                    model.structs.push(item);
                    i = end;
                } else {
                    i += 1;
                }
            }
            "enum" => {
                if let Some((item, end)) = parse_enum(toks, i) {
                    model.enums.push(item);
                    i = end;
                } else {
                    i += 1;
                }
            }
            "impl" => {
                if let Some((item, end)) = parse_impl(toks, i) {
                    model.impls.push(item);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    model
}

/// Is `text` a plain identifier (starts with a letter or `_`)?
fn is_ident(text: &str) -> bool {
    text.chars()
        .next()
        .map(|c| c.is_alphabetic() || c == '_')
        .unwrap_or(false)
}

/// Skip a balanced `<...>` group starting at the `<` at `i`; returns the
/// index just past the closing `>`. `->` arrows inside (closure bounds
/// like `FnMut(...) -> T`) do not close the group.
fn skip_angles(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" if i > 0 && toks[i - 1].text == "-" => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" | "{" => return i, // malformed: bail before swallowing items
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Parse `struct Name { ... }` at `i` (pointing at `struct`). Returns the
/// item and the index just past the body. Tuple/unit structs and macro
/// fragments return `None`.
fn parse_struct(toks: &[Tok], i: usize) -> Option<(StructItem, usize)> {
    let name_tok = toks.get(i + 1)?;
    if !is_ident(&name_tok.text) {
        return None;
    }
    // Find the body opener; `;` or `(` first means unit/tuple struct.
    let mut j = i + 2;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        j = skip_angles(toks, j);
    }
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("{") => break,
            Some(";") | Some("(") | None => return None,
            _ => j += 1,
        }
    }
    let derives = derives_before(toks, i);
    let (fields, end) = parse_fields(toks, j);
    Some((
        StructItem {
            name: name_tok.text.clone(),
            line: name_tok.line,
            fields,
            derives,
        },
        end,
    ))
}

/// Identifiers inside `#[derive(...)]` attributes directly preceding the
/// token at `item_idx` (possibly with other attributes or `pub` between).
fn derives_before(toks: &[Tok], item_idx: usize) -> Vec<String> {
    let mut derives = Vec::new();
    let mut k = item_idx;
    while k > 0 {
        let prev = &toks[k - 1].text;
        if prev == "pub" {
            k -= 1;
            continue;
        }
        if prev == "]" {
            // Scan back to the matching `[` and its `#`.
            let mut depth = 0;
            let mut m = k - 1;
            loop {
                match toks[m].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if m == 0 {
                    return derives;
                }
                m -= 1;
            }
            if m == 0 || toks[m - 1].text != "#" {
                return derives;
            }
            if toks.get(m + 1).map(|t| t.text.as_str()) == Some("derive") {
                for t in &toks[m + 2..k - 1] {
                    if is_ident(&t.text) {
                        derives.push(t.text.clone());
                    }
                }
            }
            k = m - 1;
            continue;
        }
        break;
    }
    derives
}

/// Parse the field entries of a struct body whose `{` is at `open`,
/// private and `pub`/`pub(crate)` alike. Returns the fields and the index
/// just past the closing `}`. Fields may be typeless (`pub x,`) — the
/// shape the telemetry `counter_block!` macro takes.
fn parse_fields(toks: &[Tok], open: usize) -> (Vec<(String, Vec<String>)>, usize) {
    let mut fields = Vec::new();
    let mut i = open + 1;
    loop {
        let Some(tok) = toks.get(i) else {
            return (fields, i);
        };
        match tok.text.as_str() {
            "}" => return (fields, i + 1),
            "," => {
                i += 1;
                continue;
            }
            "#" if toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") => {
                // Skip attributes on fields.
                let mut depth = 0;
                i += 1;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                continue;
            }
            "pub" => {
                i += 1;
                // `pub(crate)` / `pub(super)` visibility scope.
                if toks.get(i).map(|t| t.text.as_str()) == Some("(") {
                    let mut depth = 0;
                    while i < toks.len() {
                        match toks[i].text.as_str() {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                continue;
            }
            t if is_ident(t) => {
                let fname = t.to_string();
                let mut ty = Vec::new();
                let mut j = i + 1;
                match toks.get(j).map(|t| t.text.as_str()) {
                    Some(":") => {
                        // Consume the type until a `,` or `}` at depth 0.
                        j += 1;
                        let mut angle = 0i32;
                        let mut paren = 0i32;
                        while j < toks.len() {
                            match toks[j].text.as_str() {
                                "<" => angle += 1,
                                ">" => angle -= 1,
                                "(" | "[" => paren += 1,
                                ")" | "]" => paren -= 1,
                                "," if angle <= 0 && paren <= 0 => break,
                                "}" if angle <= 0 && paren <= 0 => break,
                                _ => {}
                            }
                            ty.push(toks[j].text.clone());
                            j += 1;
                        }
                    }
                    Some(",") | Some("}") => {} // typeless counter_block field
                    _ => {
                        // Not a field (macro fragment or similar): skip to
                        // the next `,` at depth 0 or the closing `}`.
                        let mut depth = 0i32;
                        while j < toks.len() {
                            match toks[j].text.as_str() {
                                "{" | "(" | "[" | "<" => depth += 1,
                                ")" | "]" | ">" => depth -= 1,
                                "}" if depth == 0 => break,
                                "}" => depth -= 1,
                                "," if depth <= 0 => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        i = j;
                        continue;
                    }
                }
                fields.push((fname, ty));
                i = j;
            }
            _ => {
                // Unexpected token (e.g. `$` fragment): skip it.
                i += 1;
            }
        }
    }
}

/// Parse `enum Name { Variant, Variant(..), Variant { .. }, ... }` at `i`
/// (pointing at `enum`).
fn parse_enum(toks: &[Tok], i: usize) -> Option<(EnumItem, usize)> {
    let name_tok = toks.get(i + 1)?;
    if !is_ident(&name_tok.text) {
        return None;
    }
    let mut j = i + 2;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        j = skip_angles(toks, j);
    }
    while j < toks.len() && toks[j].text != "{" {
        if toks[j].text == ";" {
            return None;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let close = matching_brace(toks, j);
    let mut variants = Vec::new();
    // A variant name is the first identifier at depth 1 after `{` or a
    // depth-1 `,`; everything else (payloads, discriminants, attributes)
    // is skipped by depth tracking.
    let mut k = j + 1;
    let mut depth = 1i32;
    let mut expect_variant = true;
    while k < close {
        match toks[k].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            "," if depth == 1 => expect_variant = true,
            "#" if depth == 1 => {} // attribute: its [..] group bumps depth
            t if depth == 1 && expect_variant && is_ident(t) => {
                variants.push(t.to_string());
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    Some((
        EnumItem {
            name: name_tok.text.clone(),
            line: name_tok.line,
            variants,
        },
        close + 1,
    ))
}

/// Parse one path (`a::b::C<...>`) starting at `i`. Returns the last
/// plain segment (or `None` when the path starts with a non-identifier,
/// e.g. a macro fragment `$name`, a tuple `(A, B)`, or a reference) and
/// the index just past the path.
fn parse_path(toks: &[Tok], mut i: usize) -> (Option<String>, usize) {
    let mut last = None;
    loop {
        let Some(tok) = toks.get(i) else {
            return (last, i);
        };
        if !is_ident(&tok.text) {
            return (last, i);
        }
        last = Some(tok.text.clone());
        i += 1;
        if toks.get(i).map(|t| t.text.as_str()) == Some("<") {
            i = skip_angles(toks, i);
        }
        if toks.get(i).map(|t| t.text.as_str()) == Some("::") {
            i += 1;
            continue;
        }
        return (last, i);
    }
}

/// Parse `impl [<G>] [TraitPath for] TypePath [where ...] { ... }` at `i`
/// (pointing at `impl`).
fn parse_impl(toks: &[Tok], i: usize) -> Option<(ImplItem, usize)> {
    let line = toks[i].line;
    let mut j = i + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        j = skip_angles(toks, j);
    }
    let (first_path, after_first) = parse_path(toks, j);
    let mut fragment = toks.get(j).map(|t| t.text == "$").unwrap_or(false);
    j = after_first;
    let (trait_name, type_name) = if toks.get(j).map(|t| t.text.as_str()) == Some("for") {
        j += 1;
        fragment = toks.get(j).map(|t| t.text == "$").unwrap_or(false);
        let (ty, after_ty) = parse_path(toks, j);
        j = after_ty;
        (first_path, if fragment { None } else { ty })
    } else {
        (None, if fragment { None } else { first_path })
    };
    // Skip a `where` clause (no braces before the body can appear in it).
    while j < toks.len() && toks[j].text != "{" {
        if toks[j].text == ";" {
            return None;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let open = j;
    let close = matching_brace(toks, open);

    // Methods: every `fn` at impl-body depth 1.
    let mut methods = Vec::new();
    let mut k = open + 1;
    let mut depth = 1i32;
    while k < close {
        match toks[k].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            "fn" if depth == 1 => {
                if let Some(m) = parse_fn(toks, k, close) {
                    k = m.body.end.max(k + 1);
                    methods.push(m);
                    continue;
                }
            }
            _ => {}
        }
        k += 1;
    }
    Some((
        ImplItem {
            line,
            trait_name,
            type_name,
            methods,
            body: open..close + 1,
        },
        close + 1,
    ))
}

/// Parse `fn name(...) [-> T] { ... }` at `i` (pointing at `fn`), not
/// scanning past `limit`.
fn parse_fn(toks: &[Tok], i: usize, limit: usize) -> Option<FnItem> {
    let name_tok = toks.get(i + 1)?;
    if !is_ident(&name_tok.text) {
        return None;
    }
    let mut j = i + 2;
    while j < limit && toks[j].text != "{" {
        if toks[j].text == ";" {
            // Body-less declaration (trait signature).
            return Some(FnItem {
                name: name_tok.text.clone(),
                line: toks[i].line,
                sig: i..j,
                body: j..j,
            });
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    let close = matching_brace(toks, j);
    Some(FnItem {
        name: name_tok.text.clone(),
        line: toks[i].line,
        sig: i..j,
        body: j..close + 1,
    })
}

/// Find every conditional region: `if` conditions (from the `if` to its
/// body `{`) and `match` guards (an `if` whose scan reaches `=>` first).
///
/// The scan is token-local and deliberately conservative: a closure body
/// or `if let` struct pattern inside the condition ends the region early
/// (under-approximating, never over-approximating the flagged span).
pub fn cond_regions(toks: &[Tok]) -> Vec<CondRegion> {
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.text != "if" {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => {
                    out.push(CondRegion {
                        tokens: i + 1..j,
                        kind: CondKind::IfCond,
                    });
                    break;
                }
                "=" if depth <= 0
                    && toks.get(j + 1).map(|t| t.text.as_str()) == Some(">")
                    && toks.get(j.wrapping_sub(1)).map(|t| t.text.as_str()) != Some("=")
                    && toks.get(j.wrapping_sub(1)).map(|t| t.text.as_str()) != Some("!")
                    && toks.get(j.wrapping_sub(1)).map(|t| t.text.as_str()) != Some("<")
                    && toks.get(j.wrapping_sub(1)).map(|t| t.text.as_str()) != Some(">") =>
                {
                    out.push(CondRegion {
                        tokens: i + 1..j,
                        kind: CondKind::MatchGuard,
                    });
                    break;
                }
                ";" => break, // malformed / `if` in macro fragment: give up
                _ => {}
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> ItemModel {
        parse_items(&lex(src).toks)
    }

    #[test]
    fn parses_typed_and_typeless_structs() {
        let src = "
            #[derive(Debug, Serialize)]
            pub struct Snapshot { pub a: Foo, pub m: BTreeMap<String, u64>, }
            pub struct Counters { pub x, pub y, }
        ";
        let m = model(src);
        assert_eq!(m.structs.len(), 2);
        assert_eq!(m.structs[0].name, "Snapshot");
        assert_eq!(m.structs[0].fields.len(), 2);
        assert_eq!(m.structs[0].fields[0].0, "a");
        assert_eq!(m.structs[0].fields[1].0, "m");
        assert!(m.structs[0].derives.iter().any(|d| d == "Serialize"));
        assert_eq!(m.structs[1].name, "Counters");
        assert!(m.structs[1].fields.iter().all(|(_, ty)| ty.is_empty()));
    }

    #[test]
    fn private_and_scoped_fields_parse() {
        let m = model(
            "pub struct FaultPlane { cfg: FaultConfig, pub(crate) lanes: Vec<FaultLane>, pub view: PartitionView }",
        );
        let names: Vec<&str> = m.structs[0]
            .fields
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["cfg", "lanes", "view"]);
        assert_eq!(m.structs[0].fields[0].1, vec!["FaultConfig"]);
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped() {
        let m = model("pub struct Wrapper(u64);\npub struct Marker;\nstruct S { pub f: u8 }");
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].name, "S");
    }

    #[test]
    fn generic_struct_fields_parse() {
        let m = model("pub struct Engine<E: Event> { pub now: SimTime, pub queue: EventQueue<E>, pub processed: u64 }");
        assert_eq!(m.structs[0].name, "Engine");
        let names: Vec<&str> = m.structs[0]
            .fields
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["now", "queue", "processed"]);
    }

    #[test]
    fn enums_list_variants() {
        let src = "
            pub enum Pss { Oracle(OraclePss), Newscast(NewscastPss) }
            enum Kind { Online, Offline, StartDownload { swarm: SwarmId }, Tagged = 4 }
        ";
        let m = model(src);
        assert_eq!(m.enums.len(), 2);
        assert_eq!(m.enums[0].variants, vec!["Oracle", "Newscast"]);
        assert_eq!(
            m.enums[1].variants,
            vec!["Online", "Offline", "StartDownload", "Tagged"]
        );
    }

    #[test]
    fn impl_blocks_carry_trait_type_and_methods() {
        let src = "
            impl rvs_checkpoint::Persist for VoteSamplingConfig {
                fn persist(&self, enc: &mut Encoder) { enc.usize(self.b_min); }
                fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    Ok(VoteSamplingConfig { b_min: dec.usize()? })
                }
            }
            impl BitTorrentNet { pub fn tick(&mut self) {} }
        ";
        let m = model(src);
        assert_eq!(m.impls.len(), 2);
        let p = &m.impls[0];
        assert_eq!(p.trait_name.as_deref(), Some("Persist"));
        assert_eq!(p.type_name.as_deref(), Some("VoteSamplingConfig"));
        assert_eq!(p.methods.len(), 2);
        assert_eq!(p.methods[0].name, "persist");
        assert_eq!(p.methods[1].name, "restore");
        let inh = &m.impls[1];
        assert_eq!(inh.trait_name, None);
        assert_eq!(inh.type_name.as_deref(), Some("BitTorrentNet"));
        assert_eq!(inh.methods[0].name, "tick");
    }

    #[test]
    fn generic_impl_resolves_head_type() {
        let src = "
            impl<E: rvs_checkpoint::Persist> rvs_checkpoint::Persist for Engine<E> {
                fn persist(&self, enc: &mut Encoder) { self.now.persist(enc); }
            }
        ";
        let m = model(src);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Persist"));
        assert_eq!(m.impls[0].type_name.as_deref(), Some("Engine"));
    }

    #[test]
    fn macro_fragment_impls_have_no_type() {
        let src = "
            macro_rules! persist_prim {
                ($t:ty) => {
                    impl Persist for $t {
                        fn persist(&self, enc: &mut Encoder) { enc.put(*self); }
                    }
                };
            }
            impl<A: Persist, B: Persist> Persist for (A, B) {
                fn persist(&self, enc: &mut Encoder) {}
            }
        ";
        let m = model(src);
        assert!(m.impls.iter().all(|i| i.type_name.is_none()), "{m:?}");
    }

    #[test]
    fn qualified_self_type_uses_last_segment() {
        let m = model("impl Persist for rvs_trace::SwarmSpec { fn persist(&self) {} }");
        assert_eq!(m.impls[0].type_name.as_deref(), Some("SwarmSpec"));
    }

    #[test]
    fn method_bodies_are_token_ranges() {
        let src = "impl S { fn a(&self) { x(); } fn b(&self) { y(); } }";
        let toks = lex(src).toks;
        let m = parse_items(&toks);
        let a = &m.impls[0].methods[0];
        let body: Vec<&str> = toks[a.body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, vec!["{", "x", "(", ")", ";", "}"]);
        assert_eq!(m.impls[0].methods[1].name, "b");
    }

    #[test]
    fn cond_regions_find_if_and_guards() {
        let src = "
            fn f(x: u32, rng: &mut DetRng) -> u32 {
                if x > 0 && rng.chance(0.5) { return 1; }
                match x {
                    n if rng.below(n as u64) == 0 => 2,
                    _ => 3,
                }
            }
        ";
        let toks = lex(src).toks;
        let regions = cond_regions(&toks);
        assert_eq!(regions.len(), 2, "{regions:?}");
        assert_eq!(regions[0].kind, CondKind::IfCond);
        let r0: Vec<&str> = toks[regions[0].tokens.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(r0.contains(&"chance"));
        assert_eq!(regions[1].kind, CondKind::MatchGuard);
        let r1: Vec<&str> = toks[regions[1].tokens.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(r1.contains(&"below"));
    }

    #[test]
    fn if_let_with_struct_pattern_ends_region_early() {
        // The `{` of the pattern closes the region — conservative, never
        // flags past what was scanned.
        let src = "fn f() { if let Kind::Start { swarm } = k { g(); } }";
        let toks = lex(src).toks;
        let regions = cond_regions(&toks);
        assert_eq!(regions[0].kind, CondKind::IfCond);
        let r: Vec<&str> = toks[regions[0].tokens.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(!r.contains(&"g"));
    }

    #[test]
    fn comparison_operators_do_not_end_guard_scan() {
        // `>=` and `=>` share a token pair boundary; only a real `=>`
        // terminates the guard region.
        let src = "fn f() { match x { n if n >= 3 && r.chance(0.1) => 1, _ => 0 } }";
        let toks = lex(src).toks;
        let regions = cond_regions(&toks);
        assert_eq!(regions.len(), 1);
        let r: Vec<&str> = toks[regions[0].tokens.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(r.contains(&"chance"), "{r:?}");
    }
}
