//! CLI for `rvs-lint`.
//!
//! ```text
//! cargo run -p rvs-lint -- --workspace-root . [--json] [--deny-findings]
//! ```
//!
//! Prints every finding (justified ones annotated with their written
//! justification). Exit code is 0 unless `--deny-findings` is given and at
//! least one unjustified finding exists.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny = false;
    // rvs-lint: allow(ambient-env) -- CLI argument parsing at the binary entry point
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace-root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--workspace-root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny-findings" => deny = true,
            "--help" | "-h" => {
                println!(
                    "rvs-lint: static analysis for determinism, panic-surface, structural \
                     (Persist/RNG/float-order), telemetry and config-drift invariants\n\n\
                     USAGE: rvs-lint [--workspace-root PATH] [--json] [--deny-findings]\n\n\
                     Token rules: {}\n\
                     Structural rules: {}\n\
                     Cross-checks: {}\n\
                     Suppression hygiene: unused-suppression\n\
                     Exceptions: `// rvs-lint: allow(<rule>) -- <justification>` on or above the \
                     line, or `allow-file(...)` anywhere in the file.",
                    rvs_lint::TOKEN_RULES
                        .iter()
                        .map(|r| r.id)
                        .collect::<Vec<_>>()
                        .join(", "),
                    rvs_lint::STRUCTURAL_RULES.join(", "),
                    rvs_lint::rules::CROSS_CHECK_RULES.join(", "),
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "{} does not look like the workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = rvs_lint::run(&root);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if deny && report.unjustified_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
