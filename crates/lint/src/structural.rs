//! Structural rule families, built on the item model ([`crate::parser`]).
//!
//! Token rules catch banned *names*; these rules catch banned *shapes* —
//! relationships between items that no token sequence can express:
//!
//! * **persist-coverage** — every `impl Persist` for a type declared in
//!   the same file must reference each of the type's fields in both
//!   `persist` and `restore`, and reference them in the same relative
//!   order. A field added to a struct but forgotten in its `Persist`
//!   impl silently corrupts checkpoint resume-equivalence; this rule
//!   turns that into a lint failure the moment the field is declared.
//!   Enum impls must name every variant on both sides.
//! * **rng-fork-site** — `DetRng::new(...)` / `.fork(...)` outside the
//!   sanctioned stream-topology sites. The differential proofs assume a
//!   fixed fork tree rooted at the run seed; an ad-hoc fork re-roots a
//!   stream and silently changes every downstream draw.
//! * **rng-branch** — RNG draws in short-circuit position of an `if`
//!   condition (after `&&`/`||`) or anywhere in a `match` guard. Whether
//!   such a draw happens depends on data, so it perturbs draw order —
//!   exactly the hazard the parallel engine's plan/apply split exists to
//!   avoid. Deliberate sites carry `allow(rng-branch)` with rationale.
//! * **float-total-order** — `partial_cmp`, float `==`/`!=`, float
//!   `max`/`min`, and float `sort_by` without `total_cmp`/`to_bits` in
//!   protocol crates. Comparisons that silently drop NaN (or panic on
//!   it) are how two byte-identical runs stop being byte-identical.
//!
//! Float-ness is inferred structurally: a field or binding whose declared
//! type is `f64`/`f32`, or a float literal. The inference is deliberately
//! conservative — expressions it cannot type are not flagged.

use crate::lexer::Tok;
use crate::parser::{CondKind, ItemModel};
use crate::report::Finding;
use crate::rules::FileClass;
use std::collections::BTreeSet;

/// Structural rule ids (valid in `allow(...)` annotations).
pub const STRUCTURAL_RULES: &[&str] = &[
    "persist-coverage",
    "rng-fork-site",
    "rng-branch",
    "float-total-order",
];

/// The sanctioned homes of `DetRng` construction and forking: the RNG
/// crate itself, System setup (which forks the labelled root streams),
/// per-swarm `SwarmRunner` forks, and per-sender `FaultLane` forks.
/// Entries ending in `/` are directory prefixes. Everything else needs
/// `allow(rng-fork-site)` with a written rationale.
pub const RNG_FORK_SANCTIONED: &[&str] = &[
    "crates/sim/",
    "crates/scenario/src/system.rs",
    "crates/bittorrent/src/net.rs",
    "crates/faults/src/plane.rs",
];

/// Every draw method on `DetRng`. A call to one of these names with an
/// RNG-ish receiver is treated as a draw.
pub const DRAW_METHODS: &[&str] = &[
    "next_u64_raw",
    "next_f64",
    "below",
    "range_u64",
    "index",
    "chance",
    "pick",
    "shuffle",
    "sample_indices",
    "exp",
    "pareto",
    "jitter",
];

/// Does `rel_path` fall under one of the sanctioned-path entries?
fn sanctioned(rel_path: &str, paths: &[&str]) -> bool {
    paths
        .iter()
        .any(|p| rel_path == *p || (p.ends_with('/') && rel_path.starts_with(p)))
}

/// The RNG rules cover the protocol crates plus the scenario runtime
/// (which owns the stream topology the sanctioned sites fork from).
fn rng_in_scope(class: &FileClass) -> bool {
    class.protocol || class.crate_name == "scenario"
}

/// Run every structural rule over one file. `in_test` flags tokens inside
/// `#[cfg(test)]` items; whole test files are skipped by the caller's
/// `class.test_file` via each rule's scope check here.
pub fn check_structural(
    rel_path: &str,
    class: &FileClass,
    toks: &[Tok],
    model: &ItemModel,
    in_test: &[bool],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !class.test_file {
        persist_coverage(rel_path, toks, model, in_test, &mut findings);
        if rng_in_scope(class) {
            rng_fork_site(rel_path, toks, in_test, &mut findings);
            rng_branch(rel_path, toks, in_test, &mut findings);
        }
        if class.protocol {
            float_total_order(rel_path, toks, model, in_test, &mut findings);
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// persist-coverage
// ---------------------------------------------------------------------------

/// First-occurrence order of `self.<field>` references within `body`.
fn self_field_refs(toks: &[Tok], body: std::ops::Range<usize>, fields: &[String]) -> Vec<String> {
    let mut seen = Vec::new();
    let mut i = body.start;
    while i + 2 < body.end {
        if toks[i].text == "self" && toks[i + 1].text == "." {
            let name = &toks[i + 2].text;
            if fields.iter().any(|f| f == name) && !seen.contains(name) {
                seen.push(name.clone());
            }
        }
        i += 1;
    }
    seen
}

/// First-occurrence order of bare field-name tokens within `body` (how
/// `restore` references fields: struct literals, shorthand init, or local
/// bindings that feed them).
fn token_field_refs(toks: &[Tok], body: std::ops::Range<usize>, fields: &[String]) -> Vec<String> {
    let mut seen = Vec::new();
    for tok in &toks[body.clone()] {
        if fields.iter().any(|f| f == &tok.text) && !seen.contains(&tok.text) {
            seen.push(tok.text.clone());
        }
    }
    seen
}

fn persist_coverage(
    rel_path: &str,
    toks: &[Tok],
    model: &ItemModel,
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for imp in &model.impls {
        if imp.trait_name.as_deref() != Some("Persist") {
            continue;
        }
        let Some(type_name) = imp.type_name.as_deref() else {
            continue; // macro fragment / non-path type
        };
        if in_test.get(imp.body.start).copied().unwrap_or(false) {
            continue;
        }
        let persist = imp.methods.iter().find(|m| m.name == "persist");
        let restore = imp.methods.iter().find(|m| m.name == "restore");
        let (Some(persist), Some(restore)) = (persist, restore) else {
            continue; // partial impls cannot compile; nothing to check
        };

        if let Some(decl) = model.struct_named(type_name) {
            let fields: Vec<String> = decl.fields.iter().map(|(n, _)| n.clone()).collect();
            let enc_refs = self_field_refs(toks, persist.body.clone(), &fields);
            let dec_refs = token_field_refs(toks, restore.body.clone(), &fields);
            for f in &fields {
                if !enc_refs.contains(f) {
                    findings.push(Finding::new(
                        "persist-coverage",
                        rel_path,
                        imp.line,
                        format!(
                            "impl Persist for {type_name}: fn persist never references field \
                             `{f}` — a declared field missing from the encoding silently drifts \
                             the checkpoint format (persist it, or justify why it is volatile)"
                        ),
                    ));
                }
                if !dec_refs.contains(f) {
                    findings.push(Finding::new(
                        "persist-coverage",
                        rel_path,
                        imp.line,
                        format!(
                            "impl Persist for {type_name}: fn restore never references field \
                             `{f}` — restore must rebuild every declared field"
                        ),
                    ));
                }
            }
            // Relative order of the fields both sides reference must match:
            // persist writes and restore reads the same byte stream.
            let enc_common: Vec<&String> =
                enc_refs.iter().filter(|f| dec_refs.contains(f)).collect();
            let dec_common: Vec<&String> =
                dec_refs.iter().filter(|f| enc_refs.contains(f)).collect();
            if enc_common != dec_common {
                findings.push(Finding::new(
                    "persist-coverage",
                    rel_path,
                    imp.line,
                    format!(
                        "impl Persist for {type_name}: field order differs between persist \
                         ({}) and restore ({}) — the codec has no tags, so order drift decodes \
                         one field's bytes as another's",
                        enc_common
                            .iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", "),
                        dec_common
                            .iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                ));
            }
        } else if let Some(decl) = model.enum_named(type_name) {
            for v in &decl.variants {
                let in_enc = toks[persist.body.clone()].iter().any(|t| t.text == *v);
                let in_dec = toks[restore.body.clone()].iter().any(|t| t.text == *v);
                if !in_enc || !in_dec {
                    let side = match (in_enc, in_dec) {
                        (false, false) => "persist or restore",
                        (false, true) => "persist",
                        _ => "restore",
                    };
                    findings.push(Finding::new(
                        "persist-coverage",
                        rel_path,
                        imp.line,
                        format!(
                            "impl Persist for {type_name}: fn {side} never names variant `{v}` \
                             — every enum variant needs an explicit discriminant on both sides"
                        ),
                    ));
                }
            }
        }
        // Types declared elsewhere (std containers, cross-crate impls)
        // are out of structural reach; the codec proptests cover them.
    }
}

// ---------------------------------------------------------------------------
// rng-fork-site
// ---------------------------------------------------------------------------

fn rng_fork_site(rel_path: &str, toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    if sanctioned(rel_path, RNG_FORK_SANCTIONED) {
        return;
    }
    for i in 0..toks.len() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let construct = toks[i].text == "DetRng"
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("new");
        let fork = toks[i].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("fork")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("(");
        if construct || fork {
            let what = if construct {
                "DetRng::new"
            } else {
                ".fork(...)"
            };
            findings.push(Finding::new(
                "rng-fork-site",
                rel_path,
                toks[i].line,
                format!(
                    "`{what}` outside the sanctioned stream-topology sites ({}) — an ad-hoc \
                     RNG stream re-roots draw order out from under the differential proofs; \
                     plumb an existing stream or justify the new root",
                    RNG_FORK_SANCTIONED.join(", ")
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// rng-branch
// ---------------------------------------------------------------------------

/// Is the token at `k` a draw-method call (`<rng-ish> . method (`)?
/// The receiver tail must contain `rng` (case-insensitive), which covers
/// `rng`, `self.rng_gossip`, `send_rng[i]`, `lane.rng`, ...
fn is_draw_at(toks: &[Tok], k: usize) -> bool {
    if !DRAW_METHODS.contains(&toks[k].text.as_str()) {
        return false;
    }
    if k < 2 || toks[k - 1].text != "." {
        return false;
    }
    if toks.get(k + 1).map(|t| t.text.as_str()) != Some("(") {
        return false;
    }
    toks[k - 2].text.to_ascii_lowercase().contains("rng")
}

fn rng_branch(rel_path: &str, toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    for region in crate::parser::cond_regions(toks) {
        if in_test.get(region.tokens.start).copied().unwrap_or(false) {
            continue;
        }
        let mut short_circuit_seen = false;
        let mut k = region.tokens.start;
        while k < region.tokens.end {
            // `&&` / `||` lex as two adjacent one-char tokens.
            if k + 1 < region.tokens.end
                && ((toks[k].text == "&" && toks[k + 1].text == "&")
                    || (toks[k].text == "|" && toks[k + 1].text == "|"))
            {
                short_circuit_seen = true;
                k += 2;
                continue;
            }
            if is_draw_at(toks, k) {
                let conditional = match region.kind {
                    // In an `if` condition the first operand always runs;
                    // only draws behind `&&`/`||` are data-dependent.
                    CondKind::IfCond => short_circuit_seen,
                    // A guard only runs when its pattern matched and no
                    // earlier arm took the value: always conditional.
                    CondKind::MatchGuard => true,
                };
                if conditional {
                    findings.push(Finding::new(
                        "rng-branch",
                        rel_path,
                        toks[k].line,
                        format!(
                            "RNG draw `{}` is conditionally evaluated ({}) — whether this draw \
                             happens depends on data, so it shifts every later draw on the \
                             stream; hoist the draw out of the branch or justify why the \
                             condition is deterministic",
                            toks[k].text,
                            match region.kind {
                                CondKind::IfCond => "short-circuit position in an if condition",
                                CondKind::MatchGuard => "inside a match guard",
                            }
                        ),
                    ));
                }
            }
            k += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// float-total-order
// ---------------------------------------------------------------------------

/// Is this token a float literal? (`1.0`, `0.5`, `2f64` — the lexer keeps
/// a literal as one token, and only consumes `.` when a digit follows.)
fn is_float_literal(text: &str) -> bool {
    let mut chars = text.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    first.is_ascii_digit() && (text.contains('.') || text.ends_with("f64") || text.ends_with("f32"))
}

/// Names structurally known to hold floats: struct fields declared
/// `f64`/`f32` in this file, plus any `name : f64` binding/parameter.
fn float_idents(toks: &[Tok], model: &ItemModel) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for s in &model.structs {
        for (name, ty) in &s.fields {
            if ty.iter().any(|t| t == "f64" || t == "f32") {
                set.insert(name.clone());
            }
        }
    }
    for w in toks.windows(3) {
        if w[1].text == ":" && (w[2].text == "f64" || w[2].text == "f32") {
            let name = &w[0].text;
            if name
                .chars()
                .next()
                .map(|c| c.is_alphabetic() || c == '_')
                .unwrap_or(false)
            {
                set.insert(name.clone());
            }
        }
    }
    set
}

/// Is the token float-ish under our structural typing?
fn floatish(tok: &Tok, floats: &BTreeSet<String>) -> bool {
    is_float_literal(&tok.text) || floats.contains(&tok.text)
}

/// Does any token in `lo..hi` (clamped) spell a sanctioned total-order
/// escape (`total_cmp` / `to_bits`)?
fn escape_near(toks: &[Tok], lo: isize, hi: usize) -> bool {
    let lo = lo.max(0) as usize;
    let hi = hi.min(toks.len());
    toks[lo..hi]
        .iter()
        .any(|t| t.text == "total_cmp" || t.text == "to_bits")
}

fn float_total_order(
    rel_path: &str,
    toks: &[Tok],
    model: &ItemModel,
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    let floats = float_idents(toks, model);
    let flag = |findings: &mut Vec<Finding>, line: u32, what: &str| {
        findings.push(Finding::new(
            "float-total-order",
            rel_path,
            line,
            format!(
                "{what} on a float in a protocol crate — NaN breaks the comparison's contract \
                 and with it bit-reproducibility; use f64::total_cmp / to_bits, or justify why \
                 the operands are NaN-free and the semantics intended"
            ),
        ));
    };
    for k in 0..toks.len() {
        if in_test.get(k).copied().unwrap_or(false) {
            continue;
        }
        let text = toks[k].text.as_str();
        // `.partial_cmp(` calls (not the PartialOrd impl's fn definition).
        if text == "partial_cmp"
            && k > 0
            && toks[k - 1].text == "."
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
        {
            flag(findings, toks[k].line, "`partial_cmp`");
            continue;
        }
        // Float `==` / `!=`. (`==` lexes as two `=` tokens, `!=` as `!` `=`.)
        let eq_op = toks.get(k + 1).map(|t| t.text.as_str()) == Some("=")
            && (text == "=" || text == "!")
            && (k == 0 || toks[k - 1].text != "=")
            && toks.get(k + 2).map(|t| t.text.as_str()) != Some("=");
        if eq_op {
            let lhs_float = k > 0 && floatish(&toks[k - 1], &floats);
            let rhs_float = toks
                .get(k + 2)
                .map(|t| floatish(t, &floats))
                .unwrap_or(false);
            if (lhs_float || rhs_float) && !escape_near(toks, k as isize - 6, k + 8) {
                let op = if text == "!" { "`!=`" } else { "`==`" };
                flag(findings, toks[k].line, op);
            }
            continue;
        }
        // Float `.max(` / `.min(`.
        if (text == "max" || text == "min")
            && k > 0
            && toks[k - 1].text == "."
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
        {
            let recv_float = k >= 2 && floatish(&toks[k - 2], &floats);
            let arg_float = toks
                .get(k + 2)
                .map(|t| floatish(t, &floats))
                .unwrap_or(false);
            if (recv_float || arg_float) && !escape_near(toks, k as isize - 6, k + 8) {
                flag(findings, toks[k].line, &format!("`.{text}(...)`"));
            }
            continue;
        }
        // Float sorts without a total-order comparator.
        if (text == "sort_by" || text == "sort_unstable_by")
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
        {
            // Scan the call's argument region.
            let mut depth = 0i32;
            let mut j = k + 1;
            let mut saw_float = false;
            let mut saw_escape = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    t => {
                        if floatish(&toks[j], &floats) || t == "f64" || t == "f32" {
                            saw_float = true;
                        }
                        if t == "total_cmp" || t == "to_bits" {
                            saw_escape = true;
                        }
                    }
                }
                j += 1;
            }
            if saw_float && !saw_escape {
                flag(
                    findings,
                    toks[k].line,
                    "`sort_by` without total_cmp/to_bits",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_spans};
    use crate::parser::parse_items;
    use crate::rules::classify;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let model = parse_items(&lexed.toks);
        let in_test = test_spans(&lexed.toks);
        check_structural(rel, &classify(rel), &lexed.toks, &model, &in_test)
    }

    #[test]
    fn persist_missing_field_fires_both_sides() {
        let src = "
            pub struct Thing { pub a: u64, b: u64 }
            impl rvs_checkpoint::Persist for Thing {
                fn persist(&self, enc: &mut Encoder) { enc.u64(self.a); }
                fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    Ok(Thing { a: dec.u64()?, b: 0 })
                }
            }
        ";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0]
            .message
            .contains("fn persist never references field `b`"));
    }

    #[test]
    fn persist_order_drift_fires() {
        let src = "
            struct P { a: u64, b: u64 }
            impl Persist for P {
                fn persist(&self, enc: &mut Encoder) { enc.u64(self.a); enc.u64(self.b); }
                fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    let b = dec.u64()?;
                    let a = dec.u64()?;
                    Ok(P { a, b })
                }
            }
        ";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("field order differs"));
    }

    #[test]
    fn compliant_persist_is_clean_including_let_bindings() {
        let src = "
            struct P { a: u64, b: Foo }
            impl Persist for P {
                fn persist(&self, enc: &mut Encoder) { enc.u64(self.a); self.b.persist(enc); }
                fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    let a = dec.u64()?;
                    let b = Foo::restore(dec)?;
                    Ok(P { a, b })
                }
            }
        ";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn persist_enum_variant_coverage() {
        let src = "
            enum Role { Leecher, Seeder, Observer }
            impl Persist for Role {
                fn persist(&self, enc: &mut Encoder) {
                    enc.u8(match self { Role::Leecher => 0, Role::Seeder => 1, Role::Observer => 2 });
                }
                fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    match dec.u8()? {
                        0 => Ok(Role::Leecher),
                        1 => Ok(Role::Seeder),
                        d => Err(DecodeError::Corrupt(format!(\"bad {d}\"))),
                    }
                }
            }
        ";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`Observer`"));
    }

    #[test]
    fn persist_impls_in_tests_are_skipped() {
        let src = "
            #[cfg(test)]
            mod tests {
                struct T { a: u64 }
                impl Persist for T {
                    fn persist(&self, enc: &mut Encoder) {}
                    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> { Ok(T { a: 0 }) }
                }
            }
        ";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn fork_outside_sanctioned_sites_fires() {
        let src = "fn setup(seed: u64) -> DetRng { DetRng::new(seed).fork(7) }\n";
        let f = run("crates/modcast/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "rng-fork-site"));
        // Sanctioned home: same source, no findings.
        assert!(run("crates/sim/src/anything.rs", src).is_empty());
        assert!(run("crates/bittorrent/src/net.rs", src).is_empty());
        // Out of scope: non-protocol crates.
        assert!(run("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn short_circuit_draw_fires_but_leading_draw_does_not() {
        let leading = "fn f(rng: &mut DetRng) -> u32 { if rng.chance(0.5) { 1 } else { 0 } }\n";
        assert!(run("crates/core/src/x.rs", leading).is_empty());
        let gated =
            "fn f(on: bool, rng: &mut DetRng) -> u32 { if on && rng.chance(0.5) { 1 } else { 0 } }\n";
        let f = run("crates/core/src/x.rs", gated);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "rng-branch");
    }

    #[test]
    fn match_guard_draw_always_fires() {
        let src = "
            fn f(x: u32, rng: &mut DetRng) -> u32 {
                match x { 0 => 7, n if rng.below(n as u64) == 0 => 1, _ => 2 }
            }
        ";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "rng-branch");
    }

    #[test]
    fn non_rng_receivers_are_not_draws() {
        let src = "fn f(v: &[u32]) -> u32 { if on && v.index(3) > 0 { 1 } else { 0 } }\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_eq_and_partial_cmp_fire() {
        let src = "
            struct C { loss: f64 }
            impl C {
                fn inert(&self) -> bool { self.loss == 0.0 }
                fn cmp2(&self, other: &C) -> Option<Ordering> { self.loss.partial_cmp(&other.loss) }
            }
        ";
        let f = run("crates/faults/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "float-total-order"));
    }

    #[test]
    fn float_eq_via_to_bits_is_clean() {
        let src = "
            struct C { loss: f64 }
            impl C { fn same(&self, o: &C) -> bool { self.loss.to_bits() == o.loss.to_bits() } }
        ";
        assert!(run("crates/faults/src/x.rs", src).is_empty());
    }

    #[test]
    fn integer_comparisons_never_fire() {
        let src = "
            struct C { n: u64 }
            impl C { fn z(&self) -> bool { self.n == 0 } fn m(&self) -> u64 { self.n.max(1) } }
        ";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_max_min_fire_on_literal_args() {
        let src = "fn clamp(ms: f64) -> f64 { ms.max(0.0) }\n";
        let f = run("crates/faults/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`.max(...)`"));
        // Same shape outside protocol crates is fine.
        assert!(run("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn sort_by_with_total_cmp_is_clean_without_fires() {
        let clean = "fn s(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n";
        assert!(run("crates/core/src/x.rs", clean).is_empty());
        let dirty = "fn s(v: &mut Vec<(f64, u32)>, w: f64) { v.sort_by(|a, b| cmpish(a, w)); }\n";
        let f = run("crates/core/src/x.rs", dirty);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sort_by"));
    }
}
