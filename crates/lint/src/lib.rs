//! `rvs-lint` — tidy-style static analysis for the vote-sampling workspace.
//!
//! The paper's evaluation and this repo's cached-equivalence proofs are only
//! meaningful when runs are bit-reproducible: differential tests demand
//! `f64::to_bits`-identical results and the runtime auditor assumes all
//! randomness flows through seeded, forked RNG streams. Nothing in the
//! compiler stops a contributor from iterating a `HashSet`, reading the
//! wall clock in a protocol crate, or adding a panic path to gossip
//! handling — the class of silent nondeterminism that sampled-voting
//! systems identify as fatal to reproducible vote outcomes.
//!
//! Since the offline build cannot pull `syn` or dylint, this crate follows
//! rustc's `tidy` model: a zero-dependency, comment/string-aware lexer
//! ([`lexer`]) feeding a declarative rule engine ([`rules`]), a
//! recursive-descent item-model parser ([`parser`]) feeding structural
//! rules ([`structural`]), and cross-file consistency checks ([`xcheck`]).
//! The rule families run over every workspace source file (`compat/` and
//! the negative-fixture corpus excluded):
//!
//! * **determinism** — `hash-container`, `wall-clock`, `ambient-rng`,
//!   `ambient-env`, `ambient-thread`: constructs whose behaviour depends on
//!   hasher seeds, clocks, entropy, environment, or scheduling.
//! * **panic-surface** — `panic-surface`: `unwrap()`/`expect(`/`panic!`
//!   and friends in non-test protocol-crate code.
//! * **structural** — `persist-coverage` (every `impl Persist` must
//!   reference every declared field, in matching order, on both sides),
//!   `rng-fork-site` (`DetRng::new`/`.fork` only at sanctioned
//!   stream-topology sites), `rng-branch` (no conditionally evaluated RNG
//!   draws), `float-total-order` (no partial-order float comparisons in
//!   protocol crates).
//! * **suppression hygiene** — `unused-suppression`: an `allow(...)` that
//!   suppresses nothing is itself a finding.
//! * **telemetry coverage** — `telemetry-coverage`: every counter declared
//!   in `crates/telemetry` must be merged, JSON-serializable, and
//!   documented in DESIGN.md.
//! * **config/doc drift** — `config-drift`, `threading-config`,
//!   `stale-metadata`: protocol config struct fields (including the paper
//!   parameters `B_min`, `B_max`, `V_max`) and threading knobs must stay
//!   documented in DESIGN.md, and the lint's own exempt-path/crate lists
//!   must name things that still exist on disk.
//!
//! Intentional exceptions carry a written justification:
//!
//! ```text
//! // rvs-lint: allow(wall-clock) -- gated phase timer, excluded from
//! //           deterministic comparisons
//! ```
//!
//! `allow(...)` covers its own line and the next; `allow-file(...)` covers
//! the whole file. An annotation without a `-- justification` is itself a
//! finding. The CLI (`cargo run -p rvs-lint -- --workspace-root .`) prints
//! findings as text or JSON and gates CI via `--deny-findings`; the same
//! engine runs as the tier-1 test `tests/static_analysis.rs`.

pub mod engine;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod structural;
pub mod xcheck;

pub use engine::{lintable_files, run};
pub use report::{Finding, Report};
pub use rules::{check_source, Scope, TokenRule, PROTOCOL_CRATES, TOKEN_RULES};
pub use structural::{RNG_FORK_SANCTIONED, STRUCTURAL_RULES};
