//! A small comment- and string-aware Rust lexer.
//!
//! The rule engine only needs a faithful stream of *code* tokens — banned
//! names must never be reported when they appear inside comments, string
//! literals, raw strings, char literals, or doc text. The lexer therefore
//! understands exactly the pieces of Rust's lexical grammar that can hide
//! text: line comments, (nested) block comments, string/byte-string
//! literals with escapes, raw (byte) strings with arbitrary `#` fences,
//! char literals, lifetimes, and raw identifiers. Everything else is
//! reduced to identifier and punctuation tokens tagged with line numbers.
//!
//! The lexer is also where `// rvs-lint: allow(...)` annotations are
//! recognised, since they live in comments the token stream drops.

/// One code token: an identifier, number, or punctuation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Normalized token text (`::` is a single token; identifiers and
    /// numbers keep their text; other punctuation is one char each).
    pub text: String,
}

/// A parsed `// rvs-lint: allow(<rules>) -- <justification>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// 1-based line of the comment.
    pub line: u32,
    /// `allow-file(...)` annotations suppress for the whole file;
    /// `allow(...)` only for the annotation's line and the line below it.
    pub file_scoped: bool,
    /// Rule ids named inside the parentheses.
    pub rules: Vec<String>,
    /// The text after `--`; an annotation without one is itself a finding.
    pub justification: Option<String>,
    /// Set when the directive was recognised but could not be parsed.
    pub error: Option<String>,
}

/// Lexer output: the code token stream plus any lint annotations found in
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// `rvs-lint:` annotations, in source order.
    pub annotations: Vec<Annotation>,
}

/// Tokenize `src`, skipping comments and all literal forms.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let body: String = chars[start..j].iter().collect();
            if let Some(a) = parse_annotation(line, &body) {
                out.annotations.push(a);
            }
            i = j;
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // String literal.
        if c == '"' {
            i = skip_string(&chars, i + 1, &mut line);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            i = skip_char_or_lifetime(&chars, i, &mut line);
            continue;
        }
        // Identifier / number (also raw-string and byte-literal prefixes).
        if c.is_ascii_alphanumeric() || c == '_' {
            let start = i;
            let mut j = i;
            if c.is_ascii_digit() {
                // Number: digits, `_`, alphanumeric suffixes, and `.` only
                // when followed by another digit (so `1.0` is one token but
                // `1.max(2)` splits before the method call).
                while j < n {
                    let d = chars[j];
                    let in_number = d.is_ascii_alphanumeric()
                        || d == '_'
                        || (d == '.' && j + 1 < n && chars[j + 1].is_ascii_digit());
                    if !in_number {
                        break;
                    }
                    j += 1;
                }
            } else {
                while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            let ident: String = chars[start..j].iter().collect();
            // Raw / byte literal prefixes: the prefix ident is not a token.
            if j < n {
                let next = chars[j];
                match (ident.as_str(), next) {
                    ("r" | "br" | "b" | "rb", '"') | ("r" | "br" | "rb", '#') => {
                        if ident == "b" {
                            i = skip_string(&chars, j + 1, &mut line);
                        } else if next == '"' {
                            i = skip_raw_string(&chars, j + 1, 0, &mut line);
                        } else {
                            // Count the `#` fence; `r#ident` (no quote after
                            // the fence) is a raw identifier instead.
                            let mut k = j;
                            while k < n && chars[k] == '#' {
                                k += 1;
                            }
                            if k < n && chars[k] == '"' {
                                i = skip_raw_string(&chars, k + 1, k - j, &mut line);
                            } else {
                                // Raw identifier: emit the ident that follows.
                                let mut m = k;
                                while m < n && (chars[m].is_ascii_alphanumeric() || chars[m] == '_')
                                {
                                    m += 1;
                                }
                                out.toks.push(Tok {
                                    line,
                                    text: chars[k..m].iter().collect(),
                                });
                                i = m;
                            }
                        }
                        continue;
                    }
                    ("b", '\'') => {
                        i = skip_char_or_lifetime(&chars, j, &mut line);
                        continue;
                    }
                    _ => {}
                }
            }
            out.toks.push(Tok { line, text: ident });
            i = j;
            continue;
        }
        // `::` as one token (path separators are load-bearing for rules).
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            out.toks.push(Tok {
                line,
                text: "::".to_string(),
            });
            i += 2;
            continue;
        }
        out.toks.push(Tok {
            line,
            text: c.to_string(),
        });
        i += 1;
    }
    out
}

/// Skip a (byte-)string body starting just after the opening quote.
/// Returns the index just past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    while i < n {
        match chars[i] {
            '\\' => i += 2, // escape: skip the escaped char (incl. `\"`)
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw (byte-)string body starting just after the opening quote,
/// closed by `"` followed by `hashes` `#` chars. Returns the index past the
/// closing fence.
fn skip_raw_string(chars: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    let n = chars.len();
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skip a char literal or lifetime starting at the `'`. Returns the index
/// past the literal (or past the lifetime identifier).
fn skip_char_or_lifetime(chars: &[char], i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut j = i + 1;
    if j >= n {
        return j;
    }
    if chars[j] == '\\' {
        // Escaped char literal: `'\n'`, `'\u{1F600}'`, `'\''`, ...
        j += 2;
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(n);
    }
    if chars[j].is_ascii_alphabetic() || chars[j] == '_' {
        // `'a` — lifetime unless the identifier is closed by a quote
        // (`'a'` is a char literal).
        let mut k = j;
        while k < n && (chars[k].is_ascii_alphanumeric() || chars[k] == '_') {
            k += 1;
        }
        if k < n && chars[k] == '\'' {
            return k + 1; // char literal like 'x'
        }
        return k; // lifetime: nothing emitted
    }
    // Plain char literal like '(' or '0', possibly a newline char.
    if chars[j] == '\n' {
        *line += 1;
    }
    let mut k = j + 1;
    while k < n && chars[k] != '\'' {
        if chars[k] == '\n' {
            *line += 1;
        }
        k += 1;
    }
    (k + 1).min(n)
}

/// Recognise `rvs-lint:` directives inside one line comment body.
fn parse_annotation(line: u32, body: &str) -> Option<Annotation> {
    // Doc comments add a third `/` or a `!`; both land in `body`.
    let text = body.trim_start_matches(['/', '!']).trim();
    let rest = text.strip_prefix("rvs-lint:")?.trim();
    let (file_scoped, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return Some(Annotation {
            line,
            file_scoped: false,
            rules: Vec::new(),
            justification: None,
            error: Some(format!(
                "unrecognised rvs-lint directive (expected `allow(...)` or `allow-file(...)`): `{text}`"
            )),
        });
    };
    let Some(close) = rest.find(')') else {
        return Some(Annotation {
            line,
            file_scoped,
            rules: Vec::new(),
            justification: None,
            error: Some("unterminated rule list in rvs-lint annotation".to_string()),
        });
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim();
    let justification = tail
        .strip_prefix("--")
        .map(|j| j.trim().to_string())
        .filter(|j| !j.is_empty());
    Some(Annotation {
        line,
        file_scoped,
        rules,
        justification,
        error: None,
    })
}

/// For every token, whether it sits inside a `#[cfg(test)]` item (a `mod
/// tests { ... }` block, a test fn, or a `use` pulled in for tests only).
pub fn test_spans(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let is = |k: usize, s: &str| toks.get(k).map(|t| t.text == s).unwrap_or(false);
    let mut i = 0;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]` exactly.
        if is(i, "#")
            && is(i + 1, "[")
            && is(i + 2, "cfg")
            && is(i + 3, "(")
            && is(i + 4, "test")
            && is(i + 5, ")")
            && is(i + 6, "]")
        {
            let mut j = i + 7;
            // Skip any further attributes on the same item.
            while is(j, "#") && is(j + 1, "[") {
                let mut depth = 0;
                j += 1;
                while j < toks.len() {
                    if toks[j].text == "[" {
                        depth += 1;
                    } else if toks[j].text == "]" {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // The item body: everything to the first `;` or the matching
            // close of the first `{`.
            let mut k = j;
            let mut end = toks.len();
            while k < toks.len() {
                if toks[k].text == ";" {
                    end = k + 1;
                    break;
                }
                if toks[k].text == "{" {
                    let mut depth = 0;
                    while k < toks.len() {
                        if toks[k].text == "{" {
                            depth += 1;
                        } else if toks[k].text == "}" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    end = (k + 1).min(toks.len());
                    break;
                }
                k += 1;
            }
            for flag in in_test.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashSet in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"thread_rng "quoted" inside"#;
            let c = 'H';
            let real = BTreeMap::new();
        "##;
        let t = texts(src);
        assert!(!t.iter().any(|x| x == "HashMap"));
        assert!(!t.iter().any(|x| x == "HashSet"));
        assert!(!t.iter().any(|x| x == "thread_rng"));
        assert!(t.iter().any(|x| x == "BTreeMap"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let t = texts("fn f<'a>(x: &'a str) -> Instant { Instant::now() }");
        let joined = t.join(" ");
        assert!(joined.contains("Instant :: now"));
    }

    #[test]
    fn raw_identifiers_are_tokens() {
        let t = texts("let r#type = 1;");
        assert!(t.iter().any(|x| x == "type"));
    }

    #[test]
    fn annotations_parse() {
        let l = lex(
            "// rvs-lint: allow(hash-container, wall-clock) -- seed-independent set\nlet x = 1;",
        );
        assert_eq!(l.annotations.len(), 1);
        let a = &l.annotations[0];
        assert_eq!(a.rules, vec!["hash-container", "wall-clock"]);
        assert_eq!(a.justification.as_deref(), Some("seed-independent set"));
        assert!(!a.file_scoped);
        assert!(a.error.is_none());
    }

    #[test]
    fn annotation_without_justification_is_flagged_empty() {
        let l = lex("// rvs-lint: allow(wall-clock)\n");
        assert_eq!(l.annotations[0].justification, None);
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }";
        let lexed = lex(src);
        let spans = test_spans(&lexed.toks);
        let unwraps: Vec<bool> = lexed
            .toks
            .iter()
            .zip(&spans)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &s)| s)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }
}
