//! Findings and report rendering (text and machine-readable JSON).

/// One lint finding. `justification` is set when an `rvs-lint: allow`
/// annotation covers the site — the finding is then reported but does not
/// fail `--deny-findings`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (e.g. `hash-container`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for file-level cross-check findings).
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The written justification from a covering allow annotation, if any.
    pub justification: Option<String>,
}

impl Finding {
    /// A new unjustified finding.
    pub fn new(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
            justification: None,
        }
    }
}

/// A full lint run over the workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by a justified allow annotation.
    pub fn unjustified(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.justification.is_none())
    }

    /// Number of unjustified findings (what `--deny-findings` gates on).
    pub fn unjustified_count(&self) -> usize {
        self.unjustified().count()
    }

    /// Render the report as pretty JSON (hand-rolled: this crate is
    /// zero-dependency by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            match &f.justification {
                Some(j) => out.push_str(&format!("\"justification\": {}", json_str(j))),
                None => out.push_str("\"justification\": null"),
            }
            out.push('}');
            if i + 1 < self.findings.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"total\": {},\n", self.findings.len()));
        out.push_str(&format!(
            "  \"unjustified\": {}\n",
            self.unjustified_count()
        ));
        out.push('}');
        out
    }

    /// Render the report as human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.justification {
                None => out.push_str(&format!(
                    "{}:{}: [{}] {}\n",
                    f.file, f.line, f.rule, f.message
                )),
                Some(j) => out.push_str(&format!(
                    "{}:{}: [{}] allowed: {}\n",
                    f.file, f.line, f.rule, j
                )),
            }
        }
        let justified = self.findings.len() - self.unjustified_count();
        out.push_str(&format!(
            "rvs-lint: {} finding(s), {} unjustified, {} justified by annotation\n",
            self.findings.len(),
            self.unjustified_count(),
            justified
        ));
        out
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn counts_split_by_justification() {
        let mut r = Report::default();
        r.findings.push(Finding::new("x", "f.rs", 1, "m"));
        let mut ok = Finding::new("x", "f.rs", 2, "m");
        ok.justification = Some("fine".to_string());
        r.findings.push(ok);
        assert_eq!(r.unjustified_count(), 1);
        assert!(r.to_json().contains("\"unjustified\": 1"));
    }
}
