//! Cross-file rules: telemetry coverage and config/doc drift.
//!
//! These rules do not scan for banned tokens; they parse declarations out
//! of specific files and cross-check them against each other and against
//! DESIGN.md, so a counter or paper parameter can never be added (or
//! renamed) without its aggregation and documentation following along.

use crate::lexer::{self, Tok};
use crate::report::Finding;
use std::path::Path;

/// A struct declaration extracted from a token stream.
#[derive(Debug)]
struct StructDecl {
    name: String,
    line: u32,
    /// (field name, type tokens) — type tokens empty for the field-name-only
    /// structs produced by telemetry's `counter_block!` macro.
    fields: Vec<(String, Vec<String>)>,
    /// Identifiers inside the immediately preceding `#[derive(...)]`.
    derives: Vec<String>,
}

/// Extract every `struct Name { ... }` with its fields and derive list.
/// Tuple structs and macro-definition fragments (`$name`) are skipped.
fn parse_structs(toks: &[Tok]) -> Vec<StructDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "struct" {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        let name = name_tok.text.clone();
        if !name
            .chars()
            .next()
            .map(char::is_alphabetic)
            .unwrap_or(false)
        {
            i += 2;
            continue;
        }
        // Find the body opener; `;` or `(` first means unit/tuple struct.
        let mut j = i + 2;
        let mut opener = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    opener = Some(j);
                    break;
                }
                ";" | "(" => break,
                _ => j += 1,
            }
        }
        let Some(body) = opener else {
            i = j + 1;
            continue;
        };
        let derives = derives_before(toks, i);
        let (fields, end) = parse_fields(toks, body);
        out.push(StructDecl {
            name,
            line: name_tok.line,
            fields,
            derives,
        });
        i = end;
    }
    out
}

/// Identifiers inside a `#[derive(...)]` attribute directly preceding the
/// tokens at `struct_idx` (possibly with other attributes in between).
fn derives_before(toks: &[Tok], struct_idx: usize) -> Vec<String> {
    // Walk backwards over `pub` and attribute groups, collecting derive
    // contents from any `# [ derive ( ... ) ]` group found.
    let mut derives = Vec::new();
    let mut k = struct_idx;
    while k > 0 {
        let prev = &toks[k - 1].text;
        if prev == "pub" {
            k -= 1;
            continue;
        }
        if prev == "]" {
            // Scan back to the matching `[` and its `#`.
            let mut depth = 0;
            let mut m = k - 1;
            loop {
                match toks[m].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if m == 0 {
                    return derives;
                }
                m -= 1;
            }
            if m == 0 || toks[m - 1].text != "#" {
                return derives;
            }
            if toks.get(m + 1).map(|t| t.text.as_str()) == Some("derive") {
                for t in &toks[m + 2..k - 1] {
                    if t.text
                        .chars()
                        .next()
                        .map(char::is_alphabetic)
                        .unwrap_or(false)
                    {
                        derives.push(t.text.clone());
                    }
                }
            }
            k = m - 1;
            continue;
        }
        break;
    }
    derives
}

/// Parse `pub field: Type,` entries of a struct body whose `{` is at
/// `open`. Returns the fields and the index just past the closing `}`.
fn parse_fields(toks: &[Tok], open: usize) -> (Vec<(String, Vec<String>)>, usize) {
    let mut fields = Vec::new();
    let mut i = open + 1;
    let mut brace = 1i32;
    while i < toks.len() && brace > 0 {
        match toks[i].text.as_str() {
            "}" => {
                brace -= 1;
                i += 1;
            }
            "{" => {
                brace += 1;
                i += 1;
            }
            "#" if toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") => {
                // Skip attributes on fields.
                let mut depth = 0;
                i += 1;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            "pub" if brace == 1 => {
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                let fname = name_tok.text.clone();
                if fname == "("
                    || !fname
                        .chars()
                        .next()
                        .map(|c| c.is_alphabetic() || c == '_')
                        .unwrap_or(false)
                {
                    i += 2;
                    continue;
                }
                let mut ty = Vec::new();
                let mut j = i + 2;
                if toks.get(j).map(|t| t.text.as_str()) == Some(":") {
                    // Consume the type until a `,` or `}` at nesting depth 0.
                    j += 1;
                    let mut angle = 0i32;
                    let mut paren = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "(" | "[" => paren += 1,
                            ")" | "]" => paren -= 1,
                            "," if angle <= 0 && paren <= 0 => break,
                            "}" if angle <= 0 && paren <= 0 => break,
                            _ => {}
                        }
                        ty.push(toks[j].text.clone());
                        j += 1;
                    }
                }
                fields.push((fname, ty));
                i = j;
            }
            _ => i += 1,
        }
    }
    (fields, i)
}

/// Locate the token body of `fn <name>(...) { ... }` and return its token
/// texts.
fn fn_body<'a>(toks: &'a [Tok], name: &str) -> Option<Vec<&'a str>> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "fn" && toks[i + 1].text == name {
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            let mut depth = 0;
            let start = j;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(toks[start..=j].iter().map(|t| t.text.as_str()).collect());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

fn contains_seq(body: &[&str], seq: &[&str]) -> bool {
    body.windows(seq.len()).any(|w| w == seq)
}

fn read(root: &Path, rel: &str, findings: &mut Vec<Finding>) -> Option<String> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(s) => Some(s),
        Err(e) => {
            findings.push(Finding::new(
                "lint-annotation",
                rel,
                0,
                format!("cross-check input missing or unreadable: {e}"),
            ));
            None
        }
    }
}

/// **telemetry-coverage**: every counter field declared via `counter_block!`
/// in `crates/telemetry` must be (a) aggregated as a `Snapshot` field whose
/// type is its counter block, (b) folded in `Snapshot::merge`, (c) part of
/// the JSON surface (`Snapshot` derives Serialize/Deserialize), and (d)
/// documented by name in DESIGN.md's counter reference.
pub fn telemetry_coverage(root: &Path) -> Vec<Finding> {
    const TELEMETRY: &str = "crates/telemetry/src/lib.rs";
    const DESIGN: &str = "DESIGN.md";
    let mut findings = Vec::new();
    let (Some(src), Some(design)) = (
        read(root, TELEMETRY, &mut findings),
        read(root, DESIGN, &mut findings),
    ) else {
        return findings;
    };
    let lexed = lexer::lex(&src);
    let structs = parse_structs(&lexed.toks);

    // Counter blocks: structs whose every field is typeless (the shape the
    // counter_block! macro takes) — skip macro fragments with no fields.
    let counter_blocks: Vec<&StructDecl> = structs
        .iter()
        .filter(|s| !s.fields.is_empty() && s.fields.iter().all(|(_, ty)| ty.is_empty()))
        .collect();
    let Some(snapshot) = structs.iter().find(|s| s.name == "Snapshot") else {
        findings.push(Finding::new(
            "telemetry-coverage",
            TELEMETRY,
            0,
            "could not locate `pub struct Snapshot`",
        ));
        return findings;
    };
    if counter_blocks.is_empty() {
        findings.push(Finding::new(
            "telemetry-coverage",
            TELEMETRY,
            0,
            "found no counter_block! declarations to check",
        ));
        return findings;
    }

    // (c) the JSON surface.
    for need in ["Serialize", "Deserialize"] {
        if !snapshot.derives.iter().any(|d| d == need) {
            findings.push(Finding::new(
                "telemetry-coverage",
                TELEMETRY,
                snapshot.line,
                format!("Snapshot must derive {need} so counters reach the JSON surface"),
            ));
        }
    }

    let merge_body = fn_body(&lexed.toks, "merge");
    for block in &counter_blocks {
        // (a) aggregated in Snapshot.
        let slot = snapshot
            .fields
            .iter()
            .find(|(_, ty)| ty.iter().any(|t| t == &block.name));
        let Some((slot_name, _)) = slot else {
            findings.push(Finding::new(
                "telemetry-coverage",
                TELEMETRY,
                block.line,
                format!(
                    "counter block `{}` is not aggregated: no Snapshot field has this type",
                    block.name
                ),
            ));
            continue;
        };
        // (b) folded in Snapshot::merge.
        match &merge_body {
            Some(body) if contains_seq(body, &["self", ".", slot_name, ".", "merge_from"]) => {}
            Some(_) => findings.push(Finding::new(
                "telemetry-coverage",
                TELEMETRY,
                block.line,
                format!(
                    "Snapshot::merge does not fold `self.{slot_name}.merge_from(...)` for counter \
                     block `{}` — parallel-run aggregation would silently drop it",
                    block.name
                ),
            )),
            None => findings.push(Finding::new(
                "telemetry-coverage",
                TELEMETRY,
                0,
                "could not locate fn merge in crates/telemetry",
            )),
        }
        // (d) every field documented in DESIGN.md.
        for (field, _) in &block.fields {
            if !design.contains(field.as_str()) {
                findings.push(Finding::new(
                    "telemetry-coverage",
                    TELEMETRY,
                    block.line,
                    format!(
                        "counter `{}.{field}` is not mentioned in DESIGN.md — add it to the \
                         telemetry counter reference",
                        block.name
                    ),
                ));
            }
        }
    }
    // phase_nanos is the one non-counter Snapshot field; it must merge too.
    if let Some(body) = &merge_body {
        if !body.contains(&"phase_nanos") {
            findings.push(Finding::new(
                "telemetry-coverage",
                TELEMETRY,
                snapshot.line,
                "Snapshot::merge does not fold phase_nanos",
            ));
        }
    }
    findings
}

/// The config structs whose field names DESIGN.md must track.
const CONFIG_STRUCTS: &[(&str, &str)] = &[
    ("crates/scenario/src/config.rs", "ProtocolConfig"),
    ("crates/bartercast/src/protocol.rs", "BarterCastConfig"),
    ("crates/core/src/protocol.rs", "VoteSamplingConfig"),
    ("crates/faults/src/config.rs", "FaultConfig"),
    ("crates/guard/src/config.rs", "GuardConfig"),
    ("crates/shard/src/lib.rs", "ShardConfig"),
];

/// Paper parameters: (struct, field, symbol DESIGN.md must use).
const PAPER_PARAMS: &[(&str, &str, &str)] = &[
    ("VoteSamplingConfig", "b_min", "B_min"),
    ("VoteSamplingConfig", "b_max", "B_max"),
    ("VoteSamplingConfig", "v_max", "V_max"),
];

/// **config-drift**: every public field of the protocol config structs must
/// be named in DESIGN.md (case-insensitively, so prose may use the paper's
/// `B_max` for the `b_max` field), and the paper's parameter symbols must
/// appear verbatim.
pub fn config_drift(root: &Path) -> Vec<Finding> {
    const DESIGN: &str = "DESIGN.md";
    let mut findings = Vec::new();
    let Some(design) = read(root, DESIGN, &mut findings) else {
        return findings;
    };
    let design_lower = design.to_lowercase();
    for (rel, struct_name) in CONFIG_STRUCTS {
        let Some(src) = read(root, rel, &mut findings) else {
            continue;
        };
        let lexed = lexer::lex(&src);
        let structs = parse_structs(&lexed.toks);
        let Some(decl) = structs.iter().find(|s| s.name == *struct_name) else {
            findings.push(Finding::new(
                "config-drift",
                rel,
                0,
                format!("could not locate `pub struct {struct_name}`"),
            ));
            continue;
        };
        for (field, _) in &decl.fields {
            if !design_lower.contains(&field.to_lowercase()) {
                findings.push(Finding::new(
                    "config-drift",
                    rel,
                    decl.line,
                    format!(
                        "config field `{struct_name}.{field}` is not documented in DESIGN.md — \
                         paper parameters must never silently diverge from their documentation"
                    ),
                ));
            }
        }
        for (s, field, symbol) in PAPER_PARAMS {
            if s != struct_name {
                continue;
            }
            if !decl.fields.iter().any(|(f, _)| f == field) {
                findings.push(Finding::new(
                    "config-drift",
                    rel,
                    decl.line,
                    format!("paper parameter field `{field}` missing from {struct_name}"),
                ));
            }
            if !design.contains(symbol) {
                findings.push(Finding::new(
                    "config-drift",
                    DESIGN,
                    0,
                    format!("paper symbol `{symbol}` is no longer mentioned in DESIGN.md"),
                ));
            }
        }
    }
    findings
}

/// Threading knobs: (knob spelling, source file that must implement it).
/// These are the only sanctioned ways to change the worker count, and the
/// differential harness proves they cannot change results — but only if the
/// documentation keeps naming them so users know they are safe to turn.
const THREADING_KNOBS: &[(&str, &str)] = &[
    ("RVS_THREADS", "crates/sim/src/pool.rs"),
    ("--threads", "src/bin/rvs.rs"),
    ("set_threads", "crates/scenario/src/system.rs"),
    ("--shards", "src/bin/rvs.rs"),
    ("set_shards", "crates/scenario/src/system.rs"),
];

/// **threading-config**: every threading knob must exist in the source file
/// that owns it and be documented in DESIGN.md's configuration surface.
/// A knob that disappears from code while DESIGN.md still advertises it (or
/// vice versa) is drift of the kind this lint exists to catch.
pub fn threading_config(root: &Path) -> Vec<Finding> {
    const DESIGN: &str = "DESIGN.md";
    let mut findings = Vec::new();
    let Some(design) = read(root, DESIGN, &mut findings) else {
        return findings;
    };
    for (knob, rel) in THREADING_KNOBS {
        let Some(src) = read(root, rel, &mut findings) else {
            continue;
        };
        if !src.contains(knob) {
            findings.push(Finding::new(
                "threading-config",
                rel,
                0,
                format!(
                    "threading knob `{knob}` is no longer implemented in {rel} — update \
                     THREADING_KNOBS (and DESIGN.md) if it moved or was removed"
                ),
            ));
        }
        if !design.contains(knob) {
            findings.push(Finding::new(
                "threading-config",
                DESIGN,
                0,
                format!(
                    "threading knob `{knob}` ({rel}) is not documented in DESIGN.md — every \
                     way to change the worker count must appear in the configuration table"
                ),
            ));
        }
    }
    findings
}

/// **stale-metadata**: the lint's own path/crate lists must track the tree.
/// An `exempt_paths` entry, a [`crate::rules::PROTOCOL_CRATES`] member, or a
/// sanctioned RNG-fork site naming something that no longer exists is a
/// silently widened (or silently vanished) audit surface: the exemption
/// outlives the code it excused, and the next file created at that path
/// inherits it unreviewed.
pub fn stale_metadata(root: &Path) -> Vec<Finding> {
    const SELF: &str = "crates/lint/src/rules.rs";
    const STRUCTURAL: &str = "crates/lint/src/structural.rs";
    let mut findings = Vec::new();

    let mut check_path = |list: &str, decl_file: &str, entry: &str| {
        // Entries ending in `/` are directory prefixes; others are files.
        let exists = if let Some(dir) = entry.strip_suffix('/') {
            root.join(dir).is_dir()
        } else {
            root.join(entry).is_file()
        };
        if !exists {
            findings.push(Finding::new(
                "stale-metadata",
                decl_file,
                0,
                format!(
                    "{list} entry `{entry}` does not exist on disk — a stale exemption would \
                     be inherited unreviewed by whatever is created there next; update the list"
                ),
            ));
        }
    };

    for rule in crate::rules::TOKEN_RULES {
        for entry in rule.exempt_paths {
            check_path(&format!("rule `{}` exempt_paths", rule.id), SELF, entry);
        }
    }
    for entry in crate::structural::RNG_FORK_SANCTIONED {
        check_path("RNG_FORK_SANCTIONED", STRUCTURAL, entry);
    }
    for krate in crate::rules::PROTOCOL_CRATES {
        if !root.join("crates").join(krate).is_dir() {
            findings.push(Finding::new(
                "stale-metadata",
                SELF,
                0,
                format!(
                    "PROTOCOL_CRATES member `{krate}` has no `crates/{krate}/` directory — the \
                     strictest rule scope silently covers nothing for it; update the list"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_metadata_flags_missing_paths() {
        // A root that holds none of the declared paths: every metadata
        // entry must be reported stale.
        let findings = stale_metadata(Path::new("/nonexistent/rvs-lint-stale-metadata"));
        let exempt_count: usize = crate::rules::TOKEN_RULES
            .iter()
            .map(|r| r.exempt_paths.len())
            .sum();
        let expected = exempt_count
            + crate::structural::RNG_FORK_SANCTIONED.len()
            + crate::rules::PROTOCOL_CRATES.len();
        assert_eq!(findings.len(), expected, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "stale-metadata"));
    }

    #[test]
    fn parses_typed_and_typeless_structs() {
        let src = "
            #[derive(Debug, Serialize)]
            pub struct Snapshot { pub a: Foo, pub m: BTreeMap<String, u64>, }
            pub struct Counters { pub x, pub y, }
        ";
        let lexed = lexer::lex(src);
        let s = parse_structs(&lexed.toks);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "Snapshot");
        assert_eq!(s[0].fields.len(), 2);
        assert_eq!(s[0].fields[0].0, "a");
        assert_eq!(s[0].fields[1].0, "m");
        assert!(s[0].derives.iter().any(|d| d == "Serialize"));
        assert_eq!(s[1].name, "Counters");
        assert!(s[1].fields.iter().all(|(_, ty)| ty.is_empty()));
    }

    #[test]
    fn fn_body_is_located() {
        let src = "impl S { pub fn merge(&mut self, o: &S) { self.a.merge_from(&o.a); } }";
        let lexed = lexer::lex(src);
        let body = fn_body(&lexed.toks, "merge").unwrap();
        assert!(contains_seq(&body, &["self", ".", "a", ".", "merge_from"]));
    }
}
