//! Rule definitions and the per-file token rule engine.
//!
//! Token rules are declarative: a rule is a set of banned token sequences,
//! a crate scope, and whether it also applies inside `#[cfg(test)]` code
//! and test/bench source trees. The engine matches sequences against the
//! lexer's normalized token stream and applies `// rvs-lint: allow(...)`
//! annotations (which require a written justification after `--`).

use crate::lexer::{self, Annotation};
use crate::report::Finding;
use std::collections::BTreeMap;

/// Crates holding protocol logic whose runs must be bit-reproducible. The
/// determinism and panic-surface rules are strictest here.
pub const PROTOCOL_CRATES: &[&str] = &[
    "core",
    "modcast",
    "pss",
    "bartercast",
    "sim",
    "bittorrent",
    "faults",
    "checkpoint",
];

/// Which part of the workspace a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Only the protocol crates ([`PROTOCOL_CRATES`]).
    Protocol,
    /// Every workspace source file the lint walks (compat/ excluded).
    Workspace,
}

/// A declarative token-sequence rule.
#[derive(Debug)]
pub struct TokenRule {
    /// Stable rule id, used in findings and `allow(...)` annotations.
    pub id: &'static str,
    /// Where the rule applies.
    pub scope: Scope,
    /// Whether the rule also fires inside `#[cfg(test)]` items and files
    /// under `tests/`, `benches/`, or `examples/`.
    pub include_tests: bool,
    /// Banned token sequences (each element matches one normalized token).
    pub patterns: &'static [&'static [&'static str]],
    /// Why the construct is banned and what to use instead.
    pub rationale: &'static str,
    /// Workspace-relative paths where the rule is structurally exempt.
    /// Unlike `allow(...)` annotations (which suppress one occurrence with
    /// a written excuse), an exempt path is the *sanctioned home* of the
    /// construct: the place whose whole purpose is to own it. Keep this
    /// list near-empty — every entry widens the audited surface.
    pub exempt_paths: &'static [&'static str],
}

/// All token rules, in reporting order.
pub const TOKEN_RULES: &[TokenRule] = &[
    TokenRule {
        id: "hash-container",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["HashMap"], &["HashSet"]],
        rationale:
            "std hash containers iterate in RandomState order, which breaks bit-reproducible \
                    runs; use BTreeMap/BTreeSet or a sorted+deduped Vec",
        exempt_paths: &[],
    },
    TokenRule {
        id: "wall-clock",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["Instant", "::", "now"], &["SystemTime"]],
        rationale: "wall-clock reads make runs irreproducible; simulation time must come from \
                    rvs_sim::SimTime and profiling belongs behind telemetry's gated PhaseTimer",
        exempt_paths: &[],
    },
    TokenRule {
        id: "ambient-rng",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[
            &["thread_rng"],
            &["ThreadRng"],
            &["from_entropy"],
            &["OsRng"],
            &["getrandom"],
        ],
        rationale: "ambient entropy bypasses the seeded, forked DetRng streams every stochastic \
                    choice must flow through; plumb a DetRng instead",
        exempt_paths: &[],
    },
    TokenRule {
        id: "ambient-env",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["std", "::", "env"]],
        rationale: "process environment reads make behaviour depend on invocation context; \
                    restrict std::env to annotated CLI entry points",
        exempt_paths: &[],
    },
    TokenRule {
        id: "ambient-thread",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["std", "::", "thread"]],
        rationale: "the DES core is single-threaded by design; threads are only justified in the \
                    annotated fan-out harness whose determinism is proven by tests",
        exempt_paths: &["crates/sim/src/pool.rs"],
    },
    TokenRule {
        id: "panic-surface",
        scope: Scope::Protocol,
        include_tests: false,
        patterns: &[
            &[".", "unwrap", "(", ")"],
            &[".", "expect", "("],
            &["panic", "!"],
            &["unreachable", "!"],
            &["todo", "!"],
            &["unimplemented", "!"],
        ],
        rationale: "protocol crates gossip adversarial input; a reachable panic is a remote \
                    crash — return Option/Result or handle the case explicitly \
                    (assert!/debug_assert! for documented invariants are permitted)",
        exempt_paths: &[],
    },
];

/// Rule ids that exist only as cross-file checks (valid in annotations).
pub const CROSS_CHECK_RULES: &[&str] = &["telemetry-coverage", "config-drift", "threading-config"];

/// Is `rule` a known rule id (token or cross-check)?
pub fn known_rule(rule: &str) -> bool {
    TOKEN_RULES.iter().any(|r| r.id == rule) || CROSS_CHECK_RULES.contains(&rule)
}

/// How a file is classified before rules run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name under `crates/`, or `"root"` for the facade
    /// package (`src/`, `tests/`, `examples/`).
    pub crate_name: String,
    /// Whether the crate is one of [`PROTOCOL_CRATES`].
    pub protocol: bool,
    /// Whole file is test/bench scope (under `tests/`, `benches/`, or
    /// `examples/`).
    pub test_file: bool,
}

/// Classify a workspace-relative path like `crates/core/src/vote.rs`.
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "root".to_string()
    };
    let protocol = PROTOCOL_CRATES.contains(&crate_name.as_str());
    let test_file = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    FileClass {
        crate_name,
        protocol,
        test_file,
    }
}

/// Suppression state assembled from a file's annotations.
struct Allows {
    /// rule -> justification, file-wide.
    file: BTreeMap<String, String>,
    /// (rule, line) -> justification; an annotation on line L covers
    /// findings on lines L and L+1.
    lines: BTreeMap<(String, u32), String>,
}

fn collect_allows(
    rel_path: &str,
    annotations: &[Annotation],
    findings: &mut Vec<Finding>,
) -> Allows {
    let mut allows = Allows {
        file: BTreeMap::new(),
        lines: BTreeMap::new(),
    };
    for a in annotations {
        if let Some(err) = &a.error {
            findings.push(Finding::new(
                "lint-annotation",
                rel_path,
                a.line,
                err.clone(),
            ));
            continue;
        }
        if a.justification.is_none() {
            findings.push(Finding::new(
                "lint-annotation",
                rel_path,
                a.line,
                "rvs-lint allow annotation is missing its `-- <justification>`; every exception \
                 must say why it is sound"
                    .to_string(),
            ));
            continue;
        }
        let just = a.justification.clone().unwrap_or_default();
        for rule in &a.rules {
            if !known_rule(rule) {
                findings.push(Finding::new(
                    "lint-annotation",
                    rel_path,
                    a.line,
                    format!("unknown rule `{rule}` in rvs-lint allow annotation"),
                ));
                continue;
            }
            if a.file_scoped {
                allows.file.insert(rule.clone(), just.clone());
            } else {
                allows.lines.insert((rule.clone(), a.line), just.clone());
                allows
                    .lines
                    .insert((rule.clone(), a.line + 1), just.clone());
            }
        }
    }
    allows
}

/// Run every applicable token rule over one file's source text.
///
/// `rel_path` is workspace-relative and determines crate scoping; the
/// returned findings include justified ones (with their justification
/// attached) so reports can show the full exception surface.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let class = classify(rel_path);
    let lexed = lexer::lex(src);
    let in_test = lexer::test_spans(&lexed.toks);
    let mut findings = Vec::new();
    let allows = collect_allows(rel_path, &lexed.annotations, &mut findings);

    for rule in TOKEN_RULES {
        let in_scope = match rule.scope {
            Scope::Protocol => class.protocol,
            Scope::Workspace => true,
        };
        if !in_scope || (!rule.include_tests && class.test_file) {
            continue;
        }
        if rule.exempt_paths.contains(&rel_path) {
            continue;
        }
        for pattern in rule.patterns {
            let mut i = 0;
            while i + pattern.len() <= lexed.toks.len() {
                let matched = pattern
                    .iter()
                    .enumerate()
                    .all(|(k, want)| lexed.toks[i + k].text == *want);
                if !matched {
                    i += 1;
                    continue;
                }
                if !rule.include_tests && in_test[i] {
                    i += pattern.len();
                    continue;
                }
                let line = lexed.toks[i].line;
                let shown = pattern.join("");
                let mut f = Finding::new(
                    rule.id,
                    rel_path,
                    line,
                    format!("`{shown}` is banned here: {}", rule.rationale),
                );
                if let Some(just) = allows
                    .lines
                    .get(&(rule.id.to_string(), line))
                    .or_else(|| allows.file.get(rule.id))
                {
                    f.justification = Some(just.clone());
                }
                findings.push(f);
                i += pattern.len();
            }
        }
    }
    // Scanning goes rule-by-rule; present findings in source order.
    findings.sort_by(|a, b| (a.line, &a.rule, &a.message).cmp(&(b.line, &b.rule, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let c = classify("crates/core/src/vote.rs");
        assert_eq!(c.crate_name, "core");
        assert!(c.protocol && !c.test_file);
        let t = classify("crates/bartercast/tests/proptests.rs");
        assert!(t.protocol && t.test_file);
        let r = classify("src/bin/rvs.rs");
        assert_eq!(r.crate_name, "root");
        assert!(!r.protocol);
        let e = classify("examples/quickstart.rs");
        assert!(e.test_file);
    }
}
