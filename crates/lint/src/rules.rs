//! Rule definitions and the per-file token rule engine.
//!
//! Token rules are declarative: a rule is a set of banned token sequences,
//! a crate scope, and whether it also applies inside `#[cfg(test)]` code
//! and test/bench source trees. The engine matches sequences against the
//! lexer's normalized token stream and applies `// rvs-lint: allow(...)`
//! annotations (which require a written justification after `--`).

use crate::lexer::{self, Annotation};
use crate::report::Finding;

/// Crates holding protocol logic whose runs must be bit-reproducible. The
/// determinism and panic-surface rules are strictest here.
pub const PROTOCOL_CRATES: &[&str] = &[
    "core",
    "modcast",
    "pss",
    "bartercast",
    "sim",
    "bittorrent",
    "faults",
    "checkpoint",
    "guard",
    "shard",
];

/// Which part of the workspace a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Only the protocol crates ([`PROTOCOL_CRATES`]).
    Protocol,
    /// Every workspace source file the lint walks (compat/ excluded).
    Workspace,
}

/// A declarative token-sequence rule.
#[derive(Debug)]
pub struct TokenRule {
    /// Stable rule id, used in findings and `allow(...)` annotations.
    pub id: &'static str,
    /// Where the rule applies.
    pub scope: Scope,
    /// Whether the rule also fires inside `#[cfg(test)]` items and files
    /// under `tests/`, `benches/`, or `examples/`.
    pub include_tests: bool,
    /// Banned token sequences (each element matches one normalized token).
    pub patterns: &'static [&'static [&'static str]],
    /// Why the construct is banned and what to use instead.
    pub rationale: &'static str,
    /// Workspace-relative paths where the rule is structurally exempt.
    /// Unlike `allow(...)` annotations (which suppress one occurrence with
    /// a written excuse), an exempt path is the *sanctioned home* of the
    /// construct: the place whose whole purpose is to own it. Keep this
    /// list near-empty — every entry widens the audited surface.
    pub exempt_paths: &'static [&'static str],
}

/// All token rules, in reporting order.
pub const TOKEN_RULES: &[TokenRule] = &[
    TokenRule {
        id: "hash-container",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["HashMap"], &["HashSet"]],
        rationale:
            "std hash containers iterate in RandomState order, which breaks bit-reproducible \
                    runs; use BTreeMap/BTreeSet or a sorted+deduped Vec",
        exempt_paths: &[],
    },
    TokenRule {
        id: "wall-clock",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["Instant", "::", "now"], &["SystemTime"]],
        rationale: "wall-clock reads make runs irreproducible; simulation time must come from \
                    rvs_sim::SimTime and profiling belongs behind telemetry's gated PhaseTimer",
        exempt_paths: &[],
    },
    TokenRule {
        id: "ambient-rng",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[
            &["thread_rng"],
            &["ThreadRng"],
            &["from_entropy"],
            &["OsRng"],
            &["getrandom"],
        ],
        rationale: "ambient entropy bypasses the seeded, forked DetRng streams every stochastic \
                    choice must flow through; plumb a DetRng instead",
        exempt_paths: &[],
    },
    TokenRule {
        id: "ambient-env",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["std", "::", "env"]],
        rationale: "process environment reads make behaviour depend on invocation context; \
                    restrict std::env to annotated CLI entry points",
        exempt_paths: &[],
    },
    TokenRule {
        id: "ambient-thread",
        scope: Scope::Workspace,
        include_tests: true,
        patterns: &[&["std", "::", "thread"]],
        rationale: "the DES core is single-threaded by design; threads are only justified in the \
                    annotated fan-out harness whose determinism is proven by tests",
        exempt_paths: &["crates/sim/src/pool.rs"],
    },
    TokenRule {
        id: "panic-surface",
        scope: Scope::Protocol,
        include_tests: false,
        patterns: &[
            &[".", "unwrap", "(", ")"],
            &[".", "expect", "("],
            &["panic", "!"],
            &["unreachable", "!"],
            &["todo", "!"],
            &["unimplemented", "!"],
        ],
        rationale: "protocol crates gossip adversarial input; a reachable panic is a remote \
                    crash — return Option/Result or handle the case explicitly \
                    (assert!/debug_assert! for documented invariants are permitted)",
        exempt_paths: &[],
    },
];

/// Rule ids that exist only as cross-file checks (valid in annotations).
pub const CROSS_CHECK_RULES: &[&str] = &[
    "telemetry-coverage",
    "config-drift",
    "threading-config",
    "stale-metadata",
];

/// Is `rule` a known rule id (token, structural, or cross-check)?
pub fn known_rule(rule: &str) -> bool {
    TOKEN_RULES.iter().any(|r| r.id == rule)
        || CROSS_CHECK_RULES.contains(&rule)
        || crate::structural::STRUCTURAL_RULES.contains(&rule)
}

/// How a file is classified before rules run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name under `crates/`, or `"root"` for the facade
    /// package (`src/`, `tests/`, `examples/`).
    pub crate_name: String,
    /// Whether the crate is one of [`PROTOCOL_CRATES`].
    pub protocol: bool,
    /// Whole file is test/bench scope (under `tests/`, `benches/`, or
    /// `examples/`).
    pub test_file: bool,
}

/// Classify a workspace-relative path like `crates/core/src/vote.rs`.
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "root".to_string()
    };
    let protocol = PROTOCOL_CRATES.contains(&crate_name.as_str());
    let test_file = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    FileClass {
        crate_name,
        protocol,
        test_file,
    }
}

/// One `allow(...)` grant: a single rule from a single annotation, plus a
/// used-flag so suppressions that never suppress anything can themselves be
/// reported (`unused-suppression`).
struct Grant {
    rule: String,
    /// Annotation line. Line-scoped grants cover findings on this line and
    /// the next; file-scoped grants cover the whole file.
    line: u32,
    file_scoped: bool,
    justification: String,
    used: bool,
}

/// Suppression state assembled from a file's annotations, shared by the
/// token and structural rule engines so usage is tracked across both.
pub(crate) struct Suppressions {
    grants: Vec<Grant>,
}

impl Suppressions {
    fn collect(rel_path: &str, annotations: &[Annotation], findings: &mut Vec<Finding>) -> Self {
        let mut grants = Vec::new();
        for a in annotations {
            if let Some(err) = &a.error {
                findings.push(Finding::new(
                    "lint-annotation",
                    rel_path,
                    a.line,
                    err.clone(),
                ));
                continue;
            }
            if a.justification.is_none() {
                findings.push(Finding::new(
                    "lint-annotation",
                    rel_path,
                    a.line,
                    "rvs-lint allow annotation is missing its `-- <justification>`; every \
                     exception must say why it is sound"
                        .to_string(),
                ));
                continue;
            }
            let just = a.justification.clone().unwrap_or_default();
            for rule in &a.rules {
                if !known_rule(rule) {
                    findings.push(Finding::new(
                        "lint-annotation",
                        rel_path,
                        a.line,
                        format!("unknown rule `{rule}` in rvs-lint allow annotation"),
                    ));
                    continue;
                }
                grants.push(Grant {
                    rule: rule.clone(),
                    line: a.line,
                    file_scoped: a.file_scoped,
                    justification: just.clone(),
                    used: false,
                });
            }
        }
        Suppressions { grants }
    }

    /// Look up a grant covering a finding of `rule` on `line`, marking it
    /// used. Line-scoped grants (more specific) win over file-scoped ones.
    fn suppress(&mut self, rule: &str, line: u32) -> Option<String> {
        if let Some(g) = self
            .grants
            .iter_mut()
            .find(|g| !g.file_scoped && g.rule == rule && (line == g.line || line == g.line + 1))
        {
            g.used = true;
            return Some(g.justification.clone());
        }
        if let Some(g) = self
            .grants
            .iter_mut()
            .find(|g| g.file_scoped && g.rule == rule)
        {
            g.used = true;
            return Some(g.justification.clone());
        }
        None
    }

    /// Findings for every grant that suppressed nothing. A dead `allow` is
    /// not harmless: it advertises an exception that no longer exists, and
    /// it would silently swallow the next real finding near its line.
    fn unused(&self, rel_path: &str) -> Vec<Finding> {
        self.grants
            .iter()
            .filter(|g| !g.used)
            .map(|g| {
                Finding::new(
                    "unused-suppression",
                    rel_path,
                    g.line,
                    format!(
                        "`allow{}({})` suppresses nothing — remove the stale annotation (it \
                         would hide the next real `{}` finding introduced near this line)",
                        if g.file_scoped { "-file" } else { "" },
                        g.rule,
                        g.rule,
                    ),
                )
            })
            .collect()
    }
}

/// Run every applicable per-file rule (token and structural) over one
/// file's source text.
///
/// `rel_path` is workspace-relative and determines crate scoping; the
/// returned findings include justified ones (with their justification
/// attached) so reports can show the full exception surface. `allow`
/// grants that suppress nothing become `unused-suppression` findings.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let class = classify(rel_path);
    let lexed = lexer::lex(src);
    let in_test = lexer::test_spans(&lexed.toks);
    let mut findings = Vec::new();
    let mut suppressions = Suppressions::collect(rel_path, &lexed.annotations, &mut findings);
    // Findings pushed before this point (malformed annotations) are not
    // themselves suppressible; remember where the suppressible ones start.
    let suppressible_from = findings.len();

    for rule in TOKEN_RULES {
        let in_scope = match rule.scope {
            Scope::Protocol => class.protocol,
            Scope::Workspace => true,
        };
        if !in_scope || (!rule.include_tests && class.test_file) {
            continue;
        }
        if rule.exempt_paths.contains(&rel_path) {
            continue;
        }
        for pattern in rule.patterns {
            let mut i = 0;
            while i + pattern.len() <= lexed.toks.len() {
                let matched = pattern
                    .iter()
                    .enumerate()
                    .all(|(k, want)| lexed.toks[i + k].text == *want);
                if !matched {
                    i += 1;
                    continue;
                }
                if !rule.include_tests && in_test[i] {
                    i += pattern.len();
                    continue;
                }
                let line = lexed.toks[i].line;
                let shown = pattern.join("");
                findings.push(Finding::new(
                    rule.id,
                    rel_path,
                    line,
                    format!("`{shown}` is banned here: {}", rule.rationale),
                ));
                i += pattern.len();
            }
        }
    }

    let model = crate::parser::parse_items(&lexed.toks);
    findings.extend(crate::structural::check_structural(
        rel_path,
        &class,
        &lexed.toks,
        &model,
        &in_test,
    ));

    // One suppression pass over everything the rule engines produced, so a
    // grant's used-flag reflects both token and structural findings.
    for f in &mut findings[suppressible_from..] {
        if let Some(just) = suppressions.suppress(&f.rule, f.line) {
            f.justification = Some(just);
        }
    }
    findings.extend(suppressions.unused(rel_path));
    // Scanning goes rule-by-rule; present findings in source order.
    findings.sort_by(|a, b| (a.line, &a.rule, &a.message).cmp(&(b.line, &b.rule, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unused_allow_is_a_finding() {
        let src = "// rvs-lint: allow(hash-container) -- nothing here uses one\nfn f() {}\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unused-suppression");
        assert!(f[0].message.contains("allow(hash-container)"));
    }

    #[test]
    fn used_allow_is_not_reported_unused() {
        let src = "// rvs-lint: allow(hash-container) -- exercising the grant\nuse std::collections::HashMap;\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hash-container");
        assert!(f[0].justification.is_some());
    }

    #[test]
    fn file_scoped_allow_marks_used_once_for_many_findings() {
        let src = "// rvs-lint: allow-file(hash-container) -- test fixture\n\
                   fn a() { let _: HashMap<u8, u8>; }\n\
                   fn b() { let _: HashSet<u8>; }\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.justification.is_some()));
    }

    #[test]
    fn structural_findings_consume_grants_too() {
        let src = "\
            fn seed() -> DetRng {\n\
                // rvs-lint: allow(rng-fork-site) -- documented new stream root\n\
                DetRng::new(7)\n\
            }\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "rng-fork-site");
        assert!(f[0].justification.is_some());
    }

    #[test]
    fn classify_paths() {
        let c = classify("crates/core/src/vote.rs");
        assert_eq!(c.crate_name, "core");
        assert!(c.protocol && !c.test_file);
        let t = classify("crates/bartercast/tests/proptests.rs");
        assert!(t.protocol && t.test_file);
        let r = classify("src/bin/rvs.rs");
        assert_eq!(r.crate_name, "root");
        assert!(!r.protocol);
        let e = classify("examples/quickstart.rs");
        assert!(e.test_file);
    }
}
