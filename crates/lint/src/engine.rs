//! Workspace walker: applies every rule to every lintable source file.

use crate::report::{Finding, Report};
use crate::{rules, xcheck};
use std::path::{Path, PathBuf};

/// Directories (workspace-relative) whose `.rs` files are linted. The
/// `compat/` shims are excluded by construction: they mirror external crate
/// APIs and are not protocol code.
const LINT_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// reporting order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // `target/` never appears under the lint roots, but guard anyway.
            if p.file_name().map(|n| n == "target").unwrap_or(false) {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
}

/// The committed negative corpus: files that exist to make rules fire.
/// They are exercised by the fixture-runner test, never by the workspace
/// walk (they would otherwise fail the gate by design).
const FIXTURE_PREFIX: &str = "crates/lint/tests/fixtures/";

/// Every workspace-relative source path the lint examines.
pub fn lintable_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    for lr in LINT_ROOTS {
        let mut abs = Vec::new();
        collect_rs(&root.join(lr), &mut abs);
        for p in abs {
            if let Ok(rel) = p.strip_prefix(root) {
                let rel = rel.to_string_lossy().replace('\\', "/");
                if !rel.starts_with(FIXTURE_PREFIX) {
                    files.push(rel);
                }
            }
        }
    }
    files.sort();
    files
}

/// Run the full rule set (token rules plus cross-checks) over the workspace
/// rooted at `root`.
pub fn run(root: &Path) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    for rel in lintable_files(root) {
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => findings.extend(rules::check_source(&rel, &src)),
            Err(e) => findings.push(Finding::new(
                "lint-annotation",
                &rel,
                0,
                format!("unreadable source file: {e}"),
            )),
        }
    }
    findings.extend(xcheck::telemetry_coverage(root));
    findings.extend(xcheck::config_drift(root));
    findings.extend(xcheck::threading_config(root));
    findings.extend(xcheck::stale_metadata(root));
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    Report { findings }
}
