//! Fixture tests: one small source snippet per rule, checked through the
//! public [`rvs_lint::check_source`] entry point exactly as the engine
//! runs it over real workspace files.

use rvs_lint::{check_source, Finding};

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

fn unjustified(findings: &[Finding]) -> Vec<&Finding> {
    findings
        .iter()
        .filter(|f| f.justification.is_none())
        .collect()
}

// ---------------------------------------------------------------------------
// Determinism family
// ---------------------------------------------------------------------------

#[test]
fn hash_map_and_set_fire_everywhere() {
    let src = "use std::collections::{HashMap, HashSet};\n";
    for path in [
        "crates/core/src/x.rs",    // protocol crate
        "crates/metrics/src/x.rs", // non-protocol crate
        "tests/integration.rs",    // root integration test
    ] {
        let f = check_source(path, src);
        assert_eq!(
            rules_of(&f),
            vec!["hash-container", "hash-container"],
            "{path}"
        );
    }
}

#[test]
fn hash_container_fires_even_in_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec!["hash-container"]);
}

#[test]
fn wall_clock_fires_on_instant_now_and_system_time() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n\
               fn g() { let s = std::time::SystemTime::UNIX_EPOCH; }\n";
    let f = check_source("crates/sim/src/x.rs", src);
    assert_eq!(rules_of(&f), vec!["wall-clock", "wall-clock"]);
    assert_eq!(f[0].line, 1);
    assert_eq!(f[1].line, 2);
}

#[test]
fn instant_type_alone_is_not_flagged() {
    // Only *reading* the wall clock is nondeterministic; storing a
    // caller-supplied Instant is not.
    let src = "pub struct S { t: std::time::Instant }\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn ambient_rng_fires_on_thread_rng_and_entropy() {
    let src = "fn f() { let mut r = rand::thread_rng(); }\n\
               fn g() { let r = SmallRng::from_entropy(); }\n";
    let f = check_source("crates/pss/src/x.rs", src);
    assert_eq!(rules_of(&f), vec!["ambient-rng", "ambient-rng"]);
}

#[test]
fn ambient_env_and_thread_fire() {
    let src = "fn f() { let p = std::env::var(\"HOME\"); }\n\
               fn g() { std::thread::sleep(std::time::Duration::ZERO); }\n";
    let f = check_source("crates/scenario/src/x.rs", src);
    assert_eq!(rules_of(&f), vec!["ambient-env", "ambient-thread"]);
}

// ---------------------------------------------------------------------------
// Panic-surface family
// ---------------------------------------------------------------------------

#[test]
fn panic_surface_fires_in_protocol_crates_only() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(
        rules_of(&check_source("crates/core/src/x.rs", src)),
        vec!["panic-surface"]
    );
    assert_eq!(
        rules_of(&check_source("crates/bartercast/src/x.rs", src)),
        vec!["panic-surface"]
    );
    // Non-protocol crates (metrics, bench, attacks, …) may panic freely.
    assert!(check_source("crates/metrics/src/x.rs", src).is_empty());
    assert!(check_source("crates/bench/src/x.rs", src).is_empty());
}

#[test]
fn panic_surface_skips_test_code() {
    let src = "pub fn f() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
               }\n";
    assert!(check_source("crates/core/src/x.rs", src).is_empty());
    // Integration-test files of a protocol crate are test code wholesale.
    assert!(check_source("crates/core/tests/t.rs", "fn f() { panic!(); }\n").is_empty());
}

#[test]
fn panic_surface_catches_the_whole_family() {
    let src = "fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
               fn b(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
               fn c() { panic!(\"boom\") }\n\
               fn d() { unreachable!() }\n\
               fn e() { todo!() }\n";
    let f = check_source("crates/modcast/src/x.rs", src);
    assert_eq!(f.len(), 5, "{f:?}");
    assert!(f.iter().all(|x| x.rule == "panic-surface"));
}

#[test]
fn unwrap_as_identifier_fragment_is_not_flagged() {
    // `unwrap_or` / `unwrap_or_default` are panic-free; only the exact
    // `.unwrap()` call fires.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
               fn g(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n";
    assert!(check_source("crates/core/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

#[test]
fn line_annotation_justifies_next_line() {
    let src = "// rvs-lint: allow(hash-container) -- iteration order never observed\n\
               use std::collections::HashMap;\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 1);
    assert_eq!(
        f[0].justification.as_deref(),
        Some("iteration order never observed")
    );
    assert!(unjustified(&f).is_empty());
}

#[test]
fn annotation_does_not_leak_past_its_scope() {
    let src = "// rvs-lint: allow(hash-container) -- only this one\n\
               use std::collections::HashMap;\n\
               use std::collections::HashSet;\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 2);
    assert_eq!(unjustified(&f).len(), 1, "third line is NOT covered");
    assert_eq!(unjustified(&f)[0].line, 3);
}

#[test]
fn annotation_for_a_different_rule_does_not_apply() {
    let src = "// rvs-lint: allow(wall-clock) -- wrong rule\n\
               use std::collections::HashMap;\n";
    let f = check_source("crates/core/src/x.rs", src);
    // The HashMap finding stays unjustified, and the wall-clock grant that
    // suppressed nothing is itself reported as unused-suppression.
    assert_eq!(unjustified(&f).len(), 2, "{f:?}");
    assert!(unjustified(&f).iter().any(|x| x.rule == "hash-container"));
    assert!(unjustified(&f)
        .iter()
        .any(|x| x.rule == "unused-suppression"));
}

#[test]
fn file_annotation_covers_whole_file() {
    let src = "// rvs-lint: allow-file(hash-container) -- cardinality-only sets\n\
               use std::collections::HashMap;\n\
               fn f() { let s: std::collections::HashMap<u8, u8> = Default::default(); s.len(); }\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert!(!f.is_empty());
    assert!(unjustified(&f).is_empty(), "{f:?}");
}

#[test]
fn annotation_without_justification_is_a_finding() {
    let src = "// rvs-lint: allow(hash-container)\n\
               use std::collections::HashMap;\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert!(
        f.iter().any(|x| x.rule == "lint-annotation"),
        "bare allow must be flagged: {f:?}"
    );
}

#[test]
fn annotation_with_unknown_rule_is_a_finding() {
    let src = "// rvs-lint: allow(made-up-rule) -- sounds official\nfn f() {}\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert!(f.iter().any(|x| x.rule == "lint-annotation"), "{f:?}");
}

// ---------------------------------------------------------------------------
// Lexer integration: banned names in non-code positions never fire
// ---------------------------------------------------------------------------

#[test]
fn strings_comments_and_raw_strings_never_fire() {
    let src = concat!(
        "fn f() {\n",
        "    let a = \"HashMap and Instant::now() and .unwrap()\";\n",
        "    // HashSet thread_rng SystemTime panic!()\n",
        "    /* std::env::var /* nested HashMap */ still comment */\n",
        "    let b = r#\"raw HashMap with \" quote\"#;\n",
        "    let c = r##\"fences: \"# is not the end, HashSet\"##;\n",
        "    let d = 'h';\n",
        "}\n"
    );
    let f = check_source("crates/core/src/x.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn lifetime_quote_does_not_swallow_code() {
    // A naive char-literal skipper would treat `'a` as an unterminated char
    // and skip real code containing a violation.
    let src = "fn f<'a>(x: &'a Option<u32>) -> u32 { x.unwrap() }\n";
    let f = check_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec!["panic-surface"]);
}
