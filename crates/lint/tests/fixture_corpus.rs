//! The committed negative corpus: every file under `tests/fixtures/` is a
//! known-bad source that must make specific rules fire. Each fixture
//! declares its own contract in a header:
//!
//! ```text
//! // fixture-path: crates/core/src/fixture.rs   (path the lint classifies)
//! // expect: rule-a rule-a rule-b               (exact unjustified multiset)
//! ```
//!
//! The runner asserts the *exact* multiset of unjustified findings, so a
//! rule that stops firing (or starts double-firing) on its fixture breaks
//! the build — the lint is itself regression-tested. A final test asserts
//! the corpus covers every per-file rule the engine can emit, and that the
//! workspace walk never lints the corpus.

use rvs_lint::check_source;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// (fixture file name, declared lint path, expected rule multiset, source).
fn corpus() -> Vec<(String, String, Vec<String>, String)> {
    let mut entries = Vec::new();
    let dir = fixtures_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture corpus dir {} unreadable: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "rs").unwrap_or(false))
        .collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&p).unwrap();
        let mut lint_path = None;
        let mut expect = None;
        for line in src.lines() {
            if let Some(rest) = line.strip_prefix("// fixture-path:") {
                lint_path = Some(rest.trim().to_string());
            }
            if let Some(rest) = line.strip_prefix("// expect:") {
                expect = Some(
                    rest.split_whitespace()
                        .map(str::to_string)
                        .collect::<Vec<_>>(),
                );
            }
        }
        let lint_path =
            lint_path.unwrap_or_else(|| panic!("{name}: missing `// fixture-path:` header"));
        let expect = expect.unwrap_or_else(|| panic!("{name}: missing `// expect:` header"));
        assert!(!expect.is_empty(), "{name}: empty expectation");
        entries.push((name, lint_path, expect, src));
    }
    assert!(!entries.is_empty(), "fixture corpus is empty");
    entries
}

fn multiset(rules: impl Iterator<Item = String>) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for r in rules {
        *m.entry(r).or_insert(0) += 1;
    }
    m
}

/// Every fixture produces exactly its declared unjustified findings.
#[test]
fn every_fixture_fires_exactly_as_declared() {
    for (name, lint_path, expect, src) in corpus() {
        let findings = check_source(&lint_path, &src);
        let got = multiset(
            findings
                .iter()
                .filter(|f| f.justification.is_none())
                .map(|f| f.rule.clone()),
        );
        let want = multiset(expect.into_iter());
        assert_eq!(
            got, want,
            "{name} (as {lint_path}): expected multiset differs; findings: {findings:#?}"
        );
    }
}

/// The corpus collectively exercises every per-file rule id the engine can
/// emit: all token rules, all structural rules, suppression hygiene, and
/// annotation validity. Adding a rule without a fixture breaks this test.
#[test]
fn corpus_covers_every_per_file_rule() {
    let covered: std::collections::BTreeSet<String> = corpus()
        .into_iter()
        .flat_map(|(_, _, expect, _)| expect)
        .collect();
    let mut required: Vec<&str> = rvs_lint::TOKEN_RULES.iter().map(|r| r.id).collect();
    required.extend(rvs_lint::STRUCTURAL_RULES);
    required.extend(["unused-suppression", "lint-annotation"]);
    let missing: Vec<&&str> = required.iter().filter(|r| !covered.contains(**r)).collect();
    assert!(
        missing.is_empty(),
        "rules with no firing fixture in tests/fixtures/: {missing:?}"
    );
}

/// The workspace walk must never visit the corpus: these files exist to
/// fail the rules, and would otherwise fail the tier-1 gate by design.
#[test]
fn workspace_walk_excludes_the_corpus() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let files = rvs_lint::lintable_files(&root);
    assert!(
        files.iter().any(|f| f.starts_with("crates/lint/src/")),
        "walk sanity check: lint sources must be visited"
    );
    let leaked: Vec<&String> = files
        .iter()
        .filter(|f| f.starts_with("crates/lint/tests/fixtures/"))
        .collect();
    assert!(leaked.is_empty(), "corpus leaked into the walk: {leaked:?}");
}
