// fixture-path: crates/modcast/src/fixture.rs
// expect: panic-surface panic-surface panic-surface
// Reachable panics in a protocol crate that gossips adversarial input:
// each is a remote crash waiting for the right message.

pub fn fragile(v: &[u64], m: &std::collections::BTreeMap<u64, u64>) -> u64 {
    let first = v.first().unwrap();
    let looked_up = m.get(first).expect("sender must be known");
    if *looked_up > 100 {
        panic!("implausible ledger value");
    }
    *looked_up
}
