// fixture-path: crates/checkpoint/src/fixture.rs
// expect: persist-coverage
// Both sides reference both fields, but in different orders. The codec is
// untagged, so restore decodes `b`'s bytes into `a` and vice versa.

pub struct Swapped {
    pub a: u64,
    pub b: u64,
}

impl rvs_checkpoint::Persist for Swapped {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.a);
        enc.u64(self.b);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let b = dec.u64()?;
        let a = dec.u64()?;
        Ok(Swapped { a, b })
    }
}
