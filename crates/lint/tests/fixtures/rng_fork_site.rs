// fixture-path: crates/pss/src/fixture.rs
// expect: rng-fork-site rng-fork-site
// An ad-hoc RNG root plus an ad-hoc fork inside a protocol crate: both
// re-root a stream outside the sanctioned topology (sim, System setup,
// SwarmRunner, FaultLane) and fire separately.

pub fn rogue_stream(seed: u64) -> DetRng {
    DetRng::new(seed).fork(0xBAD)
}
