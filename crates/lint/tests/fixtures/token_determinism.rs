// fixture-path: crates/core/src/fixture.rs
// expect: hash-container hash-container wall-clock wall-clock ambient-rng ambient-env ambient-thread
// One occurrence of each banned determinism construct: randomized-order
// containers, both wall-clock reads, ambient entropy, environment reads,
// and ad-hoc threads.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn nondeterministic_soup() {
    let _t = Instant::now();
    let _s = SystemTime::UNIX_EPOCH;
    let _r = thread_rng();
    let _e = std::env::var("HOME");
    let _h = std::thread::spawn(|| 1);
}
