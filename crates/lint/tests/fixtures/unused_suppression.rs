// fixture-path: crates/core/src/fixture.rs
// expect: unused-suppression
// A grant for a rule that never fires here. Left in place it would
// silently swallow the next real wall-clock finding near this line.

// rvs-lint: allow(wall-clock) -- stale excuse for code that was deleted
pub fn nothing_to_excuse() -> u64 {
    42
}
