// fixture-path: crates/checkpoint/src/fixture.rs
// expect: persist-coverage
// An enum variant encoded by `persist` but with no decoding arm in
// `restore`: checkpoints containing it can never be loaded again.

pub enum Phase {
    Warmup,
    Steady,
    Drain,
}

impl rvs_checkpoint::Persist for Phase {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u8(match self {
            Phase::Warmup => 0,
            Phase::Steady => 1,
            Phase::Drain => 2,
        });
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(Phase::Warmup),
            1 => Ok(Phase::Steady),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "bad Phase discriminant {d}"
            ))),
        }
    }
}
