// fixture-path: crates/pss/src/fixture.rs
// expect: rng-branch rng-branch
// Two conditionally evaluated draws: one short-circuited behind `&&` in an
// if condition, one inside a match guard. Whether either draw happens
// depends on data, which shifts every later draw on the stream.

pub fn gated(flag: bool, rng: &mut DetRng) -> u32 {
    if flag && rng.chance(0.5) {
        1
    } else {
        0
    }
}

pub fn guarded(x: u64, rng: &mut DetRng) -> u32 {
    match x {
        0 => 7,
        n if rng.below(n) == 0 => 1,
        _ => 2,
    }
}
