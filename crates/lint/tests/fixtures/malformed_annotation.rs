// fixture-path: crates/core/src/fixture.rs
// expect: lint-annotation lint-annotation
// Two broken suppressions: one missing its written justification, one
// naming a rule that does not exist. Neither registers a grant.

// rvs-lint: allow(hash-container)
pub fn missing_justification() {}

// rvs-lint: allow(determinism-vibes) -- this rule id is not a thing
pub fn unknown_rule() {}
