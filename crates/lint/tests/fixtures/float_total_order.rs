// fixture-path: crates/core/src/fixture.rs
// expect: float-total-order float-total-order float-total-order float-total-order
// Partial-order float operations in a protocol crate: equality, a
// partial_cmp call, an IEEE max clamp, and a sort keyed on floats with no
// total_cmp/to_bits in sight. Each fires once.

pub struct Score {
    pub x: f64,
}

impl Score {
    pub fn is_zero(&self) -> bool {
        self.x == 0.0
    }

    pub fn compare(&self, other: &Score) -> Option<core::cmp::Ordering> {
        self.x.partial_cmp(&other.x)
    }

    pub fn clamped(ms: f64) -> f64 {
        ms.max(0.0)
    }

    pub fn rank(v: &mut Vec<Score>, scale: f64) {
        v.sort_by(|p, q| weigh(p, scale).cmp(&weigh(q, scale)));
    }
}
