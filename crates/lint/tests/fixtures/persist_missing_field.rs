// fixture-path: crates/checkpoint/src/fixture.rs
// expect: persist-coverage
// A field declared on the struct but never written by `persist`: the exact
// checkpoint-format drift the rule exists to catch.

pub struct Broken {
    pub a: u64,
    pub b: u64,
}

impl rvs_checkpoint::Persist for Broken {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.a);
        // self.b forgotten: decode will read trailing bytes or starve.
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Broken {
            a: dec.u64()?,
            b: 0,
        })
    }
}
