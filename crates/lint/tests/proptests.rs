//! Property tests for the lexer-backed rule engine: banned names placed
//! in *non-code* positions (string literals, line/block/nested comments,
//! raw strings with arbitrary `#` fences) must never produce findings,
//! while the same names in code positions always do — across randomly
//! generated interleavings of both.
//!
//! The compat `proptest` has no string strategies, so documents are built
//! by mapping generated small integers onto fragment alphabets.

use proptest::prelude::*;
use rvs_lint::check_source;

/// Banned names drawn from every determinism rule family.
const BANNED: &[&str] = &["HashMap", "HashSet", "SystemTime", "thread_rng"];

/// Render one *inert* fragment: the banned name appears only inside a
/// string/comment/raw-string where the lexer must swallow it.
fn inert_fragment(kind: u8, banned: &str, label: usize) -> String {
    match kind % 7 {
        0 => format!("    let s{label} = \"{banned} inside a string\";\n"),
        1 => format!("    // {banned} inside a line comment\n"),
        2 => format!("    /* {banned} inside a block comment */\n"),
        3 => format!("    /* outer /* nested {banned} */ tail */\n"),
        4 => format!("    let r{label} = r#\"{banned} with a \" quote\"#;\n"),
        5 => format!("    let r{label} = r##\"fence: \"# not the end {banned}\"##;\n"),
        _ => format!("    let e{label} = \"esc \\\" {banned} \\\\\";\n"),
    }
}

/// Render one *live* fragment: the banned name as a real code token.
fn live_fragment(banned: &str, label: usize) -> String {
    format!("    let v{label}: Option<{banned}> = None;\n")
}

fn doc(body: &str) -> String {
    format!("fn generated() {{\n{body}}}\n")
}

proptest! {
    /// Any interleaving of inert fragments lints clean.
    #[test]
    fn inert_fragments_never_fire(
        kinds in prop::collection::vec((0u8..7, 0usize..4), 1..12)
    ) {
        let mut body = String::new();
        for (i, &(kind, which)) in kinds.iter().enumerate() {
            body.push_str(&inert_fragment(kind, BANNED[which], i));
        }
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        prop_assert!(
            findings.is_empty(),
            "inert document produced findings: {findings:?}\nsource:\n{src}"
        );
    }

    /// Sprinkling live violations among inert fragments fires exactly one
    /// finding per live fragment, each on the right line.
    #[test]
    fn live_fragments_always_fire(
        fragments in prop::collection::vec((0u8..8, 0usize..4), 1..12)
    ) {
        let mut body = String::new();
        let mut expect_lines = Vec::new();
        for (i, &(kind, which)) in fragments.iter().enumerate() {
            // kind 7 = live; 0..7 = the inert alphabet.
            if kind == 7 {
                // Line numbers are 1-based and the doc wrapper adds one line.
                expect_lines.push((i + 2) as u32);
                body.push_str(&live_fragment(BANNED[which], i));
            } else {
                body.push_str(&inert_fragment(kind, BANNED[which], i));
            }
        }
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        let got: Vec<u32> = findings.iter().map(|f| f.line).collect();
        prop_assert_eq!(
            got, expect_lines,
            "live fragments must fire once each, in order\nsource:\n{}", src
        );
    }

    /// An allow annotation with a justification suppresses exactly the
    /// next line, whatever inert noise surrounds it — and a grant for a
    /// rule that never fires is reported as unused-suppression.
    #[test]
    fn annotation_suppresses_exactly_next_line(
        prefix in prop::collection::vec((0u8..7, 0usize..4), 0..5),
        which in 0usize..4,
    ) {
        // The rule each banned name belongs to, aligned with BANNED.
        const RULE_OF: &[&str] = &["hash-container", "hash-container", "wall-clock", "ambient-rng"];
        let mut body = String::new();
        for (i, &(kind, w)) in prefix.iter().enumerate() {
            body.push_str(&inert_fragment(kind, BANNED[w], i));
        }
        body.push_str(&format!(
            "    // rvs-lint: allow({}) -- generated fixture\n",
            RULE_OF[which]
        ));
        body.push_str(&live_fragment(BANNED[which], 99));
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        prop_assert!(
            findings.iter().all(|f| f.justification.is_some()),
            "annotated violation must be justified: {findings:?}\nsource:\n{src}"
        );
        // The same document with a grant for a rule that cannot fire must
        // report exactly one extra finding: the unused grant itself.
        let stale = src.replace(
            &format!("allow({})", RULE_OF[which]),
            &format!("allow({}, panic-surface)", RULE_OF[which]),
        );
        let findings = check_source("crates/core/src/generated.rs", &stale);
        let unused: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unused-suppression")
            .collect();
        prop_assert_eq!(
            unused.len(), 1,
            "dead panic-surface grant must surface: {:?}\nsource:\n{}", findings, stale
        );
        prop_assert!(unused[0].message.contains("panic-surface"));
    }

    /// Char literals — including the escapes most likely to desynchronize a
    /// naive lexer (`'\''`, `'\\'`, `'"'`) — never hide or invent findings:
    /// live fragments after any mix of them still fire on the right lines.
    #[test]
    fn char_literal_escapes_do_not_desync_the_lexer(
        fragments in prop::collection::vec((0u8..6, 0usize..4), 1..10)
    ) {
        let mut body = String::new();
        let mut expect_lines = Vec::new();
        for (i, &(kind, which)) in fragments.iter().enumerate() {
            match kind {
                // A quote char: if the lexer mistook it for a string
                // opener, the banned name on the same line would vanish.
                0 => body.push_str(&format!(
                    "    let q{i} = ('\"', {}::default());\n",
                    BANNED[which]
                )),
                1 => body.push_str(&format!("    let e{i} = '\\'';\n")),
                2 => body.push_str(&format!("    let b{i} = '\\\\';\n")),
                3 => body.push_str(&format!("    let n{i} = '\\n';\n")),
                4 => body.push_str(&format!("    let u{i} = '\\u{{1F980}}';\n")),
                _ => {
                    body.push_str(&live_fragment(BANNED[which], i));
                    expect_lines.push((i + 2) as u32);
                    continue;
                }
            }
            // Kind 0 embeds a live banned name alongside the char literal.
            if kind == 0 {
                expect_lines.push((i + 2) as u32);
            }
        }
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        let got: Vec<u32> = findings.iter().map(|f| f.line).collect();
        prop_assert_eq!(
            got, expect_lines,
            "char escapes desynced the lexer\nsource:\n{}", src
        );
    }

    /// Block comments nested to arbitrary depth swallow banned names, and
    /// the lexer resynchronizes exactly at the final closer: a live
    /// fragment after the comment still fires.
    #[test]
    fn nested_block_comments_swallow_and_resync(
        depth in 1usize..8,
        which in 0usize..4,
        trailing_live in prop::bool::ANY,
    ) {
        let mut comment = String::from("    ");
        for _ in 0..depth {
            comment.push_str("/* ");
        }
        comment.push_str(BANNED[which]);
        for _ in 0..depth {
            comment.push_str(" */");
        }
        comment.push('\n');
        let mut body = comment;
        if trailing_live {
            body.push_str(&live_fragment(BANNED[which], 0));
        }
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        if trailing_live {
            prop_assert_eq!(findings.len(), 1, "{:?}\nsource:\n{}", findings, src);
            prop_assert_eq!(findings[0].line, 3);
        } else {
            prop_assert!(
                findings.is_empty(),
                "comment at depth {} leaked: {:?}\nsource:\n{}", depth, findings, src
            );
        }
    }

    /// Raw strings with any fence width swallow banned names, quotes, and
    /// shorter fences; the token after the closing fence is live again.
    #[test]
    fn raw_string_fences_of_any_width_are_opaque(
        fence in 1usize..6,
        which in 0usize..4,
    ) {
        let hashes = "#".repeat(fence);
        let inner_fence = "#".repeat(fence - 1);
        // The payload embeds a quote + shorter fence (a premature-close
        // trap) and the banned name.
        let body = format!(
            "    let r = r{hashes}\"trap: \"{inner_fence} then {} end\"{hashes};\n    let v: Option<{}> = None;\n",
            BANNED[which], BANNED[which]
        );
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        prop_assert_eq!(
            findings.len(), 1,
            "exactly the code-position name fires: {:?}\nsource:\n{}", findings, src
        );
        prop_assert_eq!(findings[0].line, 3);
    }

    /// `allow-file(...)` covers the whole file from any position: every
    /// finding of the granted rule is justified no matter where the
    /// annotation sits relative to the violations.
    #[test]
    fn allow_file_placement_is_position_independent(
        violations in prop::collection::vec(0usize..4, 1..6),
        at in 0usize..6,
    ) {
        let rule_of = ["hash-container", "hash-container", "wall-clock", "ambient-rng"];
        let mut lines: Vec<String> = violations
            .iter()
            .enumerate()
            .map(|(i, &w)| live_fragment(BANNED[w], i))
            .collect();
        // Grant every rule the chosen violations need, in one annotation
        // inserted at an arbitrary slot.
        let mut rules: Vec<&str> = violations.iter().map(|&w| rule_of[w]).collect();
        rules.sort_unstable();
        rules.dedup();
        let annotation = format!(
            "    // rvs-lint: allow-file({}) -- generated placement fixture\n",
            rules.join(", ")
        );
        lines.insert(at.min(lines.len()), annotation);
        let src = doc(&lines.concat());
        let findings = check_source("crates/core/src/generated.rs", &src);
        prop_assert_eq!(
            findings.len(), violations.len(),
            "one finding per violation: {:?}\nsource:\n{}", findings, src
        );
        prop_assert!(
            findings.iter().all(|f| f.justification.is_some()),
            "allow-file at slot {} must cover everything: {:?}\nsource:\n{}", at, findings, src
        );
    }
}
