//! Property tests for the lexer-backed rule engine: banned names placed
//! in *non-code* positions (string literals, line/block/nested comments,
//! raw strings with arbitrary `#` fences) must never produce findings,
//! while the same names in code positions always do — across randomly
//! generated interleavings of both.
//!
//! The compat `proptest` has no string strategies, so documents are built
//! by mapping generated small integers onto fragment alphabets.

use proptest::prelude::*;
use rvs_lint::check_source;

/// Banned names drawn from every determinism rule family.
const BANNED: &[&str] = &["HashMap", "HashSet", "SystemTime", "thread_rng"];

/// Render one *inert* fragment: the banned name appears only inside a
/// string/comment/raw-string where the lexer must swallow it.
fn inert_fragment(kind: u8, banned: &str, label: usize) -> String {
    match kind % 7 {
        0 => format!("    let s{label} = \"{banned} inside a string\";\n"),
        1 => format!("    // {banned} inside a line comment\n"),
        2 => format!("    /* {banned} inside a block comment */\n"),
        3 => format!("    /* outer /* nested {banned} */ tail */\n"),
        4 => format!("    let r{label} = r#\"{banned} with a \" quote\"#;\n"),
        5 => format!("    let r{label} = r##\"fence: \"# not the end {banned}\"##;\n"),
        _ => format!("    let e{label} = \"esc \\\" {banned} \\\\\";\n"),
    }
}

/// Render one *live* fragment: the banned name as a real code token.
fn live_fragment(banned: &str, label: usize) -> String {
    format!("    let v{label}: Option<{banned}> = None;\n")
}

fn doc(body: &str) -> String {
    format!("fn generated() {{\n{body}}}\n")
}

proptest! {
    /// Any interleaving of inert fragments lints clean.
    #[test]
    fn inert_fragments_never_fire(
        kinds in prop::collection::vec((0u8..7, 0usize..4), 1..12)
    ) {
        let mut body = String::new();
        for (i, &(kind, which)) in kinds.iter().enumerate() {
            body.push_str(&inert_fragment(kind, BANNED[which], i));
        }
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        prop_assert!(
            findings.is_empty(),
            "inert document produced findings: {findings:?}\nsource:\n{src}"
        );
    }

    /// Sprinkling live violations among inert fragments fires exactly one
    /// finding per live fragment, each on the right line.
    #[test]
    fn live_fragments_always_fire(
        fragments in prop::collection::vec((0u8..8, 0usize..4), 1..12)
    ) {
        let mut body = String::new();
        let mut expect_lines = Vec::new();
        for (i, &(kind, which)) in fragments.iter().enumerate() {
            // kind 7 = live; 0..7 = the inert alphabet.
            if kind == 7 {
                // Line numbers are 1-based and the doc wrapper adds one line.
                expect_lines.push((i + 2) as u32);
                body.push_str(&live_fragment(BANNED[which], i));
            } else {
                body.push_str(&inert_fragment(kind, BANNED[which], i));
            }
        }
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        let got: Vec<u32> = findings.iter().map(|f| f.line).collect();
        prop_assert_eq!(
            got, expect_lines,
            "live fragments must fire once each, in order\nsource:\n{}", src
        );
    }

    /// An allow annotation with a justification suppresses exactly the
    /// next line, whatever inert noise surrounds it.
    #[test]
    fn annotation_suppresses_exactly_next_line(
        prefix in prop::collection::vec((0u8..7, 0usize..4), 0..5),
        which in 0usize..4,
    ) {
        let mut body = String::new();
        for (i, &(kind, w)) in prefix.iter().enumerate() {
            body.push_str(&inert_fragment(kind, BANNED[w], i));
        }
        body.push_str("    // rvs-lint: allow(hash-container, wall-clock, ambient-rng) -- generated fixture\n");
        body.push_str(&live_fragment(BANNED[which], 99));
        let src = doc(&body);
        let findings = check_source("crates/core/src/generated.rs", &src);
        prop_assert!(
            findings.iter().all(|f| f.justification.is_some()),
            "annotated violation must be justified: {findings:?}\nsource:\n{src}"
        );
    }
}
