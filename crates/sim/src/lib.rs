//! Deterministic discrete-event simulation (DES) foundation for the
//! robust-vote-sampling workspace.
//!
//! The paper evaluates its protocols with a piece-level BitTorrent simulator
//! driven by seven-day peer traces. Everything above this crate (swarm
//! simulation, gossip protocols, attacks) is expressed as events scheduled on
//! the [`Engine`] defined here.
//!
//! Design goals:
//!
//! * **Determinism** — identical seeds produce identical runs. The event
//!   queue breaks timestamp ties with a monotone sequence number, and all
//!   randomness flows through [`rng::DetRng`], a self-contained
//!   xoshiro256\*\* generator that also implements [`rand::RngCore`].
//! * **Zero hidden global state** — the engine is a plain value; simulations
//!   can be forked, nested, and run in parallel threads.
//! * **Speed** — a 7-day, 100-peer trace with piece-level swarms runs in
//!   milliseconds, so 10-run averages and parameter sweeps stay interactive.

pub mod engine;
pub mod event;
pub mod id;
pub mod pool;
pub mod rng;
pub mod time;

pub use engine::Engine;
pub use event::EventQueue;
pub use id::{ModeratorId, NodeId, SwarmId};
pub use pool::Pool;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
