//! The simulation engine: clock + event queue + driver loops.
//!
//! The engine is deliberately passive — it owns the clock and the queue but
//! not the simulated world. Handlers receive `&mut Engine` so they can
//! schedule follow-up events while the caller retains ownership of world
//! state, avoiding any `RefCell`/aliasing gymnastics:
//!
//! ```
//! use rvs_sim::{Engine, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, Ev::Tick);
//! let mut ticks = 0u32;
//! engine.run_until(SimTime::from_secs(10), |eng, _t, Ev::Tick| {
//!     ticks += 1;
//!     eng.schedule_in(SimDuration::from_secs(1), Ev::Tick);
//! });
//! assert_eq!(ticks, 10); // fires at 0s..9s; the 10s event is past the horizon
//! ```

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation engine over an application event type `E`.
#[derive(Debug, Clone)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine with the clock at zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at absolute time `t`.
    ///
    /// # Panics
    /// Panics when `t` is in the past — scheduling backwards would silently
    /// corrupt causality.
    pub fn schedule_at(&mut self, t: SimTime, event: E) {
        assert!(
            t >= self.now,
            "cannot schedule event at {t} before current time {}",
            self.now
        );
        self.queue.push(t, event);
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let t = self.now.saturating_add(delay);
        self.queue.push(t, event);
    }

    /// Pop the next event if it fires strictly before `horizon`, advancing
    /// the clock to its timestamp. Returns `None` when the queue is empty or
    /// the next event lies at/after the horizon (the clock then advances to
    /// the horizon).
    pub fn next_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if matches!(self.queue.peek_time(), Some(t) if t < horizon) {
            if let Some((t, e)) = self.queue.pop() {
                self.now = t;
                self.processed += 1;
                return Some((t, e));
            }
        }
        if horizon > self.now && horizon != SimTime::MAX {
            self.now = horizon;
        }
        None
    }

    /// Run the event loop until `horizon` (exclusive), calling `handler` for
    /// every fired event. The handler may schedule further events.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while let Some((t, e)) = self.next_before(horizon) {
            handler(self, t, e);
        }
    }

    /// Run until the queue drains completely.
    pub fn run_to_completion<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while let Some((t, e)) = self.next_before(SimTime::MAX) {
            handler(self, t, e);
        }
    }

    /// Discard all pending events (e.g. when tearing a run down early).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

/// Stable binary encoding: clock, processed count, then the queue. Restore
/// rebuilds the engine directly (bypassing [`Engine::schedule_at`]'s
/// past-time assertion, which restored queues trivially satisfy anyway).
impl<E: rvs_checkpoint::Persist> rvs_checkpoint::Persist for Engine<E> {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.now.persist(enc);
        enc.u64(self.processed);
        self.queue.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let now = SimTime::restore(dec)?;
        let processed = dec.u64()?;
        let queue = EventQueue::restore(dec)?;
        Ok(Engine {
            now,
            queue,
            processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), Ev::Ping(1));
        eng.schedule_at(SimTime::from_secs(2), Ev::Ping(0));
        let (t, e) = eng.next_before(SimTime::MAX).unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(e, Ev::Ping(0));
        assert_eq!(eng.now(), SimTime::from_secs(2));
        let (t, _) = eng.next_before(SimTime::MAX).unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(eng.processed(), 2);
    }

    #[test]
    fn horizon_is_exclusive_and_advances_clock() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(10), Ev::Stop);
        assert!(eng.next_before(SimTime::from_secs(10)).is_none());
        assert_eq!(eng.now(), SimTime::from_secs(10));
        // The event is still pending and fires once the horizon moves on.
        assert!(eng.next_before(SimTime::from_secs(11)).is_some());
    }

    #[test]
    fn handler_can_reschedule() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Ping(0));
        let mut count = 0;
        eng.run_until(SimTime::from_secs(100), |eng, _t, e| {
            if let Ev::Ping(n) = e {
                count += 1;
                if n < 4 {
                    eng.schedule_in(SimDuration::from_secs(10), Ev::Ping(n + 1));
                }
            }
        });
        assert_eq!(count, 5);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), Ev::Stop);
        eng.next_before(SimTime::MAX);
        eng.schedule_at(SimTime::from_secs(1), Ev::Stop);
    }

    #[test]
    fn run_to_completion_drains() {
        let mut eng: Engine<Ev> = Engine::new();
        for i in 0..10 {
            eng.schedule_at(SimTime::from_secs(i), Ev::Ping(i as u32));
        }
        let mut seen = Vec::new();
        eng.run_to_completion(|_, _, e| {
            if let Ev::Ping(n) = e {
                seen.push(n)
            }
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(eng.pending() == 0);
    }

    #[test]
    fn clear_discards_pending() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Stop);
        eng.clear();
        assert!(eng.next_before(SimTime::MAX).is_none());
    }

    #[test]
    fn doc_example_tick_count() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime::ZERO, ());
        let mut ticks = 0u32;
        engine.run_until(SimTime::from_secs(10), |eng, _t, ()| {
            ticks += 1;
            eng.schedule_in(SimDuration::from_secs(1), ());
        });
        assert_eq!(ticks, 10);
    }
}
