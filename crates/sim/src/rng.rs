//! Deterministic random number generation.
//!
//! [`DetRng`] is a self-contained xoshiro256\*\* generator seeded through
//! SplitMix64. We implement the generator ourselves (rather than relying on
//! `rand::StdRng`) so that simulation results are reproducible across `rand`
//! versions; [`rand::RngCore`] is implemented on top so the `rand`
//! distribution ecosystem still interoperates.
//!
//! Streams can be [`fork`](DetRng::fork)ed: each (experiment, trace, run,
//! subsystem) tuple derives its own independent stream, so adding randomness
//! to one subsystem never perturbs another — a property the regression tests
//! rely on.

use rand::RngCore;

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) yields
    /// a well-mixed state via SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derive an independent stream for a named subsystem. The same
    /// `(parent seed, label)` pair always yields the same stream.
    pub fn fork(&self, label: u64) -> DetRng {
        // Mix the current state with the label through SplitMix64 so forked
        // streams do not overlap with the parent sequence.
        let mut sm = self
            .s
            .iter()
            .fold(label ^ 0xA076_1D64_78BD_642F, |acc, &w| {
                acc.rotate_left(23) ^ w.wrapping_mul(0xE703_7ED1_A0B4_28DB)
            });
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit value (xoshiro256\*\* output function).
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's multiply-shift
    /// rejection method; unbiased. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below called with bound 0");
        // Lemire 2019: unbiased bounded integers without division in the
        // common case.
        let mut x = self.next_u64_raw();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64_raw();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Panics when the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "DetRng::range_u64 called with empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "DetRng::pick on empty slice");
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (uniform without
    /// replacement, order random). If `k >= n` returns all indices shuffled.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        let k = k.min(n);
        // Partial Fisher–Yates: after k swaps the first k entries are a
        // uniform sample.
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Exponentially distributed value with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Pareto(Lomax)-distributed value with scale `x_min` and shape `alpha`.
    /// Heavy-tailed; used for session lengths and file sizes in the trace
    /// generator.
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.next_f64()).powf(1.0 / alpha)
    }

    /// Log-normal-ish positive jitter: multiply `base` by a factor uniform
    /// in `[1-spread, 1+spread]`.
    #[inline]
    pub fn jitter(&mut self, base: f64, spread: f64) -> f64 {
        base * (1.0 + spread * (2.0 * self.next_f64() - 1.0))
    }
}

/// Stable binary encoding: the four xoshiro256\*\* state words in order.
/// Restoring resumes the stream at exactly the next draw.
impl rvs_checkpoint::Persist for DetRng {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        for w in &self.s {
            enc.u64(*w);
        }
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let s = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        Ok(DetRng { s })
    }
}

impl RngCore for DetRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64_raw()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64_raw()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_stable_and_independent() {
        let parent = DetRng::new(7);
        let mut f1 = parent.fork(1);
        let mut f1b = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_eq!(f1.next_u64_raw(), f1b.next_u64_raw());
        assert_ne!(f1.next_u64_raw(), f2.next_u64_raw());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = DetRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(11);
        let n = 100_000;
        let k = 7u64;
        let mut counts = vec![0usize; k as usize];
        for _ in 0..n {
            counts[r.below(k) as usize] += 1;
        }
        let expected = n as f64 / k as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "bucket count {c} too far from expectation {expected}"
            );
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::new(5);
        for _ in 0..1_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).range_u64(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_mid_probability_is_calibrated() {
        let mut r = DetRng::new(13);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 - 30_000.0).abs() < 1_500.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = DetRng::new(33);
        for _ in 0..100 {
            let s = r.sample_indices(20, 8);
            assert_eq!(s.len(), 8);
            let mut u = s.clone();
            u.sort_unstable();
            u.dedup();
            assert_eq!(u.len(), 8, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_oversample_returns_all() {
        let mut r = DetRng::new(34);
        let mut s = r.sample_indices(5, 99);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = DetRng::new(55);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "sample mean {mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = DetRng::new(77);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = DetRng::new(4);
        let mut b = DetRng::new(4);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    fn jitter_stays_within_spread() {
        let mut r = DetRng::new(6);
        for _ in 0..1_000 {
            let v = r.jitter(100.0, 0.25);
            assert!((75.0..=125.0).contains(&v));
        }
    }
}
