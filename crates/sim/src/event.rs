//! The deterministic event queue.
//!
//! A binary min-heap keyed by `(time, sequence)`. The sequence number makes
//! pop order total even when many events share a timestamp — essential for
//! reproducibility because gossip rounds frequently collide on the clock.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its scheduled firing time and insertion sequence.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of timed events.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Pre-allocate capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`. Events scheduled at equal times
    /// fire in insertion order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Stable binary encoding. A `BinaryHeap`'s internal arrangement depends on
/// its operation history, so the canonical form is the entry list sorted by
/// `(time, seq)` — the exact pop order — plus `next_seq`. Sequence numbers
/// are preserved verbatim so timestamp ties keep firing in their original
/// insertion order after restore.
impl<E: rvs_checkpoint::Persist> rvs_checkpoint::Persist for EventQueue<E> {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.next_seq);
        let mut entries: Vec<&Scheduled<E>> = self.heap.iter().collect();
        entries.sort_by_key(|s| (s.time, s.seq));
        enc.usize(entries.len());
        for s in entries {
            s.time.persist(enc);
            enc.u64(s.seq);
            s.event.persist(enc);
        }
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let next_seq = dec.u64()?;
        let len = dec.seq_len()?;
        let mut heap = BinaryHeap::with_capacity(len);
        for _ in 0..len {
            let time = SimTime::restore(dec)?;
            let seq = dec.u64()?;
            let event = E::restore(dec)?;
            heap.push(Scheduled { time, seq, event });
        }
        Ok(EventQueue { heap, next_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(5), 5);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
