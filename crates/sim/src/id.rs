//! Identifier newtypes shared across the workspace.
//!
//! In the deployed Tribler system every peer holds a non-spoofable public-key
//! identity. In the simulation we model identities as dense `u32` indices;
//! the [`crate::rng::DetRng`]-driven signature layer in `rvs-modcast` binds
//! message authorship to these IDs.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                Self(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        /// Stable binary encoding: the raw `u32` index.
        impl rvs_checkpoint::Persist for $name {
            fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
                enc.u32(self.0);
            }

            fn restore(
                dec: &mut rvs_checkpoint::Decoder<'_>,
            ) -> Result<Self, rvs_checkpoint::DecodeError> {
                Ok(Self(dec.u32()?))
            }
        }
    };
}

id_newtype!(
    /// A peer node in the population. Nodes are numbered densely from zero in
    /// trace order (the paper's moderators M1, M2, M3 are the first three
    /// nodes to enter the system).
    NodeId,
    "n"
);

id_newtype!(
    /// A swarm (one shared file / .torrent).
    SwarmId,
    "s"
);

/// A moderator is simply a peer that has published moderations; votes are
/// bound to moderators, not to individual metadata items (paper §II).
pub type ModeratorId = NodeId;

#[cfg(test)]
mod tests {
    use super::*;
    // rvs-lint: allow(hash-container) -- this test exists to prove NodeId implements Hash; only set cardinality is asserted, never iteration order
    use std::collections::HashSet;

    #[test]
    fn index_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(NodeId::from(7u32), NodeId(7));
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(SwarmId(9).to_string(), "s9");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        // rvs-lint: allow(hash-container) -- asserts the Hash impl itself; cardinality-only use
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn node_and_swarm_ids_are_distinct_types() {
        // Purely a compile-shape test: both exist independently.
        let _n: NodeId = NodeId(0);
        let _s: SwarmId = SwarmId(0);
    }
}
