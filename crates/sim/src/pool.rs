//! The sanctioned worker pool for deterministic parallel execution.
//!
//! Everything in this workspace that fans out across threads goes through
//! this module — the lint gate's ambient-thread rule whitelists exactly this
//! file. Two primitives are exposed:
//!
//! * [`Pool::scatter`] — run a batch of jobs and return their results **in
//!   job order**, regardless of which worker finished first. With one
//!   thread the jobs run inline on the caller's thread, in index order, so
//!   the serial engine and the parallel engine share a single code path and
//!   byte-identical results are a structural property, not an accident.
//! * [`merge_canonical`] — fold per-shard, key-ordered result streams into
//!   one stream sorted by a canonical key (the round engine uses
//!   `(round, sender, seq)`), independent of how items were sharded.
//!
//! Determinism contract: a job may only touch state it owns (moved in) plus
//! shared read-only context. All cross-shard effects must be returned as
//! data and applied by the caller in canonical order. The differential
//! harness in `tests/parallel_differential.rs` proves the contract holds
//! for the full protocol stack.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
///
/// `Pool::new(1)` spawns no threads at all: `scatter` then runs jobs inline,
/// which is both the fallback for single-core hosts and the reference
/// execution the differential tests compare against.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    tx: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Create a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        if threads == 1 {
            return Pool {
                threads,
                tx: None,
                workers: Vec::new(),
            };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Dequeueing is serialized by the mutex; execution is
                    // not — the guard is dropped before the job runs.
                    let job = {
                        let guard = match rx.lock() {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                })
            })
            .collect();
        Pool {
            threads,
            tx: Some(tx),
            workers,
        }
    }

    /// The worker count this pool was built with (minimum 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every job and return the results in job-submission order.
    ///
    /// Workers pick jobs up in submission order but may finish in any
    /// order; results are re-sequenced by index before returning, so the
    /// output is identical to running the jobs serially — provided each
    /// job is a pure function of what it captured.
    pub fn scatter<R: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let n = jobs.len();
        let Some(tx) = &self.tx else {
            return jobs.into_iter().map(|job| job()).collect();
        };
        let (result_tx, result_rx) = channel::<(usize, R)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            let wrapped: Job = Box::new(move || {
                // A send error means the collector already gave up; the
                // result is dropped and the gap is reported below.
                let _ = result_tx.send((index, job()));
            });
            if tx.send(wrapped).is_err() {
                break;
            }
        }
        drop(result_tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match result_rx.recv() {
                Ok((index, result)) => slots[index] = Some(result),
                Err(_) => break,
            }
        }
        let missing = slots.iter().filter(|slot| slot.is_none()).count();
        assert!(
            missing == 0,
            "{missing} of {n} pool jobs never returned (a worker died mid-job)"
        );
        slots.into_iter().flatten().collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channel makes every idle worker's recv() fail, which
        // is the shutdown signal.
        self.tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Run `f(0..n)` across at most `max_threads` scoped threads and return the
/// results in index order. This is the fan-out primitive for independent
/// *runs* (parameter sweeps, multi-seed averages); the round engine inside
/// one run uses [`Pool::scatter`] instead.
pub fn run_indexed<T, F>(n: usize, max_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = max_threads.max(1).min(n.max(1));
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = {
                    let mut guard = match next.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    let index = *guard;
                    if index >= n {
                        break;
                    }
                    *guard += 1;
                    index
                };
                let result = f(index);
                let mut slot = match results[index].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(result);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in results {
        let value = match slot.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        };
        out.extend(value);
    }
    assert!(
        out.len() == n,
        "a scoped worker exited without storing its result ({} of {n} present)",
        out.len()
    );
    out
}

/// Merge per-shard result streams into one stream in canonical key order.
///
/// The sort is stable, so for items with *distinct* keys (the round engine
/// keys deliveries by `(round, sender, seq)`, which is unique) the output
/// is fully determined by the key order alone — independent of shard count,
/// shard assignment, and the interleaving in which shards produced items.
/// That invariance is proven by the proptest in `crates/sim/tests`.
pub fn merge_canonical<K: Ord, T>(shards: Vec<Vec<(K, T)>>) -> Vec<(K, T)> {
    let mut out: Vec<(K, T)> = shards.into_iter().flatten().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The thread count selected by the `RVS_THREADS` environment variable
/// (the knob the CI matrix sweeps), defaulting to 1 — the serial engine —
/// when unset or unparsable. Clamped to [1, 64].
pub fn env_threads() -> usize {
    // rvs-lint: allow(ambient-env) -- RVS_THREADS selects the worker count only; thread-count invariance is proven by tests/parallel_differential.rs, so this env read cannot change results
    std::env::var("RVS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.clamp(1, 64))
        .unwrap_or(1)
}

/// The host's available parallelism, for sizing multi-run fan-outs.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed_jobs(n: usize) -> Vec<Box<dyn FnOnce() -> usize + Send + 'static>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send + 'static>)
            .collect()
    }

    #[test]
    fn scatter_returns_results_in_job_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let out = pool.scatter(boxed_jobs(37));
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_thread_pool_spawns_no_workers() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        assert_eq!(pool.scatter(boxed_jobs(3)), vec![0, 1, 4]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = Pool::new(4);
        let out: Vec<usize> = pool.scatter(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = Pool::new(3);
        for round in 0..50 {
            let out = pool.scatter(boxed_jobs(round % 7));
            assert_eq!(out.len(), round % 7);
        }
    }

    #[test]
    fn run_indexed_orders_results() {
        let out = run_indexed(25, 4, |i| i + 100);
        assert_eq!(out, (100..125).collect::<Vec<_>>());
        let serial = run_indexed(25, 1, |i| i + 100);
        assert_eq!(out, serial);
    }

    #[test]
    fn merge_canonical_sorts_by_key() {
        let shards = vec![
            vec![(3u64, "c"), (5, "e")],
            vec![(1, "a"), (4, "d")],
            vec![(2, "b")],
        ];
        let merged = merge_canonical(shards);
        assert_eq!(
            merged,
            vec![(1, "a"), (2, "b"), (3, "c"), (4, "d"), (5, "e")]
        );
    }

    #[test]
    fn env_threads_is_at_least_one() {
        assert!(env_threads() >= 1);
        assert!(available_threads() >= 1);
    }
}
