//! Simulation time: a monotone clock with millisecond resolution.
//!
//! Traces span seven days (604,800,000 ms), so `u64` milliseconds leave ample
//! headroom while keeping arithmetic cheap and exact.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in milliseconds since the start of
/// the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event may be scheduled at `MAX`.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant `ms` milliseconds after the start of the run.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// An instant `s` seconds after the start of the run.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// An instant `m` minutes after the start of the run.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// An instant `h` hours after the start of the run.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// An instant `d` days after the start of the run.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * 86_400_000)
    }

    /// Milliseconds since the start of the run.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the start of the run.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional hours since the start of the run (for plotting).
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// A span of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// A span of `m` minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// A span of `h` hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// A span of `d` days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// The span in milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in whole seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiply the span by an integer factor (saturating).
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Stable binary encoding: the raw millisecond count.
impl rvs_checkpoint::Persist for SimTime {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.0);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SimTime(dec.u64()?))
    }
}

/// Stable binary encoding: the raw millisecond count.
impl rvs_checkpoint::Persist for SimDuration {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.0);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SimDuration(dec.u64()?))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        let h = ms / 3_600_000;
        let m = (ms / 60_000) % 60;
        let s = (ms / 1_000) % 60;
        let rem = ms % 1_000;
        if rem == 0 {
            write!(f, "{h:03}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:03}:{m:02}:{s:02}.{rem:03}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimTime::from_days(7).as_millis(), 604_800_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_hours(3);
        let d = SimDuration::from_mins(90);
        let t2 = t + d;
        assert_eq!(t2 - t, d);
        assert_eq!(t2.since(t), d);
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(5);
        t += SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn hours_f64_is_fractional() {
        let t = SimTime::from_mins(90);
        assert!((t.as_hours_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_millis(u64::MAX)
                .saturating_mul(2)
                .as_millis(),
            u64::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_hours(12).to_string(), "012:00:00");
        assert_eq!(SimTime::from_millis(3_661_500).to_string(), "001:01:01.500");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2000ms");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
