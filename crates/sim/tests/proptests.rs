//! Property-based tests for the DES foundation.

use proptest::prelude::*;
use rand::RngCore;
use rvs_sim::{DetRng, Engine, EventQueue, SimDuration, SimTime};

proptest! {
    /// The queue pops every pushed event exactly once, in (time, insertion)
    /// order.
    #[test]
    fn queue_pops_sorted_and_complete(times in prop::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut popped = Vec::new();
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t > lt || (t == lt && id > lid),
                    "pop order violated: ({lt:?},{lid}) then ({t:?},{id})");
            }
            last = Some((t, id));
            popped.push(id);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// The engine clock never goes backwards and fires every event below
    /// the horizon.
    #[test]
    fn engine_clock_is_monotone(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut eng: Engine<u64> = Engine::new();
        for &t in &times {
            eng.schedule_at(SimTime::from_millis(t), t);
        }
        let horizon = SimTime::from_millis(5_000);
        let mut clock = SimTime::ZERO;
        let mut fired = 0usize;
        eng.run_until(horizon, |eng, t, v| {
            assert!(t >= clock);
            assert_eq!(t, SimTime::from_millis(v));
            assert_eq!(eng.now(), t);
            clock = t;
            fired += 1;
        });
        let expected = times.iter().filter(|&&t| t < 5_000).count();
        prop_assert_eq!(fired, expected);
        prop_assert_eq!(eng.now(), horizon);
    }

    /// Time arithmetic: (t + d) - t == d for any base and delta.
    #[test]
    fn time_add_sub_roundtrip(base in 0u64..u32::MAX as u64, delta in 0u64..u32::MAX as u64) {
        let t = SimTime::from_millis(base);
        let d = SimDuration::from_millis(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_add(d).since(t), d);
    }

    /// DetRng::below is always within bounds and different forks are
    /// independent of draw interleaving.
    #[test]
    fn rng_bounds_and_fork_stability(seed: u64, bound in 1u64..1_000, label: u64) {
        let mut r = DetRng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
        // A fork taken before and after draws must produce the same stream
        // only if taken from the same state: fork depends on parent state.
        let parent = DetRng::new(seed);
        let mut f1 = parent.fork(label);
        let mut f2 = parent.fork(label);
        for _ in 0..10 {
            prop_assert_eq!(f1.next_u64_raw(), f2.next_u64_raw());
        }
    }

    /// fill_bytes and next_u64 describe the same stream (little-endian).
    #[test]
    fn rng_fill_bytes_consistent(seed: u64) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let w1 = b.next_u64();
        let w2 = b.next_u64();
        prop_assert_eq!(&buf[..8], &w1.to_le_bytes());
        prop_assert_eq!(&buf[8..], &w2.to_le_bytes());
    }

    /// sample_indices is always a set of in-range, distinct indices of the
    /// requested size.
    #[test]
    fn rng_sample_indices_is_a_sample(seed: u64, n in 0usize..200, k in 0usize..250) {
        let mut r = DetRng::new(seed);
        let s = r.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }
}
