//! Property tests for the canonical cross-shard merge.
//!
//! The round engine buffers cross-shard deliveries per round and merges
//! them in `(round, sender, seq)` order. For the engine to be
//! thread-count invariant this merge must be a pure function of the
//! delivery *set*: no shard assignment, shard count, or within-shard
//! interleaving may leak into the merged order.

use proptest::prelude::*;
use rvs_sim::pool::merge_canonical;
use std::collections::BTreeSet;

/// A delivery key as the engine uses it: round, sender, per-sender seq.
type Key = (u32, u32, u32);

/// Distinct delivery keys with a payload tied to the key, so reorderings
/// are detectable in the merged payload sequence.
fn keyed_deliveries() -> impl Strategy<Value = Vec<(Key, u64)>> {
    proptest::collection::vec((0u32..8, 0u32..64, 0u32..4), 0..120).prop_map(|v| {
        let set: BTreeSet<Key> = v.into_iter().collect();
        set.into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect()
    })
}

/// Deal `items` into `shards` buckets according to `assign`, then rotate
/// each bucket by `rot` to simulate an arbitrary within-shard completion
/// order.
fn shard(
    items: &[(Key, u64)],
    shards: usize,
    assign: &[usize],
    rot: usize,
) -> Vec<Vec<(Key, u64)>> {
    let mut out = vec![Vec::new(); shards];
    for (i, item) in items.iter().enumerate() {
        out[assign[i % assign.len()] % shards].push(*item);
    }
    for bucket in &mut out {
        if !bucket.is_empty() {
            let r = rot % bucket.len();
            bucket.rotate_left(r);
        }
    }
    out
}

proptest! {
    /// Merged order equals the globally key-sorted order, for every shard
    /// count, assignment, and within-shard rotation.
    #[test]
    fn merge_is_independent_of_sharding(
        items in keyed_deliveries(),
        shards in 1usize..9,
        assign in proptest::collection::vec(0usize..8, 1..32),
        rot in 0usize..16,
    ) {
        let mut expect = items.clone();
        expect.sort_by_key(|a| a.0);
        let merged = merge_canonical(shard(&items, shards, &assign, rot));
        prop_assert_eq!(merged, expect);
    }

    /// Two different shardings of the same delivery set merge identically
    /// — the pairwise restatement of thread-count invariance.
    #[test]
    fn any_two_shardings_agree(
        items in keyed_deliveries(),
        a in (1usize..9, proptest::collection::vec(0usize..8, 1..32), 0usize..16),
        b in (1usize..9, proptest::collection::vec(0usize..8, 1..32), 0usize..16),
    ) {
        let ma = merge_canonical(shard(&items, a.0, &a.1, a.2));
        let mb = merge_canonical(shard(&items, b.0, &b.1, b.2));
        prop_assert_eq!(ma, mb);
    }

    /// The merge neither drops nor invents deliveries.
    #[test]
    fn merge_is_a_permutation(
        items in keyed_deliveries(),
        shards in 1usize..9,
        assign in proptest::collection::vec(0usize..8, 1..32),
    ) {
        let merged = merge_canonical(shard(&items, shards, &assign, 0));
        let got: BTreeSet<_> = merged.into_iter().collect();
        let want: BTreeSet<_> = items.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}

/// Equal keys (duplicate deliveries surviving to the merge) keep shard
/// order — ascending, because shards are dealt in ascending entity order —
/// so even the degenerate case is deterministic.
#[test]
fn equal_keys_merge_in_shard_order() {
    let k: Key = (1, 1, 0);
    let shards = vec![vec![(k, 10u64)], vec![(k, 20u64)], vec![(k, 30u64)]];
    let merged = merge_canonical(shards);
    assert_eq!(merged, vec![(k, 10), (k, 20), (k, 30)]);
}
