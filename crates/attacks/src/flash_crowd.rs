//! The collusive flash-crowd attack (paper §VI-C, Figures 7 and 8).
//!
//! "a flash crowd of new nodes promoting a spam moderator. Such a flash
//! crowd could be comprised of colluding nodes or the result of a Sybil
//! attack." Crowd members:
//!
//! * vote `+` for the spam moderator `M0` (and optionally `−` against the
//!   honest top moderator) — these votes only land in ballot boxes of
//!   nodes whose experience function accepts the sender, so the
//!   experienced core ignores them;
//! * answer every VoxPopuli request with a fabricated top-K list putting
//!   `M0` first, regardless of their own (empty) ballot boxes — this is
//!   what poisons *bootstrapping* nodes, which cannot tell core nodes from
//!   other newcomers.

use rvs_core::{TopKList, Vote, VoteEntry};
use rvs_sim::{ModeratorId, NodeId, SimTime};
use std::collections::BTreeSet;

/// A coordinated crowd promoting one spam moderator.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    members: BTreeSet<NodeId>,
    spam_moderator: ModeratorId,
    /// Honest moderator the crowd additionally votes down, if any.
    demote: Option<ModeratorId>,
    /// When the crowd joined the system.
    pub joined_at: SimTime,
}

impl FlashCrowd {
    /// A crowd of `members` promoting `spam_moderator`.
    pub fn new(
        members: impl IntoIterator<Item = NodeId>,
        spam_moderator: ModeratorId,
        demote: Option<ModeratorId>,
        joined_at: SimTime,
    ) -> Self {
        let members: BTreeSet<NodeId> = members.into_iter().collect();
        assert!(!members.is_empty(), "a flash crowd needs members");
        FlashCrowd {
            members,
            spam_moderator,
            demote,
            joined_at,
        }
    }

    /// Number of colluding identities.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The promoted spam moderator.
    pub fn spam_moderator(&self) -> ModeratorId {
        self.spam_moderator
    }

    /// Is `node` part of the crowd?
    pub fn is_member(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Members in ascending order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// The vote list a crowd member sends during BallotBox exchanges:
    /// `+M0` (and `−honest` when configured). Timestamps are the join
    /// time — fresh identities cannot plausibly claim older votes.
    pub fn vote_list(&self) -> Vec<VoteEntry> {
        let mut list = vec![VoteEntry {
            moderator: self.spam_moderator,
            vote: Vote::Positive,
            made_at: self.joined_at,
        }];
        if let Some(target) = self.demote {
            list.push(VoteEntry {
                moderator: target,
                vote: Vote::Negative,
                made_at: self.joined_at,
            });
        }
        list
    }

    /// The fabricated VoxPopuli response: `M0` on top, optionally padded
    /// with `decoys` (plausible-looking honest moderators) to mimic a
    /// legitimate list.
    pub fn topk_response(&self, decoys: &[ModeratorId], k: usize) -> TopKList {
        let mut ranked = vec![self.spam_moderator];
        ranked.extend(
            decoys
                .iter()
                .copied()
                .filter(|&m| m != self.spam_moderator)
                .take(k.saturating_sub(1)),
        );
        TopKList { ranked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crowd() -> FlashCrowd {
        FlashCrowd::new(
            (10..15).map(NodeId),
            NodeId(0),
            Some(NodeId(1)),
            SimTime::from_hours(24),
        )
    }

    #[test]
    fn membership_and_size() {
        let c = crowd();
        assert_eq!(c.size(), 5);
        assert!(c.is_member(NodeId(12)));
        assert!(!c.is_member(NodeId(1)));
        assert_eq!(c.members().count(), 5);
    }

    #[test]
    fn vote_list_promotes_and_demotes() {
        let c = crowd();
        let list = c.vote_list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].moderator, NodeId(0));
        assert_eq!(list[0].vote, Vote::Positive);
        assert_eq!(list[1].moderator, NodeId(1));
        assert_eq!(list[1].vote, Vote::Negative);
        assert!(list.iter().all(|e| e.made_at == SimTime::from_hours(24)));
    }

    #[test]
    fn vote_list_without_demotion_target() {
        let c = FlashCrowd::new([NodeId(9)], NodeId(0), None, SimTime::ZERO);
        assert_eq!(c.vote_list().len(), 1);
    }

    #[test]
    fn fabricated_topk_puts_spam_first() {
        let c = crowd();
        let topk = c.topk_response(&[NodeId(1), NodeId(2), NodeId(3)], 3);
        assert_eq!(topk.top(), Some(NodeId(0)));
        assert_eq!(topk.len(), 3);
    }

    #[test]
    fn decoys_never_duplicate_spam() {
        let c = crowd();
        let topk = c.topk_response(&[NodeId(0), NodeId(2)], 3);
        assert_eq!(topk.ranked, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "needs members")]
    fn empty_crowd_rejected() {
        FlashCrowd::new(std::iter::empty(), NodeId(0), None, SimTime::ZERO);
    }
}
