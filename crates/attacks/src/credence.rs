//! A Credence-style correlation baseline (paper §VIII, Walsh & Sirer).
//!
//! Credence attaches votes to *objects* (files), and a peer `X` weighs
//! peer `Y`'s votes by the correlation of their voting histories over
//! co-voted objects. The paper's critique: "users who don't vote, or do so
//! only minimally, have no way of distinguishing between honest and
//! malicious voters … nearly fifty percent of clients are isolated", while
//! vote sampling "works for all peers, regardless of their voting habits".
//!
//! This module implements the pairwise-correlation core of that scheme so
//! the `ablation_credence` experiment can quantify the isolation effect as
//! a function of voting participation and contrast it with BallotBox
//! (where even a never-voting node ranks moderators from sampled votes).

use rvs_sim::{DetRng, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A vote on an object: genuine (+1) or spam (−1).
pub type ObjectVote = i8;

/// The voting histories of a Credence population: `peer → object → ±1`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VoteHistories {
    votes: BTreeMap<NodeId, BTreeMap<u32, ObjectVote>>,
}

impl VoteHistories {
    /// Empty histories.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `peer`'s vote on `object`.
    pub fn record(&mut self, peer: NodeId, object: u32, vote: ObjectVote) {
        assert!(vote == 1 || vote == -1, "votes are ±1");
        self.votes.entry(peer).or_default().insert(object, vote);
    }

    /// Number of objects `peer` voted on.
    pub fn vote_count(&self, peer: NodeId) -> usize {
        self.votes.get(&peer).map(|m| m.len()).unwrap_or(0)
    }

    /// Pairwise correlation of two voting histories over co-voted objects:
    /// mean product of votes (`+1` full agreement, `−1` full disagreement).
    /// `None` when fewer than `min_overlap` objects were co-voted —
    /// Credence cannot relate the peers at all.
    pub fn correlation(&self, a: NodeId, b: NodeId, min_overlap: usize) -> Option<f64> {
        let va = self.votes.get(&a)?;
        let vb = self.votes.get(&b)?;
        let mut products = 0i64;
        let mut overlap = 0usize;
        // Iterate the smaller map for efficiency.
        let (small, large) = if va.len() <= vb.len() {
            (va, vb)
        } else {
            (vb, va)
        };
        for (obj, &v1) in small {
            if let Some(&v2) = large.get(obj) {
                products += (v1 as i64) * (v2 as i64);
                overlap += 1;
            }
        }
        if overlap < min_overlap.max(1) {
            None
        } else {
            Some(products as f64 / overlap as f64)
        }
    }

    /// Is `peer` *isolated*: unable to establish a correlation with any
    /// other peer in the population?
    pub fn is_isolated(&self, peer: NodeId, min_overlap: usize) -> bool {
        self.votes
            .keys()
            .filter(|&&other| other != peer)
            .all(|&other| self.correlation(peer, other, min_overlap).is_none())
    }

    /// Classify `judge`'s view of `subject` from correlation: positive ⇒
    /// trusted, negative ⇒ distrusted, `None` ⇒ cannot tell.
    pub fn classify(&self, judge: NodeId, subject: NodeId, min_overlap: usize) -> Option<bool> {
        self.correlation(judge, subject, min_overlap)
            .map(|c| c > 0.0)
    }
}

/// Outcome of one Credence population simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CredenceOutcome {
    /// Fraction of peers voting at all.
    pub participation: f64,
    /// Fraction of peers isolated (no correlations at all).
    pub isolated_fraction: f64,
    /// Among non-isolated honest peers: fraction of their classifications
    /// of malicious voters that are correct (distrust).
    pub malicious_detection: f64,
}

/// Simulate a Credence population: `n` peers, `objects` rated objects of
/// which a fraction are spam, `participation` of peers vote (on
/// `votes_per_voter` random objects each), `malicious_fraction` voters
/// vote inversely to promote spam, and honest voters err (flip their
/// vote) with probability `honest_error`.
#[allow(clippy::too_many_arguments)] // an experiment entry point: each knob is a sweep axis
pub fn simulate_credence(
    n: usize,
    objects: u32,
    spam_fraction: f64,
    participation: f64,
    votes_per_voter: usize,
    malicious_fraction: f64,
    honest_error: f64,
    min_overlap: usize,
    rng: &mut DetRng,
) -> (VoteHistories, CredenceOutcome) {
    let is_spam: Vec<bool> = (0..objects).map(|_| rng.chance(spam_fraction)).collect();
    let n_voters = ((n as f64) * participation).round() as usize;
    let voters = rng.sample_indices(n, n_voters);
    let n_malicious = ((n_voters as f64) * malicious_fraction).round() as usize;
    let mut histories = VoteHistories::new();
    let mut malicious = Vec::new();
    for (k, &v) in voters.iter().enumerate() {
        let peer = NodeId::from_index(v);
        let evil = k < n_malicious;
        if evil {
            malicious.push(peer);
        }
        for obj_idx in rng.sample_indices(objects as usize, votes_per_voter) {
            let truth: ObjectVote = if is_spam[obj_idx] { -1 } else { 1 };
            let mut vote = if evil { -truth } else { truth };
            if !evil && rng.chance(honest_error) {
                vote = -vote; // honest misjudgement
            }
            histories.record(peer, obj_idx as u32, vote);
        }
    }

    // Measure isolation over the whole population (non-voters are isolated
    // by definition: they have no history to correlate).
    let isolated = (0..n)
        .map(NodeId::from_index)
        .filter(|&p| histories.vote_count(p) == 0 || histories.is_isolated(p, min_overlap))
        .count();

    // Honest voters judging malicious voters.
    let honest: Vec<NodeId> = voters
        .iter()
        .enumerate()
        .filter(|&(k, _)| k >= n_malicious)
        .map(|(_, &v)| NodeId::from_index(v))
        .collect();
    let mut judged = 0usize;
    let mut correct = 0usize;
    for &h in &honest {
        for &m in &malicious {
            if let Some(trusted) = histories.classify(h, m, min_overlap) {
                judged += 1;
                if !trusted {
                    correct += 1;
                }
            }
        }
    }
    let outcome = CredenceOutcome {
        participation,
        isolated_fraction: isolated as f64 / n as f64,
        malicious_detection: if judged == 0 {
            0.0
        } else {
            correct as f64 / judged as f64
        },
    };
    (histories, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_of_identical_histories_is_one() {
        let mut h = VoteHistories::new();
        for o in 0..10 {
            h.record(NodeId(1), o, 1);
            h.record(NodeId(2), o, 1);
        }
        assert_eq!(h.correlation(NodeId(1), NodeId(2), 3), Some(1.0));
        assert_eq!(h.classify(NodeId(1), NodeId(2), 3), Some(true));
    }

    #[test]
    fn correlation_of_opposed_histories_is_minus_one() {
        let mut h = VoteHistories::new();
        for o in 0..10 {
            h.record(NodeId(1), o, 1);
            h.record(NodeId(2), o, -1);
        }
        assert_eq!(h.correlation(NodeId(1), NodeId(2), 3), Some(-1.0));
        assert_eq!(h.classify(NodeId(1), NodeId(2), 3), Some(false));
    }

    #[test]
    fn insufficient_overlap_means_no_relation() {
        let mut h = VoteHistories::new();
        h.record(NodeId(1), 0, 1);
        h.record(NodeId(2), 0, 1);
        assert_eq!(h.correlation(NodeId(1), NodeId(2), 2), None);
        // Disjoint votes: no overlap at all.
        let mut h2 = VoteHistories::new();
        h2.record(NodeId(1), 0, 1);
        h2.record(NodeId(2), 1, 1);
        assert_eq!(h2.correlation(NodeId(1), NodeId(2), 1), None);
    }

    #[test]
    fn non_voter_is_isolated() {
        let mut h = VoteHistories::new();
        h.record(NodeId(1), 0, 1);
        assert!(h.is_isolated(NodeId(5), 1));
        assert_eq!(h.vote_count(NodeId(5)), 0);
    }

    #[test]
    fn low_participation_isolates_many() {
        let mut rng = DetRng::new(3);
        let (_, low) = simulate_credence(200, 100, 0.3, 0.1, 5, 0.2, 0.1, 2, &mut rng);
        let (_, high) = simulate_credence(200, 100, 0.3, 0.9, 20, 0.2, 0.1, 2, &mut rng);
        assert!(
            low.isolated_fraction > 0.7,
            "10% participation should isolate most peers: {}",
            low.isolated_fraction
        );
        assert!(
            high.isolated_fraction < low.isolated_fraction,
            "heavy participation must reduce isolation"
        );
    }

    #[test]
    fn correlation_detects_malicious_voters_when_overlapping() {
        let mut rng = DetRng::new(5);
        let (_, out) = simulate_credence(100, 40, 0.3, 1.0, 25, 0.2, 0.1, 3, &mut rng);
        assert!(
            out.malicious_detection > 0.9,
            "dense voting should expose inverse voters: {}",
            out.malicious_detection
        );
    }

    #[test]
    #[should_panic(expected = "votes are ±1")]
    fn invalid_vote_rejected() {
        VoteHistories::new().record(NodeId(0), 0, 0);
    }
}
