//! Adversary models (paper §VI-C and §VII).
//!
//! All attacks act through the same protocol surfaces honest nodes use —
//! vote lists, top-K responses, BarterCast records — never through
//! backdoors, so defences are exercised exactly where the paper claims
//! they hold:
//!
//! * [`flash_crowd`] — a collusive crowd of fresh identities promoting a
//!   spam moderator `M0` via votes and fabricated VoxPopuli top-K lists
//!   (Figures 7 and 8);
//! * [`sybil`] — the Sybil view of the same attack: one operator minting
//!   identities, plus the upload/time cost accounting that the experience
//!   function imposes on entering the core (§VII's cost argument);
//! * [`mole`] — the "front peer" attack on BarterCast: colluders fabricate
//!   transfer claims behind a mole that has genuine edges to honest nodes;
//! * [`aggregation`] — the baseline the paper rejects in §II/§V-A:
//!   epidemic push–pull averaging, "highly vulnerable to lying behaviour",
//!   used by the `ablation_aggregation` experiment to show why BallotBox
//!   samples instead of aggregating.

//! * [`credence`] — a correlation-based rating baseline in the style of
//!   Credence (paper §VIII), used to quantify the isolation of non-voting
//!   peers that motivates binding votes to moderators and sampling them.
//!
//! * [`flooder`] — a crowd of identities that initiates far more gossip
//!   than honest peers, exercising the guard plane's per-peer token
//!   buckets, bounded inboxes, and quarantine;
//! * [`malformer`] — a wire-level mutator applying seeded structured
//!   corruption (stuffing, inflation, stale/future timestamps, bad
//!   signatures, truncation) to exercise every typed validation gate.

pub mod aggregation;
pub mod credence;
pub mod flash_crowd;
pub mod flooder;
pub mod malformer;
pub mod mole;
pub mod sybil;

pub use aggregation::EpidemicAggregation;
pub use credence::{simulate_credence, CredenceOutcome, VoteHistories};
pub use flash_crowd::FlashCrowd;
pub use flooder::Flooder;
pub use malformer::Malformer;
pub use mole::MoleAttack;
pub use sybil::SybilCost;
