//! The message-flood adversary.
//!
//! A `Flooder` crowd does not bother lying *well* — it simply initiates
//! far more gossip than any honest peer, from many identities at once,
//! trying to drown receivers in work and crowd honest traffic out of
//! bounded inboxes and dedup windows. The defence under test is the
//! guard plane's per-peer, per-class token buckets (LOCKSS-style rate
//! limiting): each flooder identity exhausts its own budget at every
//! receiver within a round, accumulates `RateLimited` strikes, and is
//! quarantined — while honest peers' separate buckets stay full.
//!
//! Flooder traffic is routed through the scenario engine's normal send
//! path (peer sampling, fault plane, delivery events, auditor), never a
//! backdoor, so flood sends are subject to loss, partitions, and retry
//! accounting like any other message.

use rvs_sim::NodeId;
use std::collections::BTreeSet;

/// A crowd of flooding identities and their per-round send budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flooder {
    members: BTreeSet<NodeId>,
    /// Extra gossip initiations per member per round, on top of the one
    /// normal initiation every online node makes.
    per_round: u32,
}

impl Flooder {
    /// A flood from `members`, each initiating `per_round` extra sends
    /// per gossip round.
    pub fn new(members: impl IntoIterator<Item = NodeId>, per_round: u32) -> Self {
        Flooder {
            members: members.into_iter().collect(),
            per_round,
        }
    }

    /// Number of flooding identities.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Extra initiations per member per round.
    pub fn per_round(&self) -> u32 {
        self.per_round
    }

    /// Is `node` one of the flooders?
    pub fn is_member(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Members in ascending order (the engine iterates them serially, so
    /// the order is part of the deterministic replay).
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }
}

/// Stable binary encoding: member set, then the per-round budget.
impl rvs_checkpoint::Persist for Flooder {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.members.persist(enc);
        enc.u32(self.per_round);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Flooder {
            members: BTreeSet::restore(dec)?,
            per_round: dec.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_checkpoint::{Decoder, Encoder, Persist};

    #[test]
    fn membership() {
        let f = Flooder::new((5..9).map(NodeId), 12);
        assert_eq!(f.size(), 4);
        assert_eq!(f.per_round(), 12);
        assert!(f.is_member(NodeId(7)));
        assert!(!f.is_member(NodeId(4)));
        let members: Vec<NodeId> = f.members().collect();
        assert_eq!(members, (5..9).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn persist_roundtrip() {
        let f = Flooder::new([NodeId(3), NodeId(1)], 7);
        let mut enc = Encoder::new();
        f.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Flooder::restore(&mut dec).unwrap();
        assert_eq!(back, f);
        assert_eq!(dec.remaining(), 0);
    }
}
