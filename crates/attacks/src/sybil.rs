//! Sybil economics: what does it cost to subvert the vote? (paper §VII)
//!
//! "to gain enough experienced identities to influence the popular vote
//! the spam nodes would need to pay a high price in time and upload
//! bandwidth … The larger the size of the core the higher the cost of an
//! attack since more spam identities are needed to influence the vote."
//!
//! [`SybilCost`] quantifies that argument: minting identities is free
//! (creating a key pair costs nothing in Tribler), but every identity that
//! must pass the experience function at a node costs `T` MiB of genuine
//! upload *to that node* (or an equivalent 2-hop flow through it), and
//! outvoting a core of size `C` requires more than `C` experienced
//! identities.

use serde::{Deserialize, Serialize};

/// Cost model for a Sybil/flash-crowd operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SybilCost {
    /// The experience threshold `T` in MiB.
    pub t_mib: f64,
    /// Attacker's sustained upload bandwidth in KiB/s.
    pub uplink_kibps: f64,
}

impl SybilCost {
    /// Upload volume (MiB) needed for `identities` Sybils to each appear
    /// experienced to `evaluators` distinct honest nodes. Contribution is
    /// judged per evaluator from its own subjective graph, so the flow must
    /// be paid towards each evaluator separately.
    pub fn upload_mib(&self, identities: usize, evaluators: usize) -> f64 {
        self.t_mib * identities as f64 * evaluators as f64
    }

    /// Wall-clock seconds to pay [`Self::upload_mib`] at the attacker's
    /// uplink (all identities share the operator's physical link — the
    /// defining constraint of a Sybil attack).
    pub fn upload_seconds(&self, identities: usize, evaluators: usize) -> f64 {
        let kib = self.upload_mib(identities, evaluators) * 1024.0;
        kib / self.uplink_kibps
    }

    /// Identities needed to outvote an experienced core of `core_size`
    /// honest voters under simple summation: one more than the core.
    pub fn identities_to_outvote(core_size: usize) -> usize {
        core_size + 1
    }

    /// Full cost (MiB, seconds) of the cheapest vote-subversion attack
    /// against a core of `core_size` nodes, where each Sybil must appear
    /// experienced to the single victim node it targets.
    pub fn cheapest_subversion(&self, core_size: usize) -> (f64, f64) {
        let ids = Self::identities_to_outvote(core_size);
        (self.upload_mib(ids, 1), self.upload_seconds(ids, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SybilCost {
        SybilCost {
            t_mib: 5.0,
            uplink_kibps: 512.0,
        }
    }

    #[test]
    fn upload_scales_with_identities_and_evaluators() {
        let m = model();
        assert_eq!(m.upload_mib(1, 1), 5.0);
        assert_eq!(m.upload_mib(10, 1), 50.0);
        assert_eq!(m.upload_mib(10, 30), 1_500.0);
    }

    #[test]
    fn time_follows_bandwidth() {
        let m = model();
        // 5 MiB at 512 KiB/s = 10 s.
        assert!((m.upload_seconds(1, 1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn outvoting_needs_core_plus_one() {
        assert_eq!(SybilCost::identities_to_outvote(30), 31);
        assert_eq!(SybilCost::identities_to_outvote(0), 1);
    }

    #[test]
    fn larger_cores_cost_more_to_subvert() {
        let m = model();
        let (mib_small, s_small) = m.cheapest_subversion(10);
        let (mib_big, s_big) = m.cheapest_subversion(100);
        assert!(mib_big > mib_small);
        assert!(s_big > s_small);
        // Scaling defence: cost grows linearly with core size.
        assert!((mib_big / mib_small - 101.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_threshold_makes_attack_free() {
        let m = SybilCost {
            t_mib: 0.0,
            uplink_kibps: 512.0,
        };
        let (mib, secs) = m.cheapest_subversion(50);
        assert_eq!(mib, 0.0);
        assert_eq!(secs, 0.0);
    }
}
