//! The malformed-message adversary.
//!
//! A `Malformer` sits on the wire and applies seeded structured
//! mutations to otherwise-honest messages: duplicate-entry stuffing,
//! field inflation, stale/future timestamps, bad signatures, hearsay and
//! self-loop records, truncation. Each mutated message should trip
//! exactly one `RejectReason` at the receiving gate (or, for mutations a
//! given config does not police — e.g. stale timestamps with the replay
//! window off, or truncation — be handled harmlessly), which is what the
//! wire-fuzz corpus and the byzantine chaos scenario assert.
//!
//! All draws come from the RNG lane the engine dedicates to malformation
//! (`rng_malform`), so arming the adversary never perturbs honest
//! protocol draws and the run stays byte-identical across thread counts.

use rvs_bartercast::Record;
use rvs_core::{TopKList, Vote, VoteEntry};
use rvs_modcast::Moderation;
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime};

/// How far a `Future` mutation pushes a timestamp past `now`.
const FUTURE_JUMP: SimDuration = SimDuration::from_days(30);

/// An id far outside any simulated population (`Inflate` mutations).
const WILD_ID: u32 = u32::MAX / 2;

/// A KiB claim far past any sane per-record bound (`Inflate` mutations).
const WILD_KIB: u64 = u64::MAX / 2;

/// A seeded structured mutator of wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Malformer {
    /// Mutation probability in per-mille (0 = never, 1000 = always).
    rate_pm: u32,
}

impl Malformer {
    /// A malformer mutating `rate_pm`‰ of the messages it sees.
    pub fn new(rate_pm: u32) -> Self {
        Malformer { rate_pm }
    }

    /// The configured per-mille mutation rate.
    pub fn rate_pm(&self) -> u32 {
        self.rate_pm
    }

    /// Decide whether to mutate the next message. Always draws exactly
    /// one value so the malformation RNG lane advances identically
    /// whatever the rate.
    pub fn should_mutate(&self, rng: &mut DetRng) -> bool {
        rng.below(1000) < u64::from(self.rate_pm)
    }

    /// Mutate a vote list in place. Returns true when a mutation was
    /// applied.
    pub fn mutate_votes(&self, list: &mut Vec<VoteEntry>, now: SimTime, rng: &mut DetRng) -> bool {
        if list.is_empty() {
            // Nothing honest to corrupt: forge a lone future-dated vote.
            list.push(VoteEntry {
                moderator: NodeId(0),
                vote: Vote::Positive,
                made_at: now.saturating_add(FUTURE_JUMP),
            });
            return true;
        }
        match rng.below(5) {
            // Duplicate-entry stuffing: repeat an existing entry.
            0 => {
                let dup = list[rng.index(list.len())];
                list.push(dup);
            }
            // Field inflation: moderator id far outside the population.
            1 => {
                let k = rng.index(list.len());
                list[k].moderator = NodeId(WILD_ID);
            }
            // Future timestamp.
            2 => {
                let k = rng.index(list.len());
                list[k].made_at = now.saturating_add(FUTURE_JUMP);
            }
            // Stale timestamp: rewound to the epoch.
            3 => {
                let k = rng.index(list.len());
                list[k].made_at = SimTime::ZERO;
            }
            // Truncation: the list arrives empty.
            _ => list.clear(),
        }
        true
    }

    /// Mutate a moderation list in place. Returns true when a mutation
    /// was applied (an empty list is left alone — there is no signature
    /// to forge without the registry).
    pub fn mutate_moderations(
        &self,
        list: &mut Vec<Moderation>,
        now: SimTime,
        rng: &mut DetRng,
    ) -> bool {
        if list.is_empty() {
            return false;
        }
        match rng.below(5) {
            // Duplicate-entry stuffing.
            0 => {
                let dup = list[rng.index(list.len())];
                list.push(dup);
            }
            // Field inflation: claimed moderator outside the population
            // (also invalidates the signature; the gate attributes the
            // structural cause first).
            1 => {
                let k = rng.index(list.len());
                list[k].moderator = NodeId(WILD_ID);
            }
            // Future creation time.
            2 => {
                let k = rng.index(list.len());
                list[k].created = now.saturating_add(FUTURE_JUMP);
            }
            // Bad signature: flip bits in the signature itself.
            3 => {
                let k = rng.index(list.len());
                list[k].sig.0 ^= 0xDEAD_BEEF_CAFE_F00D;
            }
            // Truncation.
            _ => list.clear(),
        }
        true
    }

    /// Mutate a record list from `reporter` in place. Returns true when
    /// a mutation was applied.
    pub fn mutate_records(
        &self,
        recs: &mut Vec<Record>,
        reporter: NodeId,
        rng: &mut DetRng,
    ) -> bool {
        match rng.below(5) {
            // Duplicate-entry stuffing (or a self-loop when empty).
            0 if !recs.is_empty() => {
                let dup = recs[rng.index(recs.len())];
                recs.push(dup);
            }
            // Field inflation: an absurd KiB claim.
            1 if !recs.is_empty() => {
                let k = rng.index(recs.len());
                recs[k].kib = WILD_KIB;
            }
            // Hearsay: a record between two *other* peers.
            2 => recs.push(Record {
                from: NodeId(reporter.0.wrapping_add(1)),
                to: NodeId(reporter.0.wrapping_add(2)),
                kib: 1,
            }),
            // Endpoint outside the population.
            3 => recs.push(Record {
                from: reporter,
                to: NodeId(WILD_ID),
                kib: 1,
            }),
            // Self-loop (covers the empty-list stuffing/inflation arms).
            _ => recs.push(Record {
                from: reporter,
                to: reporter,
                kib: 1,
            }),
        }
        true
    }

    /// Mutate a top-K response in place. Returns true when a mutation
    /// was applied.
    pub fn mutate_topk(&self, list: &mut TopKList, rng: &mut DetRng) -> bool {
        match rng.below(3) {
            // Duplicate-entry stuffing (first entry repeated; a fresh id
            // when the list is empty — still a dud response).
            0 => match list.ranked.first().copied() {
                Some(m) => list.ranked.push(m),
                None => list.ranked.push(NodeId(0)),
            },
            // Id inflation.
            1 => list.ranked.push(NodeId(WILD_ID)),
            // Length inflation: pad far past any plausible K with
            // distinct ids (trips the length bound before dedup).
            _ => {
                let base = list.ranked.len() as u32;
                for i in 0..64u32 {
                    list.ranked.push(NodeId(WILD_ID.wrapping_add(base + i)));
                }
            }
        }
        true
    }
}

/// Stable binary encoding: the per-mille rate.
impl rvs_checkpoint::Persist for Malformer {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u32(self.rate_pm);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Malformer {
            rate_pm: dec.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_checkpoint::{Decoder, Encoder, Persist};

    const NOW: SimTime = SimTime::from_hours(12);

    fn votes(n: u32) -> Vec<VoteEntry> {
        (0..n)
            .map(|m| VoteEntry {
                moderator: NodeId(m),
                vote: Vote::Positive,
                made_at: SimTime::from_hours(1),
            })
            .collect()
    }

    #[test]
    fn rate_zero_never_mutates_but_still_draws() {
        let m = Malformer::new(0);
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        for _ in 0..100 {
            assert!(!m.should_mutate(&mut a));
        }
        // The lane advanced identically to one that saw a nonzero rate.
        let hot = Malformer::new(1000);
        for _ in 0..100 {
            assert!(hot.should_mutate(&mut b));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn rate_extremes() {
        let mut rng = DetRng::new(1);
        assert!(Malformer::new(1000).should_mutate(&mut rng));
        // ~10% rate: over 1000 trials expect a loose band around 100.
        let m = Malformer::new(100);
        let hits = (0..1000).filter(|_| m.should_mutate(&mut rng)).count();
        assert!((40..250).contains(&hits), "10% rate wildly off: {hits}");
    }

    #[test]
    fn vote_mutations_change_the_list() {
        let m = Malformer::new(1000);
        let mut rng = DetRng::new(2);
        for _ in 0..50 {
            let original = votes(5);
            let mut mutated = original.clone();
            assert!(m.mutate_votes(&mut mutated, NOW, &mut rng));
            assert_ne!(mutated, original);
        }
        // Empty lists become a forged future vote.
        let mut empty = Vec::new();
        assert!(m.mutate_votes(&mut empty, NOW, &mut rng));
        assert_eq!(empty.len(), 1);
        assert!(empty[0].made_at > NOW);
    }

    #[test]
    fn record_mutations_always_apply() {
        let m = Malformer::new(1000);
        let mut rng = DetRng::new(3);
        for _ in 0..50 {
            let original = vec![Record {
                from: NodeId(4),
                to: NodeId(1),
                kib: 10,
            }];
            let mut mutated = original.clone();
            assert!(m.mutate_records(&mut mutated, NodeId(4), &mut rng));
            assert_ne!(mutated, original);
        }
        // Works on empty lists too (forged record variants).
        let mut empty = Vec::new();
        assert!(m.mutate_records(&mut empty, NodeId(4), &mut rng));
        assert!(!empty.is_empty());
    }

    #[test]
    fn topk_mutations_always_apply() {
        let m = Malformer::new(1000);
        let mut rng = DetRng::new(4);
        for _ in 0..30 {
            let original = TopKList {
                ranked: vec![NodeId(1), NodeId(2)],
            };
            let mut mutated = original.clone();
            assert!(m.mutate_topk(&mut mutated, &mut rng));
            assert_ne!(mutated, original);
        }
        let mut empty = TopKList { ranked: Vec::new() };
        assert!(m.mutate_topk(&mut empty, &mut rng));
        assert!(!empty.ranked.is_empty());
    }

    #[test]
    fn empty_moderation_list_is_left_alone() {
        let m = Malformer::new(1000);
        let mut rng = DetRng::new(5);
        let mut list = Vec::new();
        assert!(!m.mutate_moderations(&mut list, NOW, &mut rng));
        assert!(list.is_empty());
    }

    #[test]
    fn persist_roundtrip() {
        let m = Malformer::new(100);
        let mut enc = Encoder::new();
        m.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Malformer::restore(&mut dec).unwrap(), m);
        assert_eq!(dec.remaining(), 0);
    }
}
