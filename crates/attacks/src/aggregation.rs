//! Epidemic push–pull aggregation — the baseline the paper rejects.
//!
//! §V-A: "Faster and more accurate epidemic-style aggregation protocols
//! have been proposed but they are highly vulnerable to lying behaviour
//! \[Jelasity et al. 2005\]." This module implements that baseline —
//! pairwise push–pull averaging of a population estimate — plus lying
//! nodes, so the `ablation_aggregation` experiment can contrast it with
//! BallotBox sampling: a liar that always reports 1.0 and never updates
//! drags the epidemic average towards 1 without bound, whereas in
//! BallotBox a liar is just one voter among `B_max`.

use rvs_sim::{DetRng, NodeId};
use std::collections::BTreeSet;

/// Push–pull averaging aggregation with optional liars.
#[derive(Debug, Clone)]
pub struct EpidemicAggregation {
    values: Vec<f64>,
    liars: BTreeSet<NodeId>,
    lie_value: f64,
}

impl EpidemicAggregation {
    /// Initialise from each node's local observation (e.g. 1.0 = "I
    /// support the moderator", 0.0 = not). `liars` always report
    /// `lie_value` and discard updates.
    pub fn new(initial: Vec<f64>, liars: impl IntoIterator<Item = NodeId>, lie_value: f64) -> Self {
        let liars: BTreeSet<NodeId> = liars.into_iter().collect();
        EpidemicAggregation {
            values: initial,
            liars,
            lie_value,
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Node `i`'s current estimate of the population average.
    pub fn estimate(&self, i: NodeId) -> f64 {
        if self.liars.contains(&i) {
            self.lie_value
        } else {
            self.values[i.index()]
        }
    }

    /// Mean estimate over honest nodes — what the protocol "converges" to.
    pub fn honest_mean(&self) -> f64 {
        let honest: Vec<f64> = (0..self.values.len())
            .map(NodeId::from_index)
            .filter(|n| !self.liars.contains(n))
            .map(|n| self.values[n.index()])
            .collect();
        if honest.is_empty() {
            return self.lie_value;
        }
        honest.iter().sum::<f64>() / honest.len() as f64
    }

    /// One gossip round: every node pairs with a uniformly random partner
    /// and both move to the average of their reported values. Liars report
    /// `lie_value` and ignore the update.
    pub fn round(&mut self, rng: &mut DetRng) {
        let n = self.values.len();
        if n < 2 {
            return;
        }
        for i in 0..n {
            let mut j = rng.index(n);
            if j == i {
                j = (j + 1) % n;
            }
            let ni = NodeId::from_index(i);
            let nj = NodeId::from_index(j);
            let vi = self.estimate(ni);
            let vj = self.estimate(nj);
            let avg = (vi + vj) / 2.0;
            if !self.liars.contains(&ni) {
                self.values[i] = avg;
            }
            if !self.liars.contains(&nj) {
                self.values[j] = avg;
            }
        }
    }

    /// Run `rounds` gossip rounds.
    pub fn run(&mut self, rounds: usize, rng: &mut DetRng) {
        for _ in 0..rounds {
            self.round(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_aggregation_converges_to_true_mean() {
        // 20% support: true mean 0.2.
        let initial: Vec<f64> = (0..50).map(|i| if i < 10 { 1.0 } else { 0.0 }).collect();
        let mut agg = EpidemicAggregation::new(initial, [], 1.0);
        let mut rng = DetRng::new(1);
        agg.run(40, &mut rng);
        let mean = agg.honest_mean();
        assert!((mean - 0.2).abs() < 0.02, "converged mean {mean}");
        // Individual estimates concentrate around the mean too.
        for i in 0..50 {
            let e = agg.estimate(NodeId(i));
            assert!((e - 0.2).abs() < 0.15, "node {i} estimate {e}");
        }
    }

    #[test]
    fn few_liars_poison_the_aggregate() {
        // True support 0.2; 5 liars out of 50 (10%) always report 1.0.
        let initial: Vec<f64> = (0..50).map(|i| if i < 10 { 1.0 } else { 0.0 }).collect();
        let liars: Vec<NodeId> = (45..50).map(NodeId).collect();
        let mut agg = EpidemicAggregation::new(initial, liars, 1.0);
        let mut rng = DetRng::new(2);
        agg.run(200, &mut rng);
        let mean = agg.honest_mean();
        assert!(
            mean > 0.8,
            "liars should drag the aggregate towards 1.0; got {mean}"
        );
    }

    #[test]
    fn lying_distortion_grows_with_rounds() {
        let initial: Vec<f64> = (0..40).map(|_| 0.0).collect();
        let liars = [NodeId(0)];
        let mut agg = EpidemicAggregation::new(initial, liars, 1.0);
        let mut rng = DetRng::new(3);
        agg.run(10, &mut rng);
        let early = agg.honest_mean();
        agg.run(200, &mut rng);
        let late = agg.honest_mean();
        assert!(late > early, "distortion accumulates: {early} -> {late}");
    }

    #[test]
    fn liar_estimate_is_always_the_lie() {
        let mut agg = EpidemicAggregation::new(vec![0.0; 10], [NodeId(3)], 1.0);
        let mut rng = DetRng::new(4);
        agg.run(20, &mut rng);
        assert_eq!(agg.estimate(NodeId(3)), 1.0);
    }

    #[test]
    fn degenerate_populations_are_stable() {
        let mut agg = EpidemicAggregation::new(vec![0.7], [], 1.0);
        let mut rng = DetRng::new(5);
        agg.round(&mut rng);
        assert_eq!(agg.estimate(NodeId(0)), 0.7);
        let empty = EpidemicAggregation::new(vec![], [], 1.0);
        assert!(empty.is_empty());
        assert_eq!(empty.honest_mean(), 1.0);
    }

    #[test]
    fn all_liars_population_reports_lie() {
        let agg = EpidemicAggregation::new(vec![0.0; 3], (0..3).map(NodeId), 1.0);
        assert_eq!(agg.honest_mean(), 1.0);
    }
}
