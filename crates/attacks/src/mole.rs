//! The "front peer" / mole attack on BarterCast (paper §VII).
//!
//! "it is possible to fake experience by clever collusion within the
//! BarterCast protocol but this is difficult and again costly. This is a
//! variant of the so-called 'front peer' or 'mole' attack."
//!
//! One colluder — the *mole* — genuinely uploads to honest victims so its
//! edge into the honest graph is real. The other colluders never upload
//! anything; instead they claim enormous uploads *to the mole*, hoping the
//! victim's 2-hop maxflow routes their claimed flow through the mole's
//! real edge. The `ablation_mole` experiment measures the resulting
//! leverage: each colluder's apparent contribution is capped by the mole's
//! genuine upload, which is exactly the cost argument the paper makes.

use rvs_bartercast::protocol::Record;
use rvs_bartercast::BarterCast;
use rvs_sim::NodeId;
use std::collections::BTreeSet;

/// A mole-attack configuration.
#[derive(Debug, Clone)]
pub struct MoleAttack {
    /// The front peer with genuine edges to honest nodes.
    pub mole: NodeId,
    /// Colluders fabricating uploads to the mole.
    colluders: BTreeSet<NodeId>,
    /// Claimed upload per colluder, KiB.
    pub claimed_kib: u64,
}

impl MoleAttack {
    /// A mole attack with the given colluders (the mole must not collude
    /// with itself in the claimed-edge set).
    pub fn new(
        mole: NodeId,
        colluders: impl IntoIterator<Item = NodeId>,
        claimed_kib: u64,
    ) -> Self {
        let colluders: BTreeSet<NodeId> = colluders.into_iter().filter(|&c| c != mole).collect();
        assert!(!colluders.is_empty(), "mole attack needs colluders");
        MoleAttack {
            mole,
            colluders,
            claimed_kib,
        }
    }

    /// Colluders in ascending order.
    pub fn colluders(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.colluders.iter().copied()
    }

    /// Is `node` part of the collusion (mole included)?
    pub fn is_colluder(&self, node: NodeId) -> bool {
        node == self.mole || self.colluders.contains(&node)
    }

    /// Execute the fabrication step against `victim`: every colluder (and
    /// the mole, corroborating) reports the fake `colluder → mole` edges.
    /// Edge endpoints are the reporters, so the receiver's validity rule
    /// accepts them — this is precisely the hole the 2-hop maxflow bounds.
    pub fn inject(&self, bc: &mut BarterCast, victim: NodeId) {
        for &c in &self.colluders {
            let record = Record {
                from: c,
                to: self.mole,
                kib: self.claimed_kib,
            };
            // Reported by the colluder itself…
            bc.inject_report(victim, c, record);
            // …and corroborated by the mole (the other endpoint).
            bc.inject_report(victim, self.mole, record);
        }
    }

    /// The attack's summed leverage against `victim`: total apparent
    /// contribution (KiB) of all colluders, as the victim computes it.
    ///
    /// Note that contribution queries are *independent* maxflows, so each
    /// colluder is individually capped by the mole's genuine edge, but the
    /// sum across colluders can reach `colluders × mole_edge` — the
    /// residual capacity is not shared between queries. This is faithful
    /// to deployed BarterCast and is part of why the paper calls the
    /// attack "difficult **and again costly**" rather than impossible.
    pub fn apparent_contribution_kib(&self, bc: &BarterCast, victim: NodeId) -> u64 {
        self.colluders
            .iter()
            .map(|&c| bc.contribution_kib(victim, c))
            .sum()
    }

    /// The largest single colluder's apparent contribution (KiB) —
    /// bounded by the mole's genuine upload to the victim.
    pub fn max_colluder_contribution_kib(&self, bc: &BarterCast, victim: NodeId) -> u64 {
        self.colluders
            .iter()
            .map(|&c| bc.contribution_kib(victim, c))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_bartercast::BarterCastConfig;
    use rvs_bittorrent::TransferLedger;

    /// Victim 0; mole 1 genuinely uploaded `real_kib` to the victim;
    /// colluders 2, 3 claim 1 GiB each.
    fn setup(real_kib: u64) -> (BarterCast, MoleAttack) {
        let mut ledger = TransferLedger::new();
        ledger.credit(NodeId(1), NodeId(0), real_kib);
        let mut bc = BarterCast::new(4, BarterCastConfig::default());
        bc.sync_own_records(NodeId(0), &ledger);
        let attack = MoleAttack::new(NodeId(1), [NodeId(2), NodeId(3)], 1 << 20);
        (bc, attack)
    }

    #[test]
    fn colluder_set_excludes_mole() {
        let a = MoleAttack::new(NodeId(1), [NodeId(1), NodeId(2)], 100);
        assert_eq!(a.colluders().collect::<Vec<_>>(), vec![NodeId(2)]);
        assert!(a.is_colluder(NodeId(1)));
        assert!(a.is_colluder(NodeId(2)));
        assert!(!a.is_colluder(NodeId(0)));
    }

    #[test]
    fn per_colluder_leverage_capped_by_moles_real_edge() {
        let (mut bc, attack) = setup(8 * 1024); // mole really uploaded 8 MiB
        attack.inject(&mut bc, NodeId(0));
        // Each colluder claims 1 GiB, but apparent contribution routes
        // through the mole's genuine 8 MiB edge — per-colluder ≤ 8 MiB,
        // and the sum is bounded by colluders × 8 MiB (independent
        // queries).
        let per = attack.max_colluder_contribution_kib(&bc, NodeId(0));
        assert!(
            per <= 8 * 1024,
            "per-colluder leverage {per} KiB exceeds mole's edge"
        );
        assert!(per > 0, "some leverage flows through the mole");
        let total = attack.apparent_contribution_kib(&bc, NodeId(0));
        assert!(total <= 2 * 8 * 1024);
    }

    #[test]
    fn no_real_edge_means_no_leverage() {
        let (mut bc, attack) = setup(0);
        attack.inject(&mut bc, NodeId(0));
        assert_eq!(attack.apparent_contribution_kib(&bc, NodeId(0)), 0);
    }

    #[test]
    fn leverage_grows_with_paid_cost() {
        // The defence's cost argument: doubling the mole's genuine upload
        // doubles the achievable leverage — faking experience is paying.
        let (mut bc_small, attack) = setup(4 * 1024);
        attack.inject(&mut bc_small, NodeId(0));
        let small = attack.apparent_contribution_kib(&bc_small, NodeId(0));
        let (mut bc_big, attack2) = setup(16 * 1024);
        attack2.inject(&mut bc_big, NodeId(0));
        let big = attack2.apparent_contribution_kib(&bc_big, NodeId(0));
        assert!(big > small);
        assert!(big <= 2 * 16 * 1024, "two colluders, independent queries");
    }

    #[test]
    #[should_panic(expected = "needs colluders")]
    fn mole_alone_is_not_an_attack() {
        MoleAttack::new(NodeId(1), [NodeId(1)], 100);
    }
}
