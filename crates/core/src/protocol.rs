//! The population-wide vote-sampling protocol (paper Fig 3).
//!
//! Each PSS encounter between an active node `i` and a sampled node `j`
//! runs:
//!
//! 1. **BallotBox exchange** — both sides send their local vote lists
//!    (their *own* votes, drawn from their ModerationCast databases) and
//!    each merges the other's list only if the sender passes its
//!    experience function `E`.
//! 2. **VoxPopuli bootstrap** — if `i`'s ballot box still holds fewer than
//!    `B_min` unique voters, `i` requests a top-K list from `j`; `j`
//!    answers only when it is *not* itself bootstrapping ("this prevents
//!    nodes unwittingly passing potentially malicious top-K lists received
//!    from others"); `i` caches the response for rank-merging.
//!
//! The experience function is injected as a closure so the same encounter
//! code serves the fixed threshold, the adaptive threshold, and the
//! attack ablations.

use crate::ballot::BallotBox;
use crate::ranking::{rank_ballot, TopKList};
use crate::vote::{select_votes, VoteEntry, VoteListPolicy};
use crate::voxpopuli::VoxCache;
use rvs_modcast::ModerationCast;
use rvs_sim::{DetRng, NodeId, SimTime};
use rvs_telemetry::{VoteCounters, VoxPopuliCounters};
use serde::{Deserialize, Serialize};

/// Protocol parameters (defaults are the paper's §VI-B operating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteSamplingConfig {
    /// Minimum unique voters before ballot statistics are used (paper: 5).
    pub b_min: usize,
    /// Maximum unique voters sampled (paper: 100).
    pub b_max: usize,
    /// VoxPopuli cache size (paper: 10).
    pub v_max: usize,
    /// Length of top-K lists (paper: 3).
    pub k: usize,
    /// Maximum votes per vote-list message (paper: 50).
    pub max_votes_per_msg: usize,
    /// Vote-list selection policy (paper: recency + random).
    pub policy: VoteListPolicy,
    /// Re-validation on contact: when a sender now *fails* the experience
    /// check, drop its previously accepted votes from the ballot. Off by
    /// default (the paper only specifies the accept path; with a fixed
    /// threshold contributions never shrink, so the question never
    /// arises). The adaptive-threshold ablation (A1) enables it — without
    /// shedding votes accepted while `T` was still low, an adaptive node
    /// could never recover from an early flood.
    pub revalidate: bool,
}

impl Default for VoteSamplingConfig {
    fn default() -> Self {
        VoteSamplingConfig {
            b_min: 5,
            b_max: 100,
            v_max: 10,
            k: 3,
            max_votes_per_msg: 50,
            policy: VoteListPolicy::RecencyAndRandom,
            revalidate: false,
        }
    }
}

/// Population-wide vote-sampling state: one ballot box and one VoxPopuli
/// cache per node.
#[derive(Debug, Clone)]
pub struct VoteSampling {
    cfg: VoteSamplingConfig,
    ballots: Vec<BallotBox>,
    vox: Vec<VoxCache>,
    counters: VoteCounters,
    vox_counters: VoxPopuliCounters,
}

impl VoteSampling {
    /// State for a population of `n` nodes.
    pub fn new(n: usize, cfg: VoteSamplingConfig) -> Self {
        VoteSampling {
            cfg,
            ballots: (0..n).map(|_| BallotBox::new(cfg.b_max)).collect(),
            vox: (0..n).map(|_| VoxCache::new(cfg.v_max, cfg.k)).collect(),
            counters: VoteCounters::default(),
            vox_counters: VoxPopuliCounters::default(),
        }
    }

    /// Population-wide vote-list and ballot-maintenance counters.
    pub fn counters(&self) -> &VoteCounters {
        &self.counters
    }

    /// Population-wide VoxPopuli traffic counters.
    pub fn vox_counters(&self) -> &VoxPopuliCounters {
        &self.vox_counters
    }

    /// The configuration in force.
    pub fn config(&self) -> VoteSamplingConfig {
        self.cfg
    }

    /// Node `i`'s ballot box.
    pub fn ballot(&self, i: NodeId) -> &BallotBox {
        &self.ballots[i.index()]
    }

    /// Mutable ballot access (attack models and tests).
    pub fn ballot_mut(&mut self, i: NodeId) -> &mut BallotBox {
        &mut self.ballots[i.index()]
    }

    /// Node `i`'s VoxPopuli cache.
    pub fn vox_cache(&self, i: NodeId) -> &VoxCache {
        &self.vox[i.index()]
    }

    /// Is `i` still bootstrapping (ballot below `B_min` unique voters)?
    pub fn needs_bootstrap(&self, i: NodeId) -> bool {
        self.ballots[i.index()].unique_voters() < self.cfg.b_min
    }

    /// Crash-restart node `i`: wipe its volatile vote-sampling state (the
    /// in-memory ballot box and VoxPopuli cache), returning it to the
    /// bootstrapping phase. Persistent state — the BarterCast graph and
    /// signed moderations, which Tribler keeps on disk across sessions —
    /// lives in other layers and is untouched by design.
    pub fn crash_reset(&mut self, i: NodeId) {
        self.ballots[i.index()] = BallotBox::new(self.cfg.b_max);
        self.vox[i.index()].clear();
    }

    /// Build node `i`'s outgoing local vote list from its ModerationCast
    /// database (its own first-hand votes), applying the per-message
    /// budget and selection policy.
    pub fn vote_list_of(&self, i: NodeId, mc: &ModerationCast, rng: &mut DetRng) -> Vec<VoteEntry> {
        let entries: Vec<VoteEntry> = mc
            .db(i)
            .opinions()
            .map(|(moderator, vote, made_at)| VoteEntry {
                moderator,
                vote: vote.into(),
                made_at,
            })
            .collect();
        select_votes(entries, self.cfg.max_votes_per_msg, self.cfg.policy, rng)
    }

    /// Deliver `from`'s vote list to `to`. `to` merges it only when its
    /// experience function accepts the sender (`experienced` is
    /// `E_to(from)` as computed by the caller).
    ///
    /// With [`VoteSamplingConfig::revalidate`] set, a *rejected* sender's
    /// earlier votes are additionally dropped from the ballot (see the
    /// config field for why the adaptive threshold needs this).
    pub fn deliver_vote_list(
        &mut self,
        from: NodeId,
        to: NodeId,
        list: &[VoteEntry],
        now: SimTime,
        experienced: bool,
    ) {
        if from == to {
            return;
        }
        if experienced {
            let outcome = self.ballots[to.index()].merge(from, list, now);
            self.counters.lists_accepted += 1;
            self.counters.votes_merged += outcome.merged as u64;
            self.counters.ballot_evictions += outcome.evicted_voters as u64;
        } else {
            self.counters.lists_rejected_inexperienced += 1;
            if self.cfg.revalidate {
                self.ballots[to.index()].forget_voter(from);
            }
        }
    }

    /// Honest VoxPopuli passive thread (Fig 3c): respond with the ballot's
    /// top-K — net-positively voted moderators only — and only when not
    /// bootstrapping ourselves.
    pub fn topk_response(&self, responder: NodeId) -> Option<TopKList> {
        if self.needs_bootstrap(responder) {
            None
        } else {
            Some(crate::ranking::rank_ballot_positive(
                &self.ballots[responder.index()],
                self.cfg.k,
            ))
        }
    }

    /// Cache a received top-K list at `i` (Fig 3a merge into topk_cache).
    pub fn deliver_topk(&mut self, i: NodeId, list: TopKList) {
        if !list.is_empty() {
            self.vox[i.index()].push(list);
        }
    }

    /// One counted VoxPopuli round trip: bootstrapping `i` requests `j`'s
    /// top-K, and `j` answers per [`Self::topk_response`]. Returns whether
    /// a response was served (declines while `j` is bootstrapping are
    /// counted separately).
    pub fn vox_request(&mut self, i: NodeId, j: NodeId) -> bool {
        self.vox_counters.requests += 1;
        match self.topk_response(j) {
            Some(list) => {
                self.vox_counters.responses += 1;
                self.deliver_topk(i, list);
                true
            }
            None => {
                self.vox_counters.declines_bootstrapping += 1;
                false
            }
        }
    }

    /// Count a VoxPopuli request that went unanswered (responder
    /// bootstrapping). Engines that intercept the response on the wire —
    /// validating it before delivery instead of calling
    /// [`Self::vox_request`] — use this to keep decline telemetry
    /// coherent with the uninstrumented path.
    pub fn note_vox_decline(&mut self) {
        self.vox_counters.requests += 1;
        self.vox_counters.declines_bootstrapping += 1;
    }

    /// Record a VoxPopuli request answered by an *external* responder —
    /// attack models fabricate their own top-K lists instead of consulting
    /// a ballot box. Counts the request/response pair and caches the list.
    pub fn deliver_external_topk(&mut self, i: NodeId, list: TopKList) {
        self.vox_counters.requests += 1;
        self.vox_counters.responses += 1;
        self.deliver_topk(i, list);
    }

    /// The ranking node `i` would display: ballot statistics once `B_min`
    /// unique voters are sampled, the VoxPopuli merge while bootstrapping.
    pub fn ranking_of(&self, i: NodeId) -> TopKList {
        if self.needs_bootstrap(i) {
            self.vox[i.index()].merged()
        } else {
            rank_ballot(&self.ballots[i.index()], self.cfg.k)
        }
    }

    /// Like [`Self::ranking_of`], but including zero-vote moderators known
    /// from the node's ModerationCast database.
    pub fn ranking_with_known(&self, i: NodeId, mc: &ModerationCast) -> TopKList {
        if self.needs_bootstrap(i) {
            self.vox[i.index()].merged()
        } else {
            crate::ranking::rank_ballot_with_known(
                &self.ballots[i.index()],
                mc.db(i).known_moderators(),
                self.cfg.k,
            )
        }
    }

    /// One full honest encounter (Fig 3): active node `i` with sampled
    /// node `j`. `experience(a, b)` must return `E_a(b)`.
    pub fn encounter(
        &mut self,
        i: NodeId,
        j: NodeId,
        mc: &ModerationCast,
        now: SimTime,
        experience: impl Fn(NodeId, NodeId) -> bool,
        rng: &mut DetRng,
    ) {
        if i == j {
            return;
        }
        // BallotBox: both directions, each side gated by its own E.
        let list_i = self.vote_list_of(i, mc, rng);
        let list_j = self.vote_list_of(j, mc, rng);
        self.deliver_vote_list(i, j, &list_i, now, experience(j, i));
        self.deliver_vote_list(j, i, &list_j, now, experience(i, j));
        // VoxPopuli: only while i is bootstrapping; j answers only when it
        // is not bootstrapping itself.
        if self.needs_bootstrap(i) {
            self.vox_request(i, j);
        }
    }
}

/// Stable binary encoding: fields in declaration order.
impl rvs_checkpoint::Persist for VoteSamplingConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.b_min);
        enc.usize(self.b_max);
        enc.usize(self.v_max);
        enc.usize(self.k);
        enc.usize(self.max_votes_per_msg);
        self.policy.persist(enc);
        enc.bool(self.revalidate);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(VoteSamplingConfig {
            b_min: dec.usize()?,
            b_max: dec.usize()?,
            v_max: dec.usize()?,
            k: dec.usize()?,
            max_votes_per_msg: dec.usize()?,
            policy: VoteListPolicy::restore(dec)?,
            revalidate: dec.bool()?,
        })
    }
}

/// Stable binary encoding: config, per-node ballots, per-node VoxPopuli
/// caches, then both counter blocks.
impl rvs_checkpoint::Persist for VoteSampling {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.cfg.persist(enc);
        self.ballots.persist(enc);
        self.vox.persist(enc);
        self.counters.persist(enc);
        self.vox_counters.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(VoteSampling {
            cfg: VoteSamplingConfig::restore(dec)?,
            ballots: Vec::restore(dec)?,
            vox: Vec::restore(dec)?,
            counters: VoteCounters::restore(dec)?,
            vox_counters: VoxPopuliCounters::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::Vote;
    use rvs_modcast::{ContentQuality, KeyRegistry, LocalVote, ModerationCastConfig};
    use rvs_sim::SwarmId;

    const N: usize = 12;

    fn setup() -> (VoteSampling, ModerationCast, KeyRegistry, DetRng) {
        let vs = VoteSampling::new(N, VoteSamplingConfig::default());
        let mc = ModerationCast::new(N, ModerationCastConfig::default());
        let reg = KeyRegistry::new(N, 3);
        (vs, mc, reg, DetRng::new(17))
    }

    /// Give nodes 1..=count a positive opinion on moderator 0.
    fn seed_votes(mc: &mut ModerationCast, reg: &KeyRegistry, count: usize) {
        mc.publish(
            reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        for v in 1..=count {
            mc.set_opinion(
                NodeId::from_index(v),
                NodeId(0),
                LocalVote::Approve,
                SimTime::from_secs(v as u64),
            );
        }
    }

    #[test]
    fn encounter_merges_both_directions_when_experienced() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        seed_votes(&mut mc, &reg, 4);
        vs.encounter(
            NodeId(1),
            NodeId(2),
            &mc,
            SimTime::from_mins(1),
            |_, _| true,
            &mut rng,
        );
        assert_eq!(vs.ballot(NodeId(1)).unique_voters(), 1);
        assert_eq!(vs.ballot(NodeId(2)).unique_voters(), 1);
        assert_eq!(vs.ballot(NodeId(1)).tally(NodeId(0)), (1, 0));
    }

    #[test]
    fn inexperienced_senders_are_ignored() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        seed_votes(&mut mc, &reg, 4);
        // Node 2 is not experienced from node 1's standpoint (and vice
        // versa): nothing merges.
        vs.encounter(
            NodeId(1),
            NodeId(2),
            &mc,
            SimTime::from_mins(1),
            |_, _| false,
            &mut rng,
        );
        assert!(vs.ballot(NodeId(1)).is_empty());
        assert!(vs.ballot(NodeId(2)).is_empty());
    }

    #[test]
    fn asymmetric_experience_merges_one_way() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        seed_votes(&mut mc, &reg, 4);
        // Only node 1 considers node 2 experienced.
        let e = |a: NodeId, b: NodeId| a == NodeId(1) && b == NodeId(2);
        vs.encounter(
            NodeId(1),
            NodeId(2),
            &mc,
            SimTime::from_mins(1),
            e,
            &mut rng,
        );
        assert_eq!(vs.ballot(NodeId(1)).unique_voters(), 1);
        assert!(vs.ballot(NodeId(2)).is_empty());
    }

    #[test]
    fn nodes_without_votes_send_empty_lists() {
        let (mut vs, mc, _reg, mut rng) = setup();
        vs.encounter(
            NodeId(3),
            NodeId(4),
            &mc,
            SimTime::from_mins(1),
            |_, _| true,
            &mut rng,
        );
        assert!(vs.ballot(NodeId(3)).is_empty());
        assert!(vs.ballot(NodeId(4)).is_empty());
    }

    #[test]
    fn bootstrap_ranking_uses_voxpopuli() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        seed_votes(&mut mc, &reg, 6);
        // Fill node 9's ballot past B_min by meeting voters 1..=6.
        for v in 1..=6 {
            vs.encounter(
                NodeId(9),
                NodeId::from_index(v),
                &mc,
                SimTime::from_mins(v as u64),
                |_, _| true,
                &mut rng,
            );
        }
        assert!(!vs.needs_bootstrap(NodeId(9)));
        assert_eq!(vs.ranking_of(NodeId(9)).top(), Some(NodeId(0)));
        // Node 10 is new: one encounter with node 9 bootstraps its view via
        // the top-K response even though it has sampled only one voter.
        vs.encounter(
            NodeId(10),
            NodeId(9),
            &mc,
            SimTime::from_mins(30),
            |_, _| true,
            &mut rng,
        );
        assert!(vs.needs_bootstrap(NodeId(10)));
        assert_eq!(vs.ranking_of(NodeId(10)).top(), Some(NodeId(0)));
    }

    #[test]
    fn bootstrapping_nodes_do_not_answer_voxpopuli() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        seed_votes(&mut mc, &reg, 2);
        // Node 5 has only 2 unique voters (< B_min): it must not answer.
        for v in 1..=2 {
            vs.encounter(
                NodeId(5),
                NodeId::from_index(v),
                &mc,
                SimTime::from_mins(v as u64),
                |_, _| true,
                &mut rng,
            );
        }
        assert!(vs.needs_bootstrap(NodeId(5)));
        assert_eq!(vs.topk_response(NodeId(5)), None);
        // And an encounter with it leaves the requester's cache empty.
        vs.encounter(
            NodeId(6),
            NodeId(5),
            &mc,
            SimTime::from_mins(9),
            |_, _| true,
            &mut rng,
        );
        assert!(vs.vox_cache(NodeId(6)).is_empty());
    }

    #[test]
    fn graduated_nodes_stop_requesting_topk() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        seed_votes(&mut mc, &reg, 6);
        for v in 1..=6 {
            vs.encounter(
                NodeId(9),
                NodeId::from_index(v),
                &mc,
                SimTime::from_mins(v as u64),
                |_, _| true,
                &mut rng,
            );
        }
        // Node 9 is past B_min; further encounters must not grow its cache.
        let before = vs.vox_cache(NodeId(9)).len();
        vs.encounter(
            NodeId(9),
            NodeId(1),
            &mc,
            SimTime::from_mins(60),
            |_, _| true,
            &mut rng,
        );
        assert_eq!(vs.vox_cache(NodeId(9)).len(), before);
    }

    #[test]
    fn ranking_orders_m1_m2_m3_from_votes() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        // M0 gets positives, M1 nothing, M2 negatives — the Figure 6 shape.
        mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        mc.publish(
            &reg,
            NodeId(1),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        mc.publish(
            &reg,
            NodeId(2),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        // Five voters so node 11's ballot reaches B_min = 5 unique voters.
        for v in 3..=7 {
            mc.set_opinion(
                NodeId(v),
                NodeId(0),
                LocalVote::Approve,
                SimTime::from_secs(v as u64),
            );
            mc.set_opinion(
                NodeId(v),
                NodeId(2),
                LocalVote::Disapprove,
                SimTime::from_secs(v as u64),
            );
        }
        for v in 3..=8 {
            vs.encounter(
                NodeId(11),
                NodeId(v),
                &mc,
                SimTime::from_mins(v as u64),
                |_, _| true,
                &mut rng,
            );
        }
        let ranking = vs.ranking_of(NodeId(11));
        assert_eq!(ranking.ranked.first(), Some(&NodeId(0)));
        assert_eq!(ranking.ranked.last(), Some(&NodeId(2)));
        // Votes tally: M0 has 5 positives, M2 has 5 negatives.
        assert_eq!(vs.ballot(NodeId(11)).tally(NodeId(0)), (5, 0));
        assert_eq!(vs.ballot(NodeId(11)).tally(NodeId(2)), (0, 5));
    }

    #[test]
    fn rejected_sender_keeps_votes_by_default() {
        let (mut vs, mut mc, reg, mut rng) = setup();
        seed_votes(&mut mc, &reg, 3);
        // First contact accepted, second rejected: without revalidation the
        // earlier votes survive.
        vs.encounter(
            NodeId(9),
            NodeId(1),
            &mc,
            SimTime::from_mins(1),
            |_, _| true,
            &mut rng,
        );
        assert_eq!(vs.ballot(NodeId(9)).unique_voters(), 1);
        vs.encounter(
            NodeId(9),
            NodeId(1),
            &mc,
            SimTime::from_mins(2),
            |_, _| false,
            &mut rng,
        );
        assert_eq!(vs.ballot(NodeId(9)).unique_voters(), 1);
    }

    #[test]
    fn revalidation_drops_rejected_senders_votes() {
        let cfg = VoteSamplingConfig {
            revalidate: true,
            ..Default::default()
        };
        let mut vs = VoteSampling::new(N, cfg);
        let mut mc = ModerationCast::new(N, ModerationCastConfig::default());
        let reg = KeyRegistry::new(N, 3);
        let mut rng = DetRng::new(17);
        seed_votes(&mut mc, &reg, 3);
        vs.encounter(
            NodeId(9),
            NodeId(1),
            &mc,
            SimTime::from_mins(1),
            |_, _| true,
            &mut rng,
        );
        assert_eq!(vs.ballot(NodeId(9)).unique_voters(), 1);
        // The sender no longer passes E (e.g. the node raised its adaptive
        // threshold): its earlier contribution is shed.
        vs.encounter(
            NodeId(9),
            NodeId(1),
            &mc,
            SimTime::from_mins(2),
            |_, _| false,
            &mut rng,
        );
        assert_eq!(vs.ballot(NodeId(9)).unique_voters(), 0);
    }

    #[test]
    fn self_encounter_is_noop() {
        let (mut vs, mc, _reg, mut rng) = setup();
        vs.encounter(
            NodeId(1),
            NodeId(1),
            &mc,
            SimTime::ZERO,
            |_, _| true,
            &mut rng,
        );
        assert!(vs.ballot(NodeId(1)).is_empty());
    }

    #[test]
    fn vote_list_respects_message_budget() {
        let cfg = VoteSamplingConfig {
            max_votes_per_msg: 3,
            ..Default::default()
        };
        let mut vs = VoteSampling::new(N, cfg);
        let mut mc = ModerationCast::new(N, ModerationCastConfig::default());
        for m in 1..10u32 {
            mc.set_opinion(
                NodeId(0),
                NodeId(m),
                LocalVote::Approve,
                SimTime::from_secs(m as u64),
            );
        }
        let mut rng = DetRng::new(5);
        let list = vs.vote_list_of(NodeId(0), &mc, &mut rng);
        assert_eq!(list.len(), 3);
        // And downstream merge sees exactly that many entries.
        vs.deliver_vote_list(NodeId(0), NodeId(1), &list, SimTime::from_mins(1), true);
        assert_eq!(vs.ballot(NodeId(1)).len(), 3);
        assert_eq!(
            vs.ballot(NodeId(1))
                .iter()
                .map(|(_, _, v, _)| v)
                .filter(|&v| v == Vote::Positive)
                .count(),
            3
        );
    }
}
