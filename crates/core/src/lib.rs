//! The paper's primary contribution: robust vote sampling (paper §V).
//!
//! Two related protocols plus ranking machinery:
//!
//! * **BallotBox** ([`ballot`], [`protocol`]) — every peer is its own
//!   pollster: it asks randomly sampled peers for their *local vote list*
//!   (their own first-hand votes on moderators, never hearsay), accepts the
//!   list only if the sender passes the experience function `E`, and merges
//!   it into a bounded *local ballot box* keyed one-vote-per-(voter,
//!   moderator). Accumulated ballots are never forwarded — that is what
//!   makes the sample collusion-resistant.
//! * **VoxPopuli** ([`voxpopuli`]) — the bootstrap path: a node whose
//!   ballot box holds votes from fewer than `B_min` unique peers asks
//!   others for their top-K moderator lists; only peers *not* themselves
//!   bootstrapping answer; the node rank-merges the last `V_max` lists by
//!   rank averaging (missing ⇒ rank K+1).
//! * **Ranking** ([`ranking`]) — simple vote summation over the ballot box
//!   (the paper leaves the exact method open) and top-K extraction.
//!
//! [`protocol::VoteSampling`] assembles the per-node state machines into
//! the population-wide protocol of Fig 3, parameterised by the experience
//! function so honest and adversarial encounters run the same code.

pub mod ballot;
pub mod board;
pub mod protocol;
pub mod ranking;
pub mod validate;
pub mod vote;
pub mod voxpopuli;

pub use ballot::{BallotBox, MergeOutcome};
pub use board::{BoardEntry, ModeratorBoard};
pub use protocol::{VoteSampling, VoteSamplingConfig};
pub use ranking::{
    rank_ballot, rank_ballot_positive, rank_ballot_scored, rank_ballot_with_known, ScoreMethod,
    TopKList,
};
pub use validate::{validate_topk, validate_vote_list};
pub use vote::{select_votes, Vote, VoteEntry, VoteListPolicy};
pub use voxpopuli::{MergeMethod, VoxCache};
