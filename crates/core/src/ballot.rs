//! The local ballot box (paper §V-A).
//!
//! "each entry contains four items: mapping a unique moderator ID to a
//! vote, a time stamp and a unique peer ID … moderators may appear several
//! times in the list, recording votes for the same moderator received from
//! different peers. … The local ballot box has a maximum size of B_max
//! votes from unique peers — beyond which new votes replace the oldest
//! votes."
//!
//! Invariants enforced (and property-tested in `tests/`):
//!
//! * at most one entry per `(voter, moderator)` pair — one node, one vote;
//! * votes from at most `B_max` distinct voters; admitting voter number
//!   `B_max + 1` evicts the least-recently-heard voter wholesale;
//! * merging a voter's fresh list replaces that voter's earlier entries.

use crate::vote::{Vote, VoteEntry};
use rvs_sim::{ModeratorId, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a [`BallotBox::merge`] actually did — how many vote entries were
/// written and how many voters were evicted to respect `B_max`. Consumed
/// by the telemetry layer; safe to ignore everywhere else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Vote entries written from the incoming list.
    pub merged: usize,
    /// Distinct voters evicted wholesale to stay within `B_max`.
    pub evicted_voters: usize,
}

/// A bounded sample of other peers' votes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BallotBox {
    b_max: usize,
    /// `(voter, moderator) → (vote, received_at)`.
    entries: BTreeMap<(NodeId, ModeratorId), (Vote, SimTime)>,
    /// Most recent time each voter's list was merged.
    last_heard: BTreeMap<NodeId, SimTime>,
}

impl BallotBox {
    /// An empty ballot box sampling at most `b_max` unique voters.
    pub fn new(b_max: usize) -> Self {
        assert!(b_max > 0, "B_max must be positive");
        BallotBox {
            b_max,
            entries: BTreeMap::new(),
            last_heard: BTreeMap::new(),
        }
    }

    /// The configured `B_max`.
    pub fn b_max(&self) -> usize {
        self.b_max
    }

    /// Number of distinct voters currently sampled.
    pub fn unique_voters(&self) -> usize {
        self.last_heard.len()
    }

    /// Total vote entries stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no votes are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge `voter`'s local vote list received at `now`. Replaces any
    /// earlier contribution from the same voter (their list is the current
    /// truth about their votes). Evicts the least-recently-heard voter when
    /// the unique-voter cap would be exceeded. Reports what happened so
    /// callers can account for merged votes and evictions.
    pub fn merge(&mut self, voter: NodeId, list: &[VoteEntry], now: SimTime) -> MergeOutcome {
        if list.is_empty() {
            return MergeOutcome::default();
        }
        // Replace the voter's previous contribution.
        self.forget_voter(voter);
        // Make room.
        let mut evicted_voters = 0;
        while self.last_heard.len() >= self.b_max {
            // The loop guard keeps the map non-empty whenever b_max > 0; a
            // b_max of 0 leaves nothing to evict, so stop instead of panic.
            let Some(oldest) = self
                .last_heard
                .iter()
                .min_by_key(|(&v, &t)| (t, v))
                .map(|(&v, _)| v)
            else {
                break;
            };
            self.forget_voter(oldest);
            evicted_voters += 1;
        }
        let before = self.entries.len();
        for e in list {
            self.entries.insert((voter, e.moderator), (e.vote, now));
        }
        self.last_heard.insert(voter, now);
        MergeOutcome {
            merged: self.entries.len() - before,
            evicted_voters,
        }
    }

    /// Drop every entry contributed by `voter`.
    pub fn forget_voter(&mut self, voter: NodeId) {
        if self.last_heard.remove(&voter).is_some() {
            self.entries.retain(|&(v, _), _| v != voter);
        }
    }

    /// Tally `(positive, negative)` for one moderator.
    pub fn tally(&self, moderator: ModeratorId) -> (usize, usize) {
        let mut pos = 0;
        let mut neg = 0;
        for (&(_, m), &(vote, _)) in &self.entries {
            if m == moderator {
                match vote {
                    Vote::Positive => pos += 1,
                    Vote::Negative => neg += 1,
                }
            }
        }
        (pos, neg)
    }

    /// All moderators with at least one sampled vote, ascending.
    pub fn moderators(&self) -> Vec<ModeratorId> {
        let mut v: Vec<ModeratorId> = self.entries.keys().map(|&(_, m)| m).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterate over all entries: `(voter, moderator, vote, received_at)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ModeratorId, Vote, SimTime)> + '_ {
        self.entries
            .iter()
            .map(|(&(v, m), &(vote, t))| (v, m, vote, t))
    }

    /// Vote dispersion in `[0, 1]`: mean over sampled moderators of
    /// `min(pos, neg) / (pos + neg)`. High dispersion — conflicting votes
    /// on the same moderators — is the attack signal driving the adaptive
    /// threshold (paper §VII). Returns 0 for an empty box.
    pub fn dispersion(&self) -> f64 {
        let mods = self.moderators();
        if mods.is_empty() {
            return 0.0;
        }
        let sum: f64 = mods
            .iter()
            .map(|&m| {
                let (p, n) = self.tally(m);
                let total = p + n;
                if total == 0 {
                    0.0
                } else {
                    p.min(n) as f64 / total as f64
                }
            })
            .sum();
        sum / mods.len() as f64
    }
}

/// Stable binary encoding: `B_max`, entries, last-heard map. Restore
/// rejects a zero `B_max` as corrupt rather than tripping the constructor
/// assertion.
impl rvs_checkpoint::Persist for BallotBox {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.b_max);
        self.entries.persist(enc);
        self.last_heard.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let b_max = dec.usize()?;
        if b_max == 0 {
            return Err(rvs_checkpoint::DecodeError::Corrupt(
                "BallotBox B_max must be positive".to_string(),
            ));
        }
        Ok(BallotBox {
            b_max,
            entries: BTreeMap::restore(dec)?,
            last_heard: BTreeMap::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(m: u32, vote: Vote) -> VoteEntry {
        VoteEntry {
            moderator: NodeId(m),
            vote,
            made_at: SimTime::ZERO,
        }
    }

    #[test]
    fn merge_and_tally() {
        let mut bb = BallotBox::new(10);
        bb.merge(NodeId(1), &[e(0, Vote::Positive)], SimTime::from_secs(1));
        bb.merge(NodeId(2), &[e(0, Vote::Positive)], SimTime::from_secs(2));
        bb.merge(NodeId(3), &[e(0, Vote::Negative)], SimTime::from_secs(3));
        assert_eq!(bb.tally(NodeId(0)), (2, 1));
        assert_eq!(bb.unique_voters(), 3);
        assert_eq!(bb.len(), 3);
    }

    #[test]
    fn one_vote_per_voter_per_moderator() {
        let mut bb = BallotBox::new(10);
        bb.merge(NodeId(1), &[e(0, Vote::Positive)], SimTime::from_secs(1));
        // The same voter re-encountered with a changed vote: replaced, not
        // double counted.
        bb.merge(NodeId(1), &[e(0, Vote::Negative)], SimTime::from_secs(5));
        assert_eq!(bb.tally(NodeId(0)), (0, 1));
        assert_eq!(bb.len(), 1);
    }

    #[test]
    fn remerge_replaces_whole_contribution() {
        let mut bb = BallotBox::new(10);
        bb.merge(
            NodeId(1),
            &[e(0, Vote::Positive), e(5, Vote::Negative)],
            SimTime::from_secs(1),
        );
        // Fresh list no longer mentions moderator 5.
        bb.merge(NodeId(1), &[e(0, Vote::Positive)], SimTime::from_secs(9));
        assert_eq!(bb.tally(NodeId(5)), (0, 0));
        assert_eq!(bb.moderators(), vec![NodeId(0)]);
    }

    #[test]
    fn bmax_evicts_least_recently_heard() {
        let mut bb = BallotBox::new(3);
        for v in 1..=3 {
            bb.merge(
                NodeId(v),
                &[e(0, Vote::Positive)],
                SimTime::from_secs(v as u64),
            );
        }
        assert_eq!(bb.unique_voters(), 3);
        // Voter 4 arrives: voter 1 (oldest) evicted.
        bb.merge(NodeId(4), &[e(0, Vote::Negative)], SimTime::from_secs(10));
        assert_eq!(bb.unique_voters(), 3);
        assert_eq!(bb.tally(NodeId(0)), (2, 1));
        let voters: Vec<NodeId> = bb.iter().map(|(v, _, _, _)| v).collect();
        assert!(!voters.contains(&NodeId(1)));
    }

    #[test]
    fn refreshed_voter_survives_eviction_round() {
        let mut bb = BallotBox::new(2);
        bb.merge(NodeId(1), &[e(0, Vote::Positive)], SimTime::from_secs(1));
        bb.merge(NodeId(2), &[e(0, Vote::Positive)], SimTime::from_secs(2));
        // Voter 1 heard again: now fresher than voter 2.
        bb.merge(NodeId(1), &[e(0, Vote::Positive)], SimTime::from_secs(3));
        bb.merge(NodeId(3), &[e(0, Vote::Positive)], SimTime::from_secs(4));
        let voters: Vec<NodeId> = {
            let mut v: Vec<NodeId> = bb.iter().map(|(v, _, _, _)| v).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(voters, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn empty_list_is_ignored() {
        let mut bb = BallotBox::new(5);
        bb.merge(NodeId(1), &[], SimTime::from_secs(1));
        assert_eq!(bb.unique_voters(), 0);
        assert!(bb.is_empty());
    }

    #[test]
    fn dispersion_zero_when_unanimous() {
        let mut bb = BallotBox::new(10);
        for v in 1..=4 {
            bb.merge(
                NodeId(v),
                &[e(0, Vote::Positive)],
                SimTime::from_secs(v as u64),
            );
        }
        assert_eq!(bb.dispersion(), 0.0);
    }

    #[test]
    fn dispersion_high_when_split() {
        let mut bb = BallotBox::new(10);
        bb.merge(NodeId(1), &[e(0, Vote::Positive)], SimTime::from_secs(1));
        bb.merge(NodeId(2), &[e(0, Vote::Negative)], SimTime::from_secs(2));
        assert!((bb.dispersion() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dispersion_averages_over_moderators() {
        let mut bb = BallotBox::new(10);
        // Moderator 0: split (0.5). Moderator 1: unanimous (0.0).
        bb.merge(
            NodeId(1),
            &[e(0, Vote::Positive), e(1, Vote::Positive)],
            SimTime::from_secs(1),
        );
        bb.merge(
            NodeId(2),
            &[e(0, Vote::Negative), e(1, Vote::Positive)],
            SimTime::from_secs(2),
        );
        assert!((bb.dispersion() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "B_max must be positive")]
    fn zero_bmax_rejected() {
        BallotBox::new(0);
    }
}
