//! VoxPopuli rank-merging cache (paper §V-C).
//!
//! "Each node executing VoxPopuli maintains a local cache of the last
//! V_max top-K lists received and performs a merge operation to produce
//! its own top-K list … We apply simple averaging of the rank of each
//! moderator over all stored top-K lists. Where a moderator does not
//! appear in a list they are assumed to have rank K+1 for that list."

use crate::ranking::TopKList;
use rvs_sim::ModeratorId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How cached top-K lists are merged into one ranking. The paper applies
/// "simple averaging of the rank" but notes "any rank merging method could
/// be used"; the alternatives are compared by `ablation_rank_merge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeMethod {
    /// Mean rank over all lists, absent ⇒ rank `K+1` (the paper's method).
    MeanRank,
    /// Borda count: a moderator at position `p` of a list earns `K − p`
    /// points; absent earns 0; highest total wins.
    Borda,
    /// Median rank over all lists, absent ⇒ rank `K+1`; robust to a
    /// minority of outlier (or fabricated) lists.
    MedianRank,
}

/// Bounded cache of received top-K lists with rank-average merging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoxCache {
    v_max: usize,
    k: usize,
    lists: VecDeque<TopKList>,
}

impl VoxCache {
    /// A cache retaining the last `v_max` lists of length ≤ `k`.
    pub fn new(v_max: usize, k: usize) -> Self {
        assert!(v_max > 0, "V_max must be positive");
        assert!(k > 0, "K must be positive");
        VoxCache {
            v_max,
            k,
            lists: VecDeque::with_capacity(v_max),
        }
    }

    /// The configured `V_max`.
    pub fn v_max(&self) -> usize {
        self.v_max
    }

    /// The configured `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when nothing has been received yet.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Store a received list (truncated to K); the oldest list falls out
    /// beyond `V_max`.
    pub fn push(&mut self, mut list: TopKList) {
        list.ranked.truncate(self.k);
        if self.lists.len() == self.v_max {
            self.lists.pop_front();
        }
        self.lists.push_back(list);
    }

    /// Drop all cached lists (e.g. when graduating to BallotBox ranking).
    pub fn clear(&mut self) {
        self.lists.clear();
    }

    /// Rank-average merge of the cached lists (the paper's method):
    /// each moderator's score is its mean rank over all lists, counting
    /// rank `K+1` where absent; lower is better. Ties break by moderator
    /// id. Returns an empty list when no lists are cached.
    pub fn merged(&self) -> TopKList {
        self.merged_with(MergeMethod::MeanRank)
    }

    /// Merge the cached lists with an explicit [`MergeMethod`].
    pub fn merged_with(&self, method: MergeMethod) -> TopKList {
        if self.lists.is_empty() {
            return TopKList { ranked: Vec::new() };
        }
        let mentioned: Vec<ModeratorId> = {
            let mut v: Vec<ModeratorId> = self
                .lists
                .iter()
                .flat_map(|l| l.ranked.iter().copied())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let absent_rank = (self.k + 1) as f64;
        // Per-moderator score; lower is better for every method (Borda is
        // negated to fit).
        let mut scored: Vec<(f64, ModeratorId)> = mentioned
            .into_iter()
            .map(|m| {
                let ranks: Vec<f64> = self
                    .lists
                    .iter()
                    .map(|l| {
                        l.ranked
                            .iter()
                            .position(|&x| x == m)
                            .map(|p| (p + 1) as f64)
                            .unwrap_or(absent_rank)
                    })
                    .collect();
                let score = match method {
                    MergeMethod::MeanRank => ranks.iter().sum::<f64>() / ranks.len() as f64,
                    MergeMethod::Borda => {
                        // K − rank points per list (absent ⇒ 0); negate so
                        // lower is better.
                        -ranks
                            .iter()
                            // rvs-lint: allow(float-total-order) -- ranks are finite small integers cast to f64, so no NaN can reach this clamp
                            .map(|&r| (self.k as f64 + 1.0 - r).max(0.0))
                            .sum::<f64>()
                    }
                    MergeMethod::MedianRank => {
                        let mut sorted = ranks.clone();
                        // total_cmp: no panic path, and ranks are finite
                        // positive values so the IEEE total order agrees
                        // with the numeric one.
                        sorted.sort_by(f64::total_cmp);
                        let mid = sorted.len() / 2;
                        if sorted.len() % 2 == 1 {
                            sorted[mid]
                        } else {
                            (sorted[mid - 1] + sorted[mid]) / 2.0
                        }
                    }
                };
                (score, m)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        TopKList {
            ranked: scored.into_iter().take(self.k).map(|(_, m)| m).collect(),
        }
    }

    /// Iterate over the cached lists, oldest first.
    pub fn lists(&self) -> impl Iterator<Item = &TopKList> + '_ {
        self.lists.iter()
    }
}

/// Stable binary encoding: `V_max`, `K`, cached lists oldest-first.
/// Restore rejects zero bounds as corrupt rather than tripping the
/// constructor assertions.
impl rvs_checkpoint::Persist for VoxCache {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.v_max);
        enc.usize(self.k);
        self.lists.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let v_max = dec.usize()?;
        let k = dec.usize()?;
        if v_max == 0 || k == 0 {
            return Err(rvs_checkpoint::DecodeError::Corrupt(
                "VoxCache V_max and K must be positive".to_string(),
            ));
        }
        Ok(VoxCache {
            v_max,
            k,
            lists: VecDeque::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::NodeId;

    fn list(ids: &[u32]) -> TopKList {
        TopKList {
            ranked: ids.iter().map(|&i| NodeId(i)).collect(),
        }
    }

    #[test]
    fn empty_cache_merges_to_empty() {
        let c = VoxCache::new(10, 3);
        assert!(c.merged().is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn single_list_is_identity() {
        let mut c = VoxCache::new(10, 3);
        c.push(list(&[2, 0, 1]));
        assert_eq!(c.merged(), list(&[2, 0, 1]));
    }

    #[test]
    fn unanimous_lists_agree() {
        let mut c = VoxCache::new(10, 3);
        for _ in 0..5 {
            c.push(list(&[0, 1, 2]));
        }
        assert_eq!(c.merged(), list(&[0, 1, 2]));
    }

    #[test]
    fn majority_wins_rank_average() {
        let mut c = VoxCache::new(10, 3);
        c.push(list(&[0, 1, 2]));
        c.push(list(&[0, 1, 2]));
        c.push(list(&[1, 0, 2]));
        // Mean ranks: M0 = (1+1+2)/3 = 4/3; M1 = (2+2+1)/3 = 5/3.
        assert_eq!(c.merged(), list(&[0, 1, 2]));
    }

    #[test]
    fn absent_moderator_counts_as_k_plus_one() {
        let mut c = VoxCache::new(10, 3);
        c.push(list(&[0])); // M1 absent: rank 4 for this list
        c.push(list(&[1, 0]));
        // M0: (1 + 2)/2 = 1.5. M1: (4 + 1)/2 = 2.5.
        assert_eq!(c.merged(), list(&[0, 1]));
    }

    #[test]
    fn vmax_evicts_oldest() {
        let mut c = VoxCache::new(2, 3);
        c.push(list(&[9, 8, 7])); // will be evicted
        c.push(list(&[0, 1, 2]));
        c.push(list(&[0, 1, 2]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.merged(), list(&[0, 1, 2]));
    }

    #[test]
    fn lists_longer_than_k_are_truncated() {
        let mut c = VoxCache::new(4, 2);
        c.push(list(&[0, 1, 2, 3]));
        assert_eq!(c.merged().len(), 2);
    }

    #[test]
    fn merged_truncates_to_k() {
        let mut c = VoxCache::new(4, 3);
        c.push(list(&[0, 1, 2]));
        c.push(list(&[3, 4, 5]));
        assert_eq!(c.merged().len(), 3);
    }

    #[test]
    fn tie_breaks_by_id() {
        let mut c = VoxCache::new(4, 2);
        c.push(list(&[5, 3]));
        c.push(list(&[3, 5]));
        // Equal mean rank 1.5 each: lower id first.
        assert_eq!(c.merged(), list(&[3, 5]));
    }

    #[test]
    fn clear_resets() {
        let mut c = VoxCache::new(2, 2);
        c.push(list(&[1]));
        c.clear();
        assert!(c.is_empty());
        assert!(c.merged().is_empty());
    }

    #[test]
    #[should_panic(expected = "V_max must be positive")]
    fn zero_vmax_rejected() {
        VoxCache::new(0, 3);
    }

    #[test]
    fn borda_rewards_breadth_of_mentions() {
        let mut c = VoxCache::new(10, 3);
        // M0 appears twice at rank 2; M1 once at rank 1.
        c.push(list(&[1, 0]));
        c.push(list(&[2, 0]));
        // Borda: M0 = 2+2 = 4; M1 = 3; M2 = 3.
        let merged = c.merged_with(MergeMethod::Borda);
        assert_eq!(merged.top(), Some(NodeId(0)));
    }

    #[test]
    fn median_rank_resists_outlier_lists() {
        let mut c = VoxCache::new(10, 3);
        // Three honest lists rank M1 first; one fabricated list pushes M9.
        for _ in 0..3 {
            c.push(list(&[1, 2]));
        }
        c.push(list(&[9]));
        let median = c.merged_with(MergeMethod::MedianRank);
        assert_eq!(median.top(), Some(NodeId(1)));
        // M9's median rank is K+1 (absent from most lists): ranked last or
        // not at all ahead of the honest pair.
        assert_ne!(median.ranked.first(), Some(&NodeId(9)));
    }

    #[test]
    fn merge_methods_agree_on_unanimous_input() {
        let mut c = VoxCache::new(10, 3);
        for _ in 0..4 {
            c.push(list(&[0, 1, 2]));
        }
        for m in [
            MergeMethod::MeanRank,
            MergeMethod::Borda,
            MergeMethod::MedianRank,
        ] {
            assert_eq!(c.merged_with(m), list(&[0, 1, 2]), "{m:?}");
        }
    }

    #[test]
    fn lists_iterates_in_insertion_order() {
        let mut c = VoxCache::new(3, 3);
        c.push(list(&[1]));
        c.push(list(&[2]));
        let got: Vec<_> = c.lists().cloned().collect();
        assert_eq!(got, vec![list(&[1]), list(&[2])]);
    }
}
