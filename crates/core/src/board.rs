//! The moderator leaderboard (paper §V-A).
//!
//! "Another possible use for the vote sample information is to display a
//! screen listing the top-K moderators themselves along with their
//! estimated percentage of the popular vote and other associated
//! information. We believe such a screen could psychologically incentivise
//! moderators to produce good moderations since they can see themselves
//! rise in the ranks."

use crate::ballot::BallotBox;
use crate::ranking::rank_ballot;
use rvs_sim::ModeratorId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of the moderator leaderboard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoardEntry {
    /// Rank, 1-based.
    pub rank: usize,
    /// The moderator.
    pub moderator: ModeratorId,
    /// Positive votes in the local sample.
    pub positive: usize,
    /// Negative votes in the local sample.
    pub negative: usize,
    /// Estimated share of the popular vote: this moderator's positive
    /// votes as a fraction of all sampled positive votes (0 when the
    /// sample holds no positive votes at all).
    pub vote_share: f64,
    /// Net approval among voters on this moderator, in `[-1, 1]`.
    pub approval: f64,
}

/// The top-K moderator screen built from a local ballot box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeratorBoard {
    /// Rows in rank order.
    pub entries: Vec<BoardEntry>,
    /// Unique voters behind the sample (the poll's effective size).
    pub sample_size: usize,
}

impl ModeratorBoard {
    /// Build the board for the `k` best moderators in `ballot`.
    pub fn from_ballot(ballot: &BallotBox, k: usize) -> ModeratorBoard {
        let ranking = rank_ballot(ballot, k);
        let total_positive: usize = ballot
            .moderators()
            .into_iter()
            .map(|m| ballot.tally(m).0)
            .sum();
        let entries = ranking
            .ranked
            .iter()
            .enumerate()
            .map(|(idx, &moderator)| {
                let (positive, negative) = ballot.tally(moderator);
                let voters = positive + negative;
                BoardEntry {
                    rank: idx + 1,
                    moderator,
                    positive,
                    negative,
                    vote_share: if total_positive == 0 {
                        0.0
                    } else {
                        positive as f64 / total_positive as f64
                    },
                    approval: if voters == 0 {
                        0.0
                    } else {
                        (positive as f64 - negative as f64) / voters as f64
                    },
                }
            })
            .collect();
        ModeratorBoard {
            entries,
            sample_size: ballot.unique_voters(),
        }
    }

    /// The board row for `moderator`, if ranked.
    pub fn entry(&self, moderator: ModeratorId) -> Option<&BoardEntry> {
        self.entries.iter().find(|e| e.moderator == moderator)
    }
}

impl fmt::Display for ModeratorBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>10} {:>6} {:>6} {:>8} {:>9}",
            "rank", "moderator", "+", "-", "share", "approval"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:>4} {:>10} {:>6} {:>6} {:>7.1}% {:>+9.2}",
                e.rank,
                e.moderator.to_string(),
                e.positive,
                e.negative,
                e.vote_share * 100.0,
                e.approval
            )?;
        }
        write!(f, "(sample: {} unique voters)", self.sample_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::{Vote, VoteEntry};
    use rvs_sim::{NodeId, SimTime};

    fn ballot() -> BallotBox {
        let mut bb = BallotBox::new(100);
        let e = |m: u32, vote| VoteEntry {
            moderator: NodeId(m),
            vote,
            made_at: SimTime::ZERO,
        };
        // M0: 3+, 0-. M1: 1+, 0-. M2: 0+, 2-.
        bb.merge(
            NodeId(10),
            &[e(0, Vote::Positive), e(2, Vote::Negative)],
            SimTime::from_secs(1),
        );
        bb.merge(
            NodeId(11),
            &[e(0, Vote::Positive), e(2, Vote::Negative)],
            SimTime::from_secs(2),
        );
        bb.merge(
            NodeId(12),
            &[e(0, Vote::Positive), e(1, Vote::Positive)],
            SimTime::from_secs(3),
        );
        bb
    }

    #[test]
    fn board_ranks_and_counts() {
        let board = ModeratorBoard::from_ballot(&ballot(), 3);
        assert_eq!(board.sample_size, 3);
        assert_eq!(board.entries.len(), 3);
        let top = &board.entries[0];
        assert_eq!((top.rank, top.moderator), (1, NodeId(0)));
        assert_eq!((top.positive, top.negative), (3, 0));
        // 3 of 4 positive votes in the sample.
        assert!((top.vote_share - 0.75).abs() < 1e-12);
        assert_eq!(top.approval, 1.0);
    }

    #[test]
    fn negative_moderator_has_negative_approval() {
        let board = ModeratorBoard::from_ballot(&ballot(), 3);
        let m2 = board.entry(NodeId(2)).expect("ranked");
        assert_eq!(m2.rank, 3);
        assert_eq!(m2.approval, -1.0);
        assert_eq!(m2.vote_share, 0.0);
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let board = ModeratorBoard::from_ballot(&ballot(), 10);
        let sum: f64 = board.entries.iter().map(|e| e.vote_share).sum();
        assert!(sum <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_ballot_gives_empty_board() {
        let bb = BallotBox::new(5);
        let board = ModeratorBoard::from_ballot(&bb, 3);
        assert!(board.entries.is_empty());
        assert_eq!(board.sample_size, 0);
        assert_eq!(board.entry(NodeId(0)), None);
    }

    #[test]
    fn display_renders_rows() {
        let board = ModeratorBoard::from_ballot(&ballot(), 3);
        let text = board.to_string();
        assert!(text.contains("rank"));
        assert!(text.contains("n0"));
        assert!(text.contains("3 unique voters"));
    }
}
