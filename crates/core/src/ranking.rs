//! Moderator ranking from ballot-box samples.
//!
//! The paper deliberately leaves the exact aggregation open ("any suitable
//! method could be applied such as simple summation or more complex
//! proportional approaches"); we implement simple summation — score =
//! positives − negatives — with deterministic tie-breaking, plus the top-K
//! list type exchanged by VoxPopuli.

use crate::ballot::BallotBox;
use rvs_sim::ModeratorId;
use serde::{Deserialize, Serialize};

/// How raw ballot tallies become a moderator score. The paper: "any
/// suitable method could be applied such as simple summation or more
/// complex proportional approaches"; `ablation_rank_merge` compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreMethod {
    /// `positives − negatives` (the default everywhere in this crate).
    Summation,
    /// Laplace-smoothed approval proportion `(p + 1) / (p + n + 2)`:
    /// favours consistently approved moderators over barely-sampled ones
    /// and is insensitive to how *many* votes a popular moderator drew.
    Proportional,
}

/// A ranked list of at most K moderators, best first — the message
/// exchanged by VoxPopuli and the output shown to the user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopKList {
    /// Moderators in rank order (index 0 = best).
    pub ranked: Vec<ModeratorId>,
}

impl TopKList {
    /// The rank (1-based) of `moderator`, or `None` when absent.
    pub fn rank_of(&self, moderator: ModeratorId) -> Option<usize> {
        self.ranked
            .iter()
            .position(|&m| m == moderator)
            .map(|p| p + 1)
    }

    /// The top-ranked moderator, if any.
    pub fn top(&self) -> Option<ModeratorId> {
        self.ranked.first().copied()
    }

    /// Number of moderators listed.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when no moderators are listed.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}

/// Stable binary encoding: the ranked moderator list, best first.
impl rvs_checkpoint::Persist for TopKList {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.ranked.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(TopKList {
            ranked: Vec::restore(dec)?,
        })
    }
}

/// Score and rank the moderators sampled in `ballot`, truncated to `k`.
///
/// Score = positives − negatives (simple summation). Ties break first by
/// more positives (a 5/5 split outranks 0/0), then by lower moderator id so
/// the output is total and deterministic.
pub fn rank_ballot(ballot: &BallotBox, k: usize) -> TopKList {
    rank_ballot_with_known(ballot, std::iter::empty(), k)
}

/// Score and rank with an explicit [`ScoreMethod`], truncated to `k`.
/// Ties break by more positives, then lower moderator id.
pub fn rank_ballot_scored(ballot: &BallotBox, method: ScoreMethod, k: usize) -> TopKList {
    let mut scored: Vec<(f64, usize, ModeratorId)> = ballot
        .moderators()
        .into_iter()
        .map(|m| {
            let (p, n) = ballot.tally(m);
            let score = match method {
                ScoreMethod::Summation => p as f64 - n as f64,
                ScoreMethod::Proportional => (p as f64 + 1.0) / ((p + n) as f64 + 2.0),
            };
            (score, p, m)
        })
        .collect();
    // total_cmp: panic-free and identical to the numeric order here (ballot
    // scores are finite, and equal tallies produce the same +0.0).
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    TopKList {
        ranked: scored.into_iter().take(k).map(|(_, _, m)| m).collect(),
    }
}

/// Rank only the moderators with strictly positive net score — the list a
/// node *recommends* to others.
///
/// VoxPopuli responses use this: "producing a ranked list of moderators
/// truncated to a maximum size of K" from the responder's ballot
/// statistics. A node never recommends a moderator its sample scores at
/// zero or below, so spam moderators and unknowns are simply absent
/// (treated as rank K+1 by the requester's merge).
pub fn rank_ballot_positive(ballot: &BallotBox, k: usize) -> TopKList {
    let mut list = rank_ballot(ballot, usize::MAX);
    list.ranked.retain(|&m| {
        let (p, n) = ballot.tally(m);
        p as i64 - n as i64 > 0
    });
    list.ranked.truncate(k);
    list
}

/// Like [`rank_ballot`], but additionally ranking `known` moderators that
/// the node has metadata from even when no votes were sampled for them
/// (score 0).
///
/// This matters for orderings like the paper's Figure 6: `M2` receives no
/// votes at all, yet the correct popular ordering is `M1 > M2 > M3` —
/// a zero-vote moderator outranks one with net-negative votes. Nodes learn
/// of moderators through ModerationCast, so their local databases supply
/// the `known` set.
pub fn rank_ballot_with_known(
    ballot: &BallotBox,
    known: impl IntoIterator<Item = ModeratorId>,
    k: usize,
) -> TopKList {
    let mut mods = ballot.moderators();
    mods.extend(known);
    mods.sort_unstable();
    mods.dedup();
    let mut scored: Vec<(i64, usize, ModeratorId)> = mods
        .into_iter()
        .map(|m| {
            let (p, n) = ballot.tally(m);
            (p as i64 - n as i64, p, m)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| b.1.cmp(&a.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    TopKList {
        ranked: scored.into_iter().take(k).map(|(_, _, m)| m).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::{Vote, VoteEntry};
    use rvs_sim::{NodeId, SimTime};

    fn e(m: u32, vote: Vote) -> VoteEntry {
        VoteEntry {
            moderator: NodeId(m),
            vote,
            made_at: SimTime::ZERO,
        }
    }

    fn ballot(votes: &[(u32, u32, Vote)]) -> BallotBox {
        // (voter, moderator, vote)
        let mut bb = BallotBox::new(100);
        let mut per_voter: std::collections::BTreeMap<u32, Vec<VoteEntry>> = Default::default();
        for &(v, m, vote) in votes {
            per_voter.entry(v).or_default().push(e(m, vote));
        }
        for (v, list) in per_voter {
            bb.merge(NodeId(v), &list, SimTime::from_secs(v as u64));
        }
        bb
    }

    #[test]
    fn summation_orders_by_net_votes() {
        let bb = ballot(&[
            (1, 0, Vote::Positive),
            (2, 0, Vote::Positive),
            (3, 1, Vote::Positive),
            (4, 2, Vote::Negative),
        ]);
        let top = rank_ballot(&bb, 3);
        assert_eq!(
            top.ranked,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            "M0(+2) > M1(+1) > M2(-1)"
        );
        assert_eq!(top.top(), Some(NodeId(0)));
    }

    #[test]
    fn truncates_to_k() {
        let bb = ballot(&[
            (1, 0, Vote::Positive),
            (2, 1, Vote::Positive),
            (3, 2, Vote::Positive),
            (4, 3, Vote::Positive),
        ]);
        let top = rank_ballot(&bb, 2);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn tie_breaks_by_positive_count_then_id() {
        // M0: +1/-1 (net 0, 1 positive). M1: no votes sampled -> absent.
        // M2: 0/0 impossible; craft M2 with +2/-2 (net 0, 2 positives).
        let bb = ballot(&[
            (1, 0, Vote::Positive),
            (2, 0, Vote::Negative),
            (3, 2, Vote::Positive),
            (4, 2, Vote::Positive),
            (5, 2, Vote::Negative),
            (6, 2, Vote::Negative),
        ]);
        let top = rank_ballot(&bb, 5);
        assert_eq!(top.ranked, vec![NodeId(2), NodeId(0)]);
    }

    #[test]
    fn unvoted_moderators_do_not_appear() {
        let bb = ballot(&[(1, 7, Vote::Negative)]);
        let top = rank_ballot(&bb, 10);
        assert_eq!(top.ranked, vec![NodeId(7)]);
        assert_eq!(top.rank_of(NodeId(7)), Some(1));
        assert_eq!(top.rank_of(NodeId(3)), None);
    }

    #[test]
    fn empty_ballot_gives_empty_list() {
        let bb = BallotBox::new(5);
        let top = rank_ballot(&bb, 3);
        assert!(top.is_empty());
        assert_eq!(top.top(), None);
    }

    #[test]
    fn positive_ranking_excludes_zero_and_negative() {
        // M0: +2. M1: +1/-1 (net 0). M2: -1.
        let bb = ballot(&[
            (1, 0, Vote::Positive),
            (2, 0, Vote::Positive),
            (3, 1, Vote::Positive),
            (4, 1, Vote::Negative),
            (5, 2, Vote::Negative),
        ]);
        let top = rank_ballot_positive(&bb, 3);
        assert_eq!(top.ranked, vec![NodeId(0)], "only net-positive listed");
    }

    #[test]
    fn positive_ranking_truncates_to_k() {
        let bb = ballot(&[
            (1, 0, Vote::Positive),
            (2, 1, Vote::Positive),
            (3, 2, Vote::Positive),
        ]);
        assert_eq!(rank_ballot_positive(&bb, 2).len(), 2);
    }

    #[test]
    fn known_moderators_rank_between_positive_and_negative() {
        // The Figure 6 shape: M0 voted up, M2 voted down, M1 known from
        // its moderation but unvoted — correct order M0 > M1 > M2.
        let bb = ballot(&[(1, 0, Vote::Positive), (2, 2, Vote::Negative)]);
        let top = rank_ballot_with_known(&bb, [NodeId(1)], 3);
        assert_eq!(top.ranked, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn proportional_prefers_consistency_over_volume() {
        // M0: 6+/3- (ratio 0.64 smoothed). M1: 2+/0- (ratio 0.75 smoothed).
        // Summation prefers M0 (+3 vs +2); proportional prefers M1.
        let bb = ballot(&[
            (1, 0, Vote::Positive),
            (2, 0, Vote::Positive),
            (3, 0, Vote::Positive),
            (4, 0, Vote::Positive),
            (5, 0, Vote::Positive),
            (6, 0, Vote::Positive),
            (7, 0, Vote::Negative),
            (8, 0, Vote::Negative),
            (9, 0, Vote::Negative),
            (10, 1, Vote::Positive),
            (11, 1, Vote::Positive),
        ]);
        let summation = rank_ballot_scored(&bb, ScoreMethod::Summation, 2);
        let proportional = rank_ballot_scored(&bb, ScoreMethod::Proportional, 2);
        assert_eq!(summation.top(), Some(NodeId(0)));
        assert_eq!(proportional.top(), Some(NodeId(1)));
    }

    #[test]
    fn summation_method_matches_default_ranking() {
        let bb = ballot(&[
            (1, 0, Vote::Positive),
            (2, 1, Vote::Negative),
            (3, 2, Vote::Positive),
            (4, 2, Vote::Positive),
        ]);
        assert_eq!(
            rank_ballot_scored(&bb, ScoreMethod::Summation, 5),
            rank_ballot(&bb, 5)
        );
    }

    #[test]
    fn known_set_does_not_duplicate_voted_moderators() {
        let bb = ballot(&[(1, 0, Vote::Positive)]);
        let top = rank_ballot_with_known(&bb, [NodeId(0), NodeId(0)], 5);
        assert_eq!(top.ranked, vec![NodeId(0)]);
    }
}
