//! Hostile-input gates for the vote-sampling wire surfaces.
//!
//! Every inbound vote list and VoxPopuli top-K response passes one of
//! these gates before it touches protocol state. The gates are *total*:
//! they never panic, and any input is either accepted or mapped to
//! exactly one [`RejectReason`] (first violation wins, checked in a
//! fixed order). They take the receiving node's view of the world as
//! explicit parameters — population bound, local clock, configured
//! windows — so they stay pure and fuzz-friendly.

use crate::ranking::TopKList;
use crate::vote::VoteEntry;
use rvs_guard::RejectReason;
use rvs_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Validate an inbound vote list against the wire invariants of §V-A:
/// at most `max_len` entries ("nodes send a maximum of 50 votes"), each
/// moderator at most once, moderator ids inside the known population
/// (`max_id`, exclusive — callers add slack for external moderators),
/// timestamps no further than `max_skew` in the future, and — when
/// `replay_window` is non-zero — no older than the window.
pub fn validate_vote_list(
    list: &[VoteEntry],
    max_len: usize,
    max_id: usize,
    now: SimTime,
    max_skew: SimDuration,
    replay_window: SimDuration,
) -> Result<(), RejectReason> {
    if list.len() > max_len {
        return Err(RejectReason::ListTooLong);
    }
    let horizon = now.saturating_add(max_skew);
    let mut seen = BTreeSet::new();
    for e in list {
        if e.moderator.index() >= max_id {
            return Err(RejectReason::InvalidNode);
        }
        if !seen.insert(e.moderator) {
            return Err(RejectReason::DuplicateEntry);
        }
        if e.made_at > horizon {
            return Err(RejectReason::FutureTimestamp);
        }
        if !replay_window.is_zero() && e.made_at.saturating_add(replay_window) < now {
            return Err(RejectReason::StaleTimestamp);
        }
    }
    Ok(())
}

/// Validate an inbound VoxPopuli top-K response: at most `k` ranked
/// moderators, each at most once, ids inside the population bound.
pub fn validate_topk(list: &TopKList, k: usize, max_id: usize) -> Result<(), RejectReason> {
    if list.len() > k {
        return Err(RejectReason::ListTooLong);
    }
    let mut seen = BTreeSet::new();
    for &m in &list.ranked {
        if m.index() >= max_id {
            return Err(RejectReason::InvalidNode);
        }
        if !seen.insert(m) {
            return Err(RejectReason::DuplicateEntry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::Vote;
    use rvs_sim::NodeId;

    fn entry(m: u32, at: SimTime) -> VoteEntry {
        VoteEntry {
            moderator: NodeId(m),
            vote: Vote::Positive,
            made_at: at,
        }
    }

    const NOW: SimTime = SimTime::from_hours(10);

    fn check(list: &[VoteEntry], window: SimDuration) -> Result<(), RejectReason> {
        validate_vote_list(list, 50, 100, NOW, SimDuration::ZERO, window)
    }

    #[test]
    fn honest_list_is_accepted() {
        let list: Vec<VoteEntry> = (0..50).map(|m| entry(m, SimTime::from_hours(1))).collect();
        assert_eq!(check(&list, SimDuration::ZERO), Ok(()));
        assert_eq!(check(&[], SimDuration::ZERO), Ok(()));
    }

    #[test]
    fn overlong_list_is_rejected() {
        let list: Vec<VoteEntry> = (0..51).map(|m| entry(m, SimTime::ZERO)).collect();
        assert_eq!(
            check(&list, SimDuration::ZERO),
            Err(RejectReason::ListTooLong)
        );
    }

    #[test]
    fn duplicate_moderator_is_rejected() {
        let list = [entry(3, SimTime::ZERO), entry(3, SimTime::ZERO)];
        assert_eq!(
            check(&list, SimDuration::ZERO),
            Err(RejectReason::DuplicateEntry)
        );
    }

    #[test]
    fn out_of_population_moderator_is_rejected() {
        let list = [entry(100, SimTime::ZERO)];
        assert_eq!(
            check(&list, SimDuration::ZERO),
            Err(RejectReason::InvalidNode)
        );
    }

    #[test]
    fn future_timestamp_is_rejected_with_skew_honoured() {
        let list = [entry(1, NOW.saturating_add(SimDuration::from_secs(1)))];
        assert_eq!(
            check(&list, SimDuration::ZERO),
            Err(RejectReason::FutureTimestamp)
        );
        assert_eq!(
            validate_vote_list(
                &list,
                50,
                100,
                NOW,
                SimDuration::from_secs(1),
                SimDuration::ZERO
            ),
            Ok(())
        );
    }

    #[test]
    fn stale_timestamp_only_with_window() {
        let ancient = [entry(1, SimTime::ZERO)];
        // Window disabled: arbitrarily old votes are legitimate.
        assert_eq!(check(&ancient, SimDuration::ZERO), Ok(()));
        assert_eq!(
            check(&ancient, SimDuration::from_hours(1)),
            Err(RejectReason::StaleTimestamp)
        );
        // A vote inside the window passes.
        let recent = [entry(1, NOW.saturating_add(SimDuration::ZERO))];
        assert_eq!(check(&recent, SimDuration::from_hours(1)), Ok(()));
    }

    #[test]
    fn topk_gate() {
        let ok = TopKList {
            ranked: vec![NodeId(1), NodeId(2), NodeId(3)],
        };
        assert_eq!(validate_topk(&ok, 3, 100), Ok(()));
        assert_eq!(validate_topk(&ok, 2, 100), Err(RejectReason::ListTooLong));
        let dup = TopKList {
            ranked: vec![NodeId(1), NodeId(1)],
        };
        assert_eq!(
            validate_topk(&dup, 3, 100),
            Err(RejectReason::DuplicateEntry)
        );
        let oob = TopKList {
            ranked: vec![NodeId(7)],
        };
        assert_eq!(validate_topk(&oob, 3, 7), Err(RejectReason::InvalidNode));
        let empty = TopKList { ranked: vec![] };
        assert_eq!(validate_topk(&empty, 3, 1), Ok(()));
    }
}
