//! Votes and local vote lists (paper §V-A).
//!
//! "Each peer node stores a list of the votes the local user has made …
//! Each entry contains a pair mapping a unique moderator ID to a vote
//! (either positive or negative) plus a time stamp … Moderators may only
//! appear once in the list. … Nodes send a maximum of 50 votes, selecting
//! them based on a recency and random policy."

use rvs_modcast::LocalVote;
use rvs_sim::{DetRng, ModeratorId, SimTime};
use serde::{Deserialize, Serialize};

/// A vote on a moderator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// Approval (+): quality moderator.
    Positive,
    /// Disapproval (−): spam moderator.
    Negative,
}

impl From<LocalVote> for Vote {
    fn from(v: LocalVote) -> Vote {
        match v {
            LocalVote::Approve => Vote::Positive,
            LocalVote::Disapprove => Vote::Negative,
        }
    }
}

/// One entry of a local vote list: the local user's own vote on one
/// moderator, with the time the vote was made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteEntry {
    /// The moderator voted on.
    pub moderator: ModeratorId,
    /// The vote.
    pub vote: Vote,
    /// When the local user cast it.
    pub made_at: SimTime,
}

/// Selection policy when a vote list exceeds the per-message budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VoteListPolicy {
    /// Newest votes first.
    Recency,
    /// Uniformly random subset.
    Random,
    /// Half newest, half random from the remainder (deployed hybrid).
    RecencyAndRandom,
}

/// Select at most `max` entries from a full vote list according to
/// `policy`. The input may be in any order; the output order is
/// deterministic given the RNG state.
pub fn select_votes(
    mut entries: Vec<VoteEntry>,
    max: usize,
    policy: VoteListPolicy,
    rng: &mut DetRng,
) -> Vec<VoteEntry> {
    if entries.len() <= max {
        entries.sort_by_key(|e| (std::cmp::Reverse(e.made_at), e.moderator));
        return entries;
    }
    entries.sort_by_key(|e| (std::cmp::Reverse(e.made_at), e.moderator));
    match policy {
        VoteListPolicy::Recency => {
            entries.truncate(max);
            entries
        }
        VoteListPolicy::Random => {
            let idx = rng.sample_indices(entries.len(), max);
            idx.into_iter().map(|i| entries[i]).collect()
        }
        VoteListPolicy::RecencyAndRandom => {
            let recent = max / 2;
            let rest_take = max - recent;
            let rest = entries.split_off(recent);
            let idx = rng.sample_indices(rest.len(), rest_take);
            entries.extend(idx.into_iter().map(|i| rest[i]));
            entries
        }
    }
}

/// Stable binary encoding: a `u8` discriminant (0 = Positive, 1 = Negative).
impl rvs_checkpoint::Persist for Vote {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u8(match self {
            Vote::Positive => 0,
            Vote::Negative => 1,
        });
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(Vote::Positive),
            1 => Ok(Vote::Negative),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid Vote discriminant {d}"
            ))),
        }
    }
}

/// Stable binary encoding: moderator, vote, timestamp.
impl rvs_checkpoint::Persist for VoteEntry {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.moderator.persist(enc);
        self.vote.persist(enc);
        self.made_at.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(VoteEntry {
            moderator: ModeratorId::restore(dec)?,
            vote: Vote::restore(dec)?,
            made_at: SimTime::restore(dec)?,
        })
    }
}

/// Stable binary encoding: a `u8` discriminant (0 = Recency, 1 = Random,
/// 2 = RecencyAndRandom).
impl rvs_checkpoint::Persist for VoteListPolicy {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u8(match self {
            VoteListPolicy::Recency => 0,
            VoteListPolicy::Random => 1,
            VoteListPolicy::RecencyAndRandom => 2,
        });
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(VoteListPolicy::Recency),
            1 => Ok(VoteListPolicy::Random),
            2 => Ok(VoteListPolicy::RecencyAndRandom),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid VoteListPolicy discriminant {d}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::NodeId;

    fn entry(m: u32, t_hours: u64, vote: Vote) -> VoteEntry {
        VoteEntry {
            moderator: NodeId(m),
            vote,
            made_at: SimTime::from_hours(t_hours),
        }
    }

    fn many(n: u32) -> Vec<VoteEntry> {
        (0..n).map(|i| entry(i, i as u64, Vote::Positive)).collect()
    }

    #[test]
    fn local_vote_conversion() {
        assert_eq!(Vote::from(LocalVote::Approve), Vote::Positive);
        assert_eq!(Vote::from(LocalVote::Disapprove), Vote::Negative);
    }

    #[test]
    fn under_budget_returns_all_sorted_by_recency() {
        let mut rng = DetRng::new(1);
        let out = select_votes(many(5), 50, VoteListPolicy::RecencyAndRandom, &mut rng);
        assert_eq!(out.len(), 5);
        for w in out.windows(2) {
            assert!(w[0].made_at >= w[1].made_at);
        }
    }

    #[test]
    fn recency_takes_newest() {
        let mut rng = DetRng::new(2);
        let out = select_votes(many(100), 10, VoteListPolicy::Recency, &mut rng);
        assert_eq!(out.len(), 10);
        let mut ids: Vec<u32> = out.iter().map(|e| e.moderator.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (90..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_covers_old_votes_across_calls() {
        let mut rng = DetRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            for e in select_votes(many(60), 10, VoteListPolicy::Random, &mut rng) {
                seen.insert(e.moderator.0);
            }
        }
        assert!(seen.len() >= 55, "random policy sweeps: {}", seen.len());
    }

    #[test]
    fn hybrid_mixes_recent_and_random() {
        let mut rng = DetRng::new(4);
        let out = select_votes(many(100), 20, VoteListPolicy::RecencyAndRandom, &mut rng);
        assert_eq!(out.len(), 20);
        let newest = out.iter().filter(|e| e.moderator.0 >= 90).count();
        assert!(newest >= 10, "newest half guaranteed: {newest}");
        let older = out.iter().filter(|e| e.moderator.0 < 90).count();
        assert!(older >= 1, "random half reaches older votes");
        // No duplicates.
        let mut ids: Vec<u32> = out.iter().map(|e| e.moderator.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn exact_budget_no_truncation() {
        let mut rng = DetRng::new(5);
        let out = select_votes(many(10), 10, VoteListPolicy::RecencyAndRandom, &mut rng);
        assert_eq!(out.len(), 10);
    }
}
