//! Subjective transfer graphs.
//!
//! Every node maintains its own picture of "who uploaded how much to whom",
//! assembled from (a) its own direct transfers and (b) records gossiped by
//! peers it encountered. A BarterCast record describes only the reporter's
//! *own* transfers, so edge `(a → b)` is accepted only from reporter `a` or
//! `b`; both reports are stored and the edge weight is their maximum
//! (counters are cumulative, so for honest reporters max == newest).

use rvs_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-edge pair of reports: what the sender claimed and what the receiver
/// claimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct EdgeReports {
    /// KiB claimed by the edge's source (`from` reported its own upload).
    by_from: u64,
    /// KiB claimed by the edge's destination (`to` reported its download).
    by_to: u64,
}

impl EdgeReports {
    fn weight(&self) -> u64 {
        self.by_from.max(self.by_to)
    }
}

/// One node's subjective view of the transfer network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubjectiveGraph {
    edges: BTreeMap<(NodeId, NodeId), EdgeReports>,
}

impl SubjectiveGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a report from `reporter` that `from` uploaded `kib` KiB to
    /// `to`. Returns `false` (rejecting the report) unless the reporter is
    /// one of the edge's endpoints — the protocol's first line of defence
    /// against fabricated third-party edges.
    ///
    /// Cumulative counters only grow, so a report smaller than the stored
    /// one is ignored (stale gossip).
    pub fn insert_report(&mut self, reporter: NodeId, from: NodeId, to: NodeId, kib: u64) -> bool {
        if reporter != from && reporter != to {
            return false;
        }
        if from == to {
            return false;
        }
        let e = self.edges.entry((from, to)).or_default();
        if reporter == from {
            e.by_from = e.by_from.max(kib);
        } else {
            e.by_to = e.by_to.max(kib);
        }
        true
    }

    /// Effective weight of edge `(from → to)` in KiB.
    pub fn edge_kib(&self, from: NodeId, to: NodeId) -> u64 {
        self.edges.get(&(from, to)).map(|e| e.weight()).unwrap_or(0)
    }

    /// All edges with nonzero weight, deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.edges
            .iter()
            .filter(|(_, e)| e.weight() > 0)
            .map(|(&(f, t), e)| (f, t, e.weight()))
    }

    /// Outgoing neighbours of `node` with edge weights.
    pub fn out_edges(&self, node: NodeId) -> Vec<(NodeId, u64)> {
        self.edges
            .range((node, NodeId(0))..=(node, NodeId(u32::MAX)))
            .filter(|(_, e)| e.weight() > 0)
            .map(|(&(_, t), e)| (t, e.weight()))
            .collect()
    }

    /// Number of distinct nonzero edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().filter(|e| e.weight() > 0).count()
    }

    /// All node ids mentioned by any edge (sorted, deduplicated).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .edges
            .iter()
            .filter(|(_, e)| e.weight() > 0)
            .flat_map(|(&(f, t), _)| [f, t])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_reports_accepted() {
        let mut g = SubjectiveGraph::new();
        assert!(g.insert_report(NodeId(1), NodeId(1), NodeId(2), 100));
        assert!(g.insert_report(NodeId(2), NodeId(1), NodeId(2), 90));
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 100);
    }

    #[test]
    fn third_party_reports_rejected() {
        let mut g = SubjectiveGraph::new();
        assert!(!g.insert_report(NodeId(9), NodeId(1), NodeId(2), 1_000_000));
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = SubjectiveGraph::new();
        assert!(!g.insert_report(NodeId(1), NodeId(1), NodeId(1), 5));
    }

    #[test]
    fn cumulative_counters_never_shrink() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 500);
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 300); // stale
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 500);
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 800);
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 800);
    }

    #[test]
    fn direction_matters() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 100);
        assert_eq!(g.edge_kib(NodeId(2), NodeId(1)), 0);
    }

    #[test]
    fn out_edges_sorted_by_target() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(5), NodeId(5), NodeId(9), 10);
        g.insert_report(NodeId(5), NodeId(5), NodeId(2), 20);
        g.insert_report(NodeId(5), NodeId(5), NodeId(7), 30);
        let out = g.out_edges(NodeId(5));
        assert_eq!(out, vec![(NodeId(2), 20), (NodeId(7), 30), (NodeId(9), 10)]);
    }

    #[test]
    fn nodes_enumerates_endpoints() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(3), NodeId(3), NodeId(1), 10);
        g.insert_report(NodeId(3), NodeId(4), NodeId(3), 10);
        assert_eq!(g.nodes(), vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(g.edge_count(), 2);
    }
}
